"""Fabric accelerators: the iterated single engine and dataflow pipelines.

§III-A: for the earlier FINN show cases (MLP-4, CNV-6) every layer gets its
own engine and the whole network forms a *dataflow pipeline* in the fabric.
Tincy YOLO's hidden layers are orders of magnitude heavier, so on the small
XCZU3EG "the layers of the network must be run one after the other on the
same accelerator" — an *iterated* schedule with no cross-layer concurrency
and full feature maps materialized between layers.

Both schedules are modeled here over the same :class:`~repro.finn.mvtu.MVTU`
stages: functionally (bit-faithful level arithmetic) and in time (cycle
counts divided by the fabric clock, plus per-layer invocation overhead for
the iterated engine).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.tensor import FeatureMap, FeatureMapBatch
from repro.core.thresholds import derive_thresholds
from repro.finn.mvtu import MVTU, Folding, MVTUConvLayer
from repro.finn.resources import (
    ResourceEstimate,
    mvtu_compute_resources,
    pool_resources,
    swu_resources,
    total_estimate,
    weight_storage_resources,
)
from repro.nn.layers.convolutional import BN_EPS, ConvolutionalLayer
from repro.nn.layers.maxpool import MaxpoolLayer
from repro.core.ops import maxpool2d, maxpool2d_batch

#: Defaults calibrated in DESIGN.md §6: a 32x32 engine at 200 MHz in the
#: XCZU3EG fabric with ~1 ms of invocation overhead per offloaded layer
#: reproduces the paper's "30 ms for all hidden layers".
DEFAULT_FOLDING = Folding(pe=32, simd=32)
DEFAULT_FMAX_HZ = 100e6
DEFAULT_LAYER_OVERHEAD_S = 1.0e-3


@dataclass
class PoolStage:
    """A maxpool executed on the fabric right after its convolution."""

    size: int
    stride: int
    padding: int

    def forward(self, fm: FeatureMap) -> FeatureMap:
        # maxpool2d pools in the input dtype (max is a selection op), so the
        # old float64 round trip is gone — level codes pool as integers.
        pooled = maxpool2d(fm.data, self.size, self.stride, self.padding)
        return FeatureMap(pooled, scale=fm.scale)

    def forward_batch(self, fmb: FeatureMapBatch) -> FeatureMapBatch:
        pooled = maxpool2d_batch(fmb.data, self.size, self.stride, self.padding)
        return FeatureMapBatch(pooled, scale=fmb.scale)

    def out_shape(self, in_shape: Tuple[int, int, int]) -> Tuple[int, int, int]:
        from repro.core.tensor import pool_output_size

        c, h, w = in_shape
        return (
            c,
            pool_output_size(h, self.size, self.stride, self.padding),
            pool_output_size(w, self.size, self.stride, self.padding),
        )

    def cycles(self, in_shape: Tuple[int, int, int]) -> int:
        _, out_h, out_w = self.out_shape(in_shape)
        return out_h * out_w


@dataclass
class FabricStage:
    """One offloaded convolution with its optional trailing pool."""

    conv: MVTUConvLayer
    pool: Optional[PoolStage]
    in_shape: Tuple[int, int, int]

    @property
    def out_shape(self) -> Tuple[int, int, int]:
        shape = self.conv.out_shape(self.in_shape)
        if self.pool is not None:
            shape = self.pool.out_shape(shape)
        return shape

    def forward(self, fm: FeatureMap) -> FeatureMap:
        out = self.conv.forward(fm)
        if self.pool is not None:
            out = self.pool.forward(out)
        return out

    def forward_batch(self, fmb: FeatureMapBatch) -> FeatureMapBatch:
        out = self.conv.forward_batch(fmb)
        if self.pool is not None:
            out = self.pool.forward_batch(out)
        return out

    def cycles(self) -> int:
        total = self.conv.cycles(self.in_shape)
        if self.pool is not None:
            total += self.pool.cycles(self.conv.out_shape(self.in_shape))
        return total

    def ops(self) -> int:
        return self.conv.ops(self.in_shape)


def _stage_from_conv(
    conv: ConvolutionalLayer,
    input_scale: float,
    folding: Folding,
    bitserial: bool,
) -> MVTUConvLayer:
    """Compile a W1A3 Darknet convolution into an MVTU stage."""
    if not conv.binary:
        raise ValueError("fabric offload requires binarized weights (binary=1)")
    if conv.out_quant is None:
        raise ValueError("fabric offload requires activation_bits on the layer")
    if not conv.batch_normalize:
        raise ValueError("fabric offload expects batch-normalized layers")
    if conv.activation not in ("relu", "linear"):
        raise ValueError(
            f"fabric threshold derivation supports relu/linear, "
            f"not '{conv.activation}'"
        )
    weights = conv.effective_weights().reshape(conv.filters, -1)
    thresholds = derive_thresholds(
        conv.scales,
        conv.biases,
        conv.rolling_mean,
        conv.rolling_var,
        in_scale=input_scale,
        out_scale=conv.out_quant.scale,
        bits=conv.out_quant.bits,
        eps=BN_EPS,
    )
    mvtu = MVTU(weights, thresholds, folding, bitserial=bitserial)
    return MVTUConvLayer(
        mvtu,
        in_channels=conv.in_shape[0],
        ksize=conv.size,
        stride=conv.stride,
        pad=conv.pad,
        out_scale=conv.out_quant.scale,
    )


def compile_stages(
    layers: Sequence,
    input_scale: float,
    input_shape: Tuple[int, int, int],
    folding: Folding = DEFAULT_FOLDING,
    per_layer_folding: Optional[Sequence[Folding]] = None,
    bitserial: bool = False,
) -> List[FabricStage]:
    """Compile a conv/maxpool Darknet layer run into fabric stages.

    Maxpool layers attach to the preceding convolution (the paper's
    "convolutional layer together with its subsequent pooling layer").
    """
    stages: List[FabricStage] = []
    scale = input_scale
    shape = tuple(input_shape)
    conv_index = 0
    index = 0
    while index < len(layers):
        layer = layers[index]
        if not isinstance(layer, ConvolutionalLayer):
            raise ValueError(
                f"offloaded subgraph must start each stage with a convolution, "
                f"found {layer.ltype}"
            )
        fold = (
            per_layer_folding[conv_index]
            if per_layer_folding is not None
            else folding
        )
        conv_stage = _stage_from_conv(layer, scale, fold, bitserial)
        pool_stage = None
        if index + 1 < len(layers) and isinstance(layers[index + 1], MaxpoolLayer):
            pool = layers[index + 1]
            pool_stage = PoolStage(pool.size, pool.stride, pool.padding)
            index += 1
        stage = FabricStage(conv=conv_stage, pool=pool_stage, in_shape=shape)
        stages.append(stage)
        shape = stage.out_shape
        scale = layer.out_quant.scale
        conv_index += 1
        index += 1
    return stages


class IteratedAccelerator:
    """One folded engine serving every stage, one layer at a time.

    "Note that this precludes concurrency across layers and implies a higher
    latency compared to a pipeline as the feature maps between layers are
    computed in full before the computation of the next layer can be
    triggered." (§III-A)
    """

    def __init__(
        self,
        stages: Sequence[FabricStage],
        fmax_hz: float = DEFAULT_FMAX_HZ,
        layer_overhead_s: float = DEFAULT_LAYER_OVERHEAD_S,
    ) -> None:
        if not stages:
            raise ValueError("accelerator needs at least one stage")
        foldings = {
            (s.conv.mvtu.folding.pe, s.conv.mvtu.folding.simd) for s in stages
        }
        if len(foldings) != 1:
            raise ValueError("the iterated engine is shared: one folding for all")
        self.stages = list(stages)
        self.fmax_hz = fmax_hz
        self.layer_overhead_s = layer_overhead_s

    @property
    def folding(self) -> Folding:
        return self.stages[0].conv.mvtu.folding

    @property
    def in_shape(self) -> Tuple[int, int, int]:
        return self.stages[0].in_shape

    @property
    def out_shape(self) -> Tuple[int, int, int]:
        return self.stages[-1].out_shape

    def forward(self, fm: FeatureMap) -> FeatureMap:
        for stage in self.stages:
            fm = stage.forward(fm)
        return fm

    def forward_batch(self, fmb: FeatureMapBatch) -> FeatureMapBatch:
        for stage in self.stages:
            fmb = stage.forward_batch(fmb)
        return fmb

    def cycles_per_frame(self) -> int:
        return sum(stage.cycles() for stage in self.stages)

    def time_per_frame(self) -> float:
        compute = self.cycles_per_frame() / self.fmax_hz
        return compute + len(self.stages) * self.layer_overhead_s

    def ops_per_frame(self) -> int:
        return sum(stage.ops() for stage in self.stages)

    def resources(self) -> ResourceEstimate:
        geometries = [stage.conv.mvtu.geometry for stage in self.stages]
        abits = max(g.activation_bits for g in geometries)
        # One engine: compute sized once, all weight matrices resident,
        # the SWU line buffer sized for the widest layer.
        swu_bits = max(
            stage.conv.ksize
            * stage.in_shape[2]
            * stage.in_shape[0]
            * stage.conv.mvtu.geometry.activation_bits
            for stage in self.stages
        )
        widest = max(
            self.stages,
            key=lambda s: s.conv.ksize
            * s.in_shape[2]
            * s.in_shape[0]
            * s.conv.mvtu.geometry.activation_bits,
        )
        parts = [
            mvtu_compute_resources(self.folding, abits),
            weight_storage_resources(geometries, self.folding),
            swu_resources(
                widest.conv.ksize,
                widest.in_shape[2],
                widest.in_shape[0],
                abits,
                self.folding,
            ),
            pool_resources(),
        ]
        return total_estimate(parts)


class DataflowAccelerator:
    """Per-layer engines forming a fabric pipeline (the FINN show-case style).

    Throughput is set by the slowest stage (the initiation interval);
    latency is the sum of all stage times.  Resources are the sum over all
    stages — which is why this schedule "quickly fails on resource
    constraints for Tincy YOLO" on an XCZU3EG.
    """

    def __init__(self, stages: Sequence[FabricStage], fmax_hz: float = DEFAULT_FMAX_HZ):
        if not stages:
            raise ValueError("accelerator needs at least one stage")
        self.stages = list(stages)
        self.fmax_hz = fmax_hz

    def forward(self, fm: FeatureMap) -> FeatureMap:
        for stage in self.stages:
            fm = stage.forward(fm)
        return fm

    def forward_batch(self, fmb: FeatureMapBatch) -> FeatureMapBatch:
        for stage in self.stages:
            fmb = stage.forward_batch(fmb)
        return fmb

    def initiation_interval_cycles(self) -> int:
        return max(stage.cycles() for stage in self.stages)

    def time_per_frame(self) -> float:
        return self.initiation_interval_cycles() / self.fmax_hz

    def latency_s(self) -> float:
        return sum(stage.cycles() for stage in self.stages) / self.fmax_hz

    def ops_per_frame(self) -> int:
        return sum(stage.ops() for stage in self.stages)

    def resources(self) -> ResourceEstimate:
        parts: List[ResourceEstimate] = []
        for stage in self.stages:
            geometry = stage.conv.mvtu.geometry
            folding = stage.conv.mvtu.folding
            parts.append(mvtu_compute_resources(folding, geometry.activation_bits))
            parts.append(weight_storage_resources([geometry], folding))
            parts.append(
                swu_resources(
                    stage.conv.ksize,
                    stage.in_shape[2],
                    stage.in_shape[0],
                    geometry.activation_bits,
                    folding,
                )
            )
            if stage.pool is not None:
                parts.append(pool_resources())
        return total_estimate(parts)


def balanced_dataflow_foldings(
    stages_cycles_unit: Sequence[int], target_cycles: int
) -> List[Folding]:
    """Pick per-stage PE/SIMD so each stage meets *target_cycles* per frame.

    ``stages_cycles_unit`` holds each stage's cycles at PE=SIMD=1; the
    parallelization factor needed is their ratio, split evenly (powers of
    two) between PE and SIMD.
    """
    foldings = []
    for unit_cycles in stages_cycles_unit:
        factor = max(1, math.ceil(unit_cycles / target_cycles))
        # Split the factor into PE * SIMD as evenly as possible in powers of 2.
        exponent = max(0, math.ceil(math.log2(factor)))
        pe = 2 ** (exponent // 2)
        simd = 2 ** (exponent - exponent // 2)
        foldings.append(Folding(pe=pe, simd=simd))
    return foldings


__all__ = [
    "DEFAULT_FOLDING",
    "DEFAULT_FMAX_HZ",
    "DEFAULT_LAYER_OVERHEAD_S",
    "PoolStage",
    "FabricStage",
    "compile_stages",
    "IteratedAccelerator",
    "DataflowAccelerator",
    "balanced_dataflow_foldings",
]
