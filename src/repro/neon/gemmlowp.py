"""A gemmlowp-style micro-GEMM written in emulated NEON instructions.

This is the instruction-level counterpart of the vectorized quantized
kernels in :mod:`repro.neon.kernels`: a small uint8 GEMM whose inner loop
is expressed entirely through :mod:`repro.neon.simd` register operations —
widening multiplies into int16, pairwise-add-accumulate into int32 lanes,
final horizontal reduction — exactly the dataflow of gemmlowp's NEON
kernels on the A53.  It exists for *fidelity*, not speed: the tests prove
the vectorized path computes the same accumulators this instruction
sequence produces.

Also included: the 16-bit-accumulator inner loop of the paper's custom
first-layer kernel (``vmull`` -> ``vrshr #4`` -> ``vqadd``), usable on any
27-tap column block.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.neon.simd import (
    QReg,
    lane_count,
    vdup,
    vmull,
    vmull_high,
    vpadal,
    vqadd,
    vrshr,
)


# analyze: allow(AST-NESTED-LOOP) — instruction-level fidelity model, not a hot path
def gemm_u8_neon(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """uint8 x uint8 -> int32 GEMM through emulated NEON instructions.

    ``a`` is ``(M, K)`` uint8, ``b`` is ``(K, N)`` uint8 with ``N`` padded
    internally to a multiple of 16 lanes.  Returns exact int32 accumulators
    ``(M, N)`` — offsets (zero points) are the caller's concern, as in
    gemmlowp's ``GemmWithOffsets`` decomposition.
    """
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    m, k = a.shape
    k2, n = b.shape
    if k != k2:
        raise ValueError(f"inner dimensions differ: {k} vs {k2}")
    lanes8 = lane_count("u8")
    padded_n = ((n + lanes8 - 1) // lanes8) * lanes8
    b_padded = np.zeros((k, padded_n), dtype=np.uint8)
    b_padded[:, :n] = b
    out = np.zeros((m, padded_n), dtype=np.int64)

    for row in range(m):
        for block in range(0, padded_n, lanes8):
            # Two u32x4 accumulators cover 8 of the 16 u8 lanes... we keep
            # four u32 quads to cover all 16 output columns of the block.
            acc = [vdup("u32", 0) for _ in range(4)]
            for depth in range(k):
                a_reg = vdup("u8", int(a[row, depth]))
                b_reg = QReg("u8", b_padded[depth, block : block + lanes8])
                lo = vmull(a_reg, b_reg)        # u16 x8 (low lanes)
                hi = vmull_high(a_reg, b_reg)   # u16 x8 (high lanes)
                acc[0] = vpadal(acc[0], lo)
                acc[1] = vpadal(acc[1], hi)
                # vpadal folds lane pairs; keep the even-lane partial sums
                # in two more accumulators so columns can be separated:
                even_lo = QReg(
                    "u16",
                    np.where(np.arange(8) % 2 == 0, lo.lanes, 0).astype(np.uint16),
                )
                acc[2] = vpadal(acc[2], even_lo)
                even_hi = QReg(
                    "u16",
                    np.where(np.arange(8) % 2 == 0, hi.lanes, 0).astype(np.uint16),
                )
                acc[3] = vpadal(acc[3], even_hi)
            # Reconstruct per-column sums: pair sums and even-lane sums give
            # even and odd columns exactly.
            pair_lo, even_lo = acc[0].lanes.astype(np.int64), acc[2].lanes.astype(np.int64)
            pair_hi, even_hi = acc[1].lanes.astype(np.int64), acc[3].lanes.astype(np.int64)
            columns = np.empty(lanes8, dtype=np.int64)
            columns[0:8:2] = even_lo
            columns[1:8:2] = pair_lo - even_lo
            columns[8:16:2] = even_hi
            columns[9:16:2] = pair_hi - even_hi
            out[row, block : block + lanes8] = columns
    return out[:, :n].astype(np.int32)


def dot27_acc16_neon(
    weights: np.ndarray, columns: np.ndarray, pre_shift: int = 4
) -> Tuple[np.ndarray, QReg]:
    """The paper's 16-bit-accumulator inner loop over one 8-column block.

    ``weights`` is ``(27,)`` int8; ``columns`` is ``(27, 8)`` int8.  Each of
    the 27 taps contributes ``vmull`` (int8 values held in i16 lanes, so the
    product is exact) followed by ``vrshr #pre_shift`` and a saturating
    ``vqadd`` — returns the final int16 lane values.
    """
    weights = np.asarray(weights, dtype=np.int8)
    columns = np.asarray(columns, dtype=np.int8)
    if weights.shape != (27,) or columns.shape != (27, 8):
        raise ValueError("dot27 expects (27,) weights and (27, 8) columns")
    from repro.neon.simd import vmul

    acc = vdup("i16", 0)
    for tap in range(27):
        a16 = QReg("i16", columns[tap].astype(np.int16))
        w16 = vdup("i16", int(weights[tap]))
        # int8 x int8 always fits int16, so the wrapping vmul is exact here.
        product = vmul(a16, w16)
        acc = vqadd(acc, vrshr(product, pre_shift))
    return acc.lanes.copy(), acc


__all__ = ["gemm_u8_neon", "dot27_acc16_neon"]
