"""Lane-accurate emulation of 128-bit NEON registers (§III-D).

"Using 128-bit registers, equivalent parallel computations can be performed
in four 32-bit lanes up to sixteen 8-bit lanes."  This module models a
``Q`` register as a typed lane vector and implements the instructions the
paper's kernels rely on — widening multiplies, pairwise add-accumulate,
rounding shifts (``vrshr``), saturating arithmetic — with the exact
wrap-around / saturation semantics of the hardware.  The fused kernels of
:mod:`repro.neon.kernels` are vectorized numpy re-statements of the same
operations; the tests cross-check them against this instruction-level model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

REGISTER_BITS = 128

_LANE_DTYPES = {
    "i8": np.int8,
    "u8": np.uint8,
    "i16": np.int16,
    "u16": np.uint16,
    "i32": np.int32,
    "u32": np.uint32,
    "i64": np.int64,
    "f32": np.float32,
}

_LANE_BITS = {
    "i8": 8,
    "u8": 8,
    "i16": 16,
    "u16": 16,
    "i32": 32,
    "u32": 32,
    "i64": 64,
    "f32": 32,
}

_WIDEN = {"i8": "i16", "u8": "u16", "i16": "i32", "u16": "u32", "i32": "i64"}


@dataclass(frozen=True)
class QReg:
    """One 128-bit NEON quad register holding typed lanes."""

    kind: str
    lanes: np.ndarray

    def __post_init__(self) -> None:
        if self.kind not in _LANE_DTYPES:
            raise ValueError(f"unknown lane kind '{self.kind}'")
        expected = REGISTER_BITS // _LANE_BITS[self.kind]
        if self.lanes.shape != (expected,):
            raise ValueError(
                f"{self.kind} register needs {expected} lanes, "
                f"got shape {self.lanes.shape}"
            )
        if self.lanes.dtype != _LANE_DTYPES[self.kind]:
            raise ValueError(
                f"lane dtype {self.lanes.dtype} does not match kind {self.kind}"
            )

    @property
    def n_lanes(self) -> int:
        return self.lanes.shape[0]

    def to_list(self) -> list:
        return self.lanes.tolist()


def lane_count(kind: str) -> int:
    """Lanes a 128-bit register holds for *kind* (f32 -> 4, i8 -> 16)."""
    return REGISTER_BITS // _LANE_BITS[kind]


def vdup(kind: str, value) -> QReg:
    """Duplicate a scalar into all lanes (``vdupq_n_*``)."""
    dtype = _LANE_DTYPES[kind]
    return QReg(kind, np.full(lane_count(kind), value, dtype=dtype))


def vld1(kind: str, buffer: np.ndarray, offset: int = 0) -> QReg:
    """Load one register from memory (``vld1q_*``)."""
    n = lane_count(kind)
    chunk = np.asarray(buffer)[offset : offset + n]
    if chunk.shape != (n,):
        raise ValueError(f"cannot load {n} {kind} lanes at offset {offset}")
    return QReg(kind, chunk.astype(_LANE_DTYPES[kind]))


def vst1(reg: QReg, buffer: np.ndarray, offset: int = 0) -> None:
    """Store one register to memory (``vst1q_*``)."""
    buffer[offset : offset + reg.n_lanes] = reg.lanes


def _wrap(kind: str, values: np.ndarray) -> QReg:
    """Integer results wrap modulo 2**n; floats pass through."""
    dtype = _LANE_DTYPES[kind]
    if kind == "f32":
        return QReg(kind, values.astype(np.float32))
    bits = _LANE_BITS[kind]
    mask = (1 << bits) - 1
    wrapped = np.asarray(values).astype(np.int64) & mask
    if np.issubdtype(dtype, np.signedinteger):
        sign_bit = 1 << (bits - 1)
        wrapped = (wrapped ^ sign_bit) - sign_bit
    return QReg(kind, wrapped.astype(dtype))


def _check_same(a: QReg, b: QReg) -> None:
    if a.kind != b.kind:
        raise ValueError(f"lane kind mismatch: {a.kind} vs {b.kind}")


def vadd(a: QReg, b: QReg) -> QReg:
    """Lane-wise add with integer wrap-around (``vaddq_*``)."""
    _check_same(a, b)
    return _wrap(a.kind, a.lanes.astype(np.int64) + b.lanes.astype(np.int64)) \
        if a.kind != "f32" else QReg("f32", a.lanes + b.lanes)


def vsub(a: QReg, b: QReg) -> QReg:
    """Lane-wise subtract with integer wrap-around (``vsubq_*``)."""
    _check_same(a, b)
    return _wrap(a.kind, a.lanes.astype(np.int64) - b.lanes.astype(np.int64)) \
        if a.kind != "f32" else QReg("f32", a.lanes - b.lanes)


def vmul(a: QReg, b: QReg) -> QReg:
    """Lane-wise multiply, low bits kept on wrap (``vmulq_*``)."""
    _check_same(a, b)
    if a.kind == "f32":
        return QReg("f32", a.lanes * b.lanes)
    return _wrap(a.kind, a.lanes.astype(np.int64) * b.lanes.astype(np.int64))


def vmla(acc: QReg, a: QReg, b: QReg) -> QReg:
    """Multiply-accumulate within the same lane width (``vmlaq_*``)."""
    _check_same(acc, a)
    _check_same(a, b)
    if acc.kind == "f32":
        return QReg("f32", acc.lanes + a.lanes * b.lanes)
    product = a.lanes.astype(np.int64) * b.lanes.astype(np.int64)
    return _wrap(acc.kind, acc.lanes.astype(np.int64) + product)


def vmull(a: QReg, b: QReg) -> QReg:
    """Widening multiply of the *low* half (``vmull_*``): n lanes -> n/2."""
    _check_same(a, b)
    if a.kind not in _WIDEN:
        raise ValueError(f"cannot widen {a.kind}")
    wide_kind = _WIDEN[a.kind]
    half = a.n_lanes // 2
    product = a.lanes[:half].astype(np.int64) * b.lanes[:half].astype(np.int64)
    return _wrap(wide_kind, product)


def vmull_high(a: QReg, b: QReg) -> QReg:
    """Widening multiply of the *high* half (``vmull_high_*``)."""
    _check_same(a, b)
    if a.kind not in _WIDEN:
        raise ValueError(f"cannot widen {a.kind}")
    wide_kind = _WIDEN[a.kind]
    half = a.n_lanes // 2
    product = a.lanes[half:].astype(np.int64) * b.lanes[half:].astype(np.int64)
    return _wrap(wide_kind, product)


def vpadal(acc: QReg, a: QReg) -> QReg:
    """Pairwise add and accumulate long (``vpadalq_*``).

    Adjacent lane pairs of ``a`` are summed into the double-width lanes of
    ``acc`` — the canonical way to fold i16 products into i32 accumulators.
    """
    if a.kind not in _WIDEN or _WIDEN[a.kind] != acc.kind:
        raise ValueError(f"vpadal cannot fold {a.kind} into {acc.kind}")
    pairs = a.lanes.astype(np.int64).reshape(-1, 2).sum(axis=1)
    return _wrap(acc.kind, acc.lanes.astype(np.int64) + pairs)


def vrshr(a: QReg, shift: int) -> QReg:
    """Rounding shift right (``vrshrq_n_*``): adds ``1 << (shift-1)`` first."""
    if a.kind == "f32":
        raise ValueError("vrshr is an integer instruction")
    if shift < 1:
        raise ValueError("NEON immediate shifts start at 1")
    shifted = (a.lanes.astype(np.int64) + (1 << (shift - 1))) >> shift
    return _wrap(a.kind, shifted)


def vqadd(a: QReg, b: QReg) -> QReg:
    """Saturating add (``vqaddq_*``)."""
    _check_same(a, b)
    if a.kind == "f32":
        raise ValueError("vqadd is an integer instruction")
    bits = _LANE_BITS[a.kind]
    total = a.lanes.astype(np.int64) + b.lanes.astype(np.int64)
    if np.issubdtype(_LANE_DTYPES[a.kind], np.signedinteger):
        lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    else:
        lo, hi = 0, (1 << bits) - 1
    return QReg(a.kind, np.clip(total, lo, hi).astype(_LANE_DTYPES[a.kind]))


def vmax(a: QReg, b: QReg) -> QReg:
    """Lane-wise maximum (``vmaxq_*``) — the pooling primitive."""
    _check_same(a, b)
    return QReg(a.kind, np.maximum(a.lanes, b.lanes))


def vaddv(a: QReg):
    """Horizontal add of all lanes (``vaddvq_*``), returned as a scalar."""
    if a.kind == "f32":
        return float(np.sum(a.lanes, dtype=np.float64))
    bits = _LANE_BITS[a.kind]
    total = int(np.sum(a.lanes.astype(np.int64)))
    mask = (1 << bits) - 1
    wrapped = total & mask
    if np.issubdtype(_LANE_DTYPES[a.kind], np.signedinteger):
        sign_bit = 1 << (bits - 1)
        wrapped = (wrapped ^ sign_bit) - sign_bit
    return wrapped


__all__ = [
    "REGISTER_BITS",
    "QReg",
    "lane_count",
    "vdup",
    "vld1",
    "vst1",
    "vadd",
    "vsub",
    "vmul",
    "vmla",
    "vmull",
    "vmull_high",
    "vpadal",
    "vrshr",
    "vqadd",
    "vmax",
    "vaddv",
]
