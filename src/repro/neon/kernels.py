"""The §III-D convolution implementation ladder.

Darknet's generic path (explicit ``im2col`` + float GEMM) is successively
replaced by

1. ``conv_gemmlowp`` — a quantizing im2col feeding a gemmlowp-style uint8
   GEMM (2.2x on the board),
2. ``conv_fused_float`` — the fused, *sliced* im2col + GEMM that reuses one
   slice-sized buffer over and over (2.1x even in float, thanks to locality
   on the small A53 caches),
3. ``conv_first_layer_custom`` — the fully unrolled 16x27 first-layer
   kernel in three precision variants: float (3.8x), int8 with 32-bit
   accumulators, and int8 with 16-bit accumulators plus the rounding right
   shift by 4 that prevents overflow across the 27 products (120 ms, at a
   small accuracy cost).

Each kernel returns ``(output, ConvStats)``; the stats feed the calibrated
A53/NEON time model of :mod:`repro.neon.timing`, and ``peak_buffer_floats``
makes the locality argument measurable.  Numeric semantics of the int paths
are bit-exact NEON (``vrshr``/saturation via :mod:`repro.core.gemm`), which
the instruction-level cross-check in the tests confirms against
:mod:`repro.neon.simd`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core import workspace
from repro.core.gemm import gemm_i8_acc16, gemm_i8_acc32
from repro.core.im2col import im2col, im2col_batch, sliced_im2col
from repro.core.quantize import AffineQuantizer
from repro.core.tensor import conv_output_size

#: Lane widths available on the 128-bit NEON unit (Fig. 2).
F32_LANES = 4
I16_LANES = 8
I8_LANES = 16

#: The paper's pre-accumulation shift for the 16-bit accumulator variant.
ACC16_PRESHIFT = 4

#: Element budget for one batched im2col chunk: frames are lowered and
#: multiplied in chunks so large batches never materialize the whole
#: stacked multiplicand at once.  The GEMM operands stay in their narrow
#: quantized dtypes (the blocked kernels widen internally), so one element
#: is one byte, not the int64 the old pipeline inflated to.
_NEON_BATCH_COL_BUDGET = 1 << 24


@dataclass
class ConvStats:
    """Work and locality accounting of one kernel invocation."""

    path: str
    macs: int
    lanes: int
    peak_buffer_floats: int
    quantized: bool = False
    accumulator_bits: int = 32
    overflow_events: int = 0


def _geometry(x: np.ndarray, weights: np.ndarray, stride: int, pad: int):
    c_out, c_in, k, _ = weights.shape
    out_h = conv_output_size(x.shape[1], k, stride, pad)
    out_w = conv_output_size(x.shape[2], k, stride, pad)
    macs = c_out * c_in * k * k * out_h * out_w
    return c_out, c_in, k, out_h, out_w, macs


def conv_generic_float(
    x: np.ndarray, weights: np.ndarray, stride: int = 1, pad: int = 1
) -> Tuple[np.ndarray, ConvStats]:
    """Darknet's reference path: explicit im2col, then one big float GEMM.

    The full multiplicand matrix is materialized — ``K**2`` times the input
    feature map for stride-1 3x3 kernels (Fig. 1), which is exactly what
    ruins cache behaviour on the embedded cores.
    """
    c_out, c_in, k, out_h, out_w, macs = _geometry(x, weights, stride, pad)
    cols = im2col(x.astype(np.float32), k, stride, pad)
    out = weights.reshape(c_out, -1).astype(np.float32) @ cols
    stats = ConvStats(
        path="generic-float",
        macs=macs,
        lanes=1,
        peak_buffer_floats=cols.size,
    )
    return out.reshape(c_out, out_h, out_w), stats


def conv_gemmlowp(
    x: np.ndarray,
    weights: np.ndarray,
    stride: int = 1,
    pad: int = 1,
    x_range: Tuple[float, float] = None,
) -> Tuple[np.ndarray, ConvStats]:
    """Quantizing im2col + gemmlowp-style uint8 GEMM with int32 accumulators.

    "we thus implemented a custom layer with an im2col implementation that
    quantized the image data while arranging the multiplicand matrix and a
    matrix multiplication performed through the gemmlowp library."
    Output is dequantized to float for drop-in comparability.
    """
    c_out, c_in, k, out_h, out_w, macs = _geometry(x, weights, stride, pad)
    if x_range is None:
        x_range = (float(x.min()), float(x.max()))
    x_q = AffineQuantizer.from_range(x_range[0], x_range[1], bits=8, signed=False)
    w_q = AffineQuantizer.from_range(
        float(weights.min()), float(weights.max()), bits=8, signed=False
    )
    raw_cols = im2col(x, k, stride, pad)
    # Narrow u8 codes feed the GEMM directly — the blocked kernel widens
    # internally, so dropping the old int64 inflation is bit-invisible.
    cols_levels = x_q.to_levels(raw_cols)
    workspace.release(raw_cols)
    w_levels = w_q.to_levels(weights.reshape(c_out, -1))
    acc = gemm_i8_acc32(
        w_levels, cols_levels, a_offset=-w_q.zero_point, b_offset=-x_q.zero_point
    )
    out = acc.astype(np.float64) * (w_q.scale * x_q.scale)
    stats = ConvStats(
        path="gemmlowp-u8",
        macs=macs,
        lanes=I8_LANES,
        peak_buffer_floats=cols_levels.size // 4,  # uint8 vs float32 storage
        quantized=True,
        accumulator_bits=32,
    )
    return out.reshape(c_out, out_h, out_w).astype(np.float32), stats


def conv_fused_float(
    x: np.ndarray,
    weights: np.ndarray,
    stride: int = 1,
    pad: int = 1,
    slice_width: int = F32_LANES,
) -> Tuple[np.ndarray, ConvStats]:
    """Fused sliced im2col + GEMM, still single-precision.

    The multiplicand is produced in vertical slices whose width matches the
    vector lane count; each slice of the result matrix is produced row by
    row as parallel dot products, and the slice buffer is reused —
    "exploiting the capabilities of NEON is itself a benefit even without
    quantization" (2.1x).
    """
    c_out, c_in, k, out_h, out_w, macs = _geometry(x, weights, stride, pad)
    flat = weights.reshape(c_out, -1).astype(np.float32)
    out = np.empty((c_out, out_h * out_w), dtype=np.float32)
    peak = 0
    for cols, start, stop in sliced_im2col(
        x.astype(np.float32), k, stride, pad, slice_width
    ):
        out[:, start:stop] = flat @ cols
        peak = max(peak, cols.size)
    stats = ConvStats(
        path="fused-float",
        macs=macs,
        lanes=F32_LANES,
        peak_buffer_floats=peak,
    )
    return out.reshape(c_out, out_h, out_w), stats


def conv_int8(
    x: np.ndarray,
    weights: np.ndarray,
    stride: int = 1,
    pad: int = 1,
    accumulator_bits: int = 32,
    x_range: Tuple[float, float] = None,
) -> Tuple[np.ndarray, ConvStats]:
    """Generic int8 convolution (any geometry), 32- or 16-bit accumulators.

    The zero-point-free regime of the custom kernels (unsigned inputs,
    symmetric signed weights) generalized beyond the 16x27 first layer —
    used by the accuracy ablations to swap the input layer's execution path
    under a trained network.
    """
    if accumulator_bits not in (16, 32):
        raise ValueError("accumulator_bits must be 16 or 32")
    c_out, c_in, k, out_h, out_w, macs = _geometry(x, weights, stride, pad)
    if x_range is None:
        x_range = (float(x.min()), float(x.max()))
    x_q = AffineQuantizer.from_range(0.0, x_range[1], bits=8, signed=False)
    w_q = AffineQuantizer.symmetric(
        max(abs(float(weights.min())), abs(float(weights.max()))), bits=8
    )
    raw_cols = im2col(x, k, stride, pad)
    cols = x_q.to_levels(raw_cols)
    workspace.release(raw_cols)
    flat = w_q.to_levels(weights.reshape(c_out, -1))
    if accumulator_bits == 32:
        acc = gemm_i8_acc32(flat, cols)
        out = acc.astype(np.float64) * (w_q.scale * x_q.scale)
        overflow = 0
        lanes = F32_LANES
    else:
        acc, overflow = gemm_i8_acc16(flat, cols, pre_shift=ACC16_PRESHIFT)
        out = acc.astype(np.float64) * (
            w_q.scale * x_q.scale * (1 << ACC16_PRESHIFT)
        )
        lanes = I16_LANES
    stats = ConvStats(
        path=f"int8-acc{accumulator_bits}",
        macs=macs,
        lanes=lanes,
        peak_buffer_floats=cols.size // 4,
        quantized=True,
        accumulator_bits=accumulator_bits,
        overflow_events=overflow,
    )
    return out.reshape(c_out, out_h, out_w).astype(np.float32), stats


def conv_first_layer_custom(
    x: np.ndarray,
    weights: np.ndarray,
    stride: int = 1,
    pad: int = 1,
    variant: str = "float",
    x_range: Tuple[float, float] = None,
) -> Tuple[np.ndarray, ConvStats]:
    """The fully customized first-layer kernel (16 filters, 3x3x3 = 27 taps).

    "The weight matrix of the first convolutional layer has a rather small
    dimension of 16x27.  The 16 divides nicely by all lane counts that a
    NEON implementation might use, and 27 is small enough to be unrolled
    explicitly."  Variants:

    * ``float``    — f32 lanes, 3.8x over generic (620 -> 160 ms);
    * ``i8_acc32`` — signed int8 inputs, 32-bit accumulators (140 ms);
    * ``i8_acc16`` — int8 inputs, 16-bit accumulators with a rounding right
      shift by 4 before accumulation (120 ms, small accuracy loss).
    """
    c_out, c_in, k, out_h, out_w, macs = _geometry(x, weights, stride, pad)
    if (c_out, c_in * k * k) != (16, 27):
        raise ValueError(
            f"the custom kernel is specialized for a 16x27 weight matrix, "
            f"got {c_out}x{c_in * k * k}"
        )
    if variant == "float":
        out = np.empty((c_out, out_h * out_w), dtype=np.float32)
        flat = weights.reshape(c_out, -1).astype(np.float32)
        peak = 0
        for cols, start, stop in sliced_im2col(
            x.astype(np.float32), k, stride, pad, F32_LANES
        ):
            out[:, start:stop] = flat @ cols
            peak = max(peak, cols.size)
        stats = ConvStats(
            path="custom-16x27-float",
            macs=macs,
            lanes=F32_LANES,
            peak_buffer_floats=peak,
        )
        return out.reshape(c_out, out_h, out_w), stats

    if variant not in ("i8_acc32", "i8_acc16"):
        raise ValueError(f"unknown variant '{variant}'")
    if x_range is None:
        x_range = (float(x.min()), float(x.max()))
    # Zero-point-free regime: unsigned image data, symmetric signed weights.
    # The integer GEMM then needs no offset corrections (and u8 x i8
    # products always fit int16, the precondition of the acc16 variant).
    x_q = AffineQuantizer.from_range(0.0, x_range[1], bits=8, signed=False)
    w_q = AffineQuantizer.symmetric(
        max(abs(float(weights.min())), abs(float(weights.max()))), bits=8
    )
    raw_cols = im2col(x, k, stride, pad)
    cols = x_q.to_levels(raw_cols)
    workspace.release(raw_cols)
    flat = w_q.to_levels(weights.reshape(c_out, -1))
    if variant == "i8_acc32":
        acc = gemm_i8_acc32(flat, cols)
        out = acc.astype(np.float64) * (w_q.scale * x_q.scale)
        stats = ConvStats(
            path="custom-16x27-i8-acc32",
            macs=macs,
            lanes=F32_LANES,  # i32 accumulation limits lanes to four (§III-D)
            peak_buffer_floats=cols.size // 4,
            quantized=True,
            accumulator_bits=32,
        )
    else:
        acc16, overflow = gemm_i8_acc16(flat, cols, pre_shift=ACC16_PRESHIFT)
        out = acc16.astype(np.float64) * (
            w_q.scale * x_q.scale * (1 << ACC16_PRESHIFT)
        )
        stats = ConvStats(
            path="custom-16x27-i8-acc16",
            macs=macs,
            lanes=I16_LANES,
            peak_buffer_floats=cols.size // 4,
            quantized=True,
            accumulator_bits=16,
            overflow_events=overflow,
        )
    return out.reshape(c_out, out_h, out_w).astype(np.float32), stats


# -- batched variants ------------------------------------------------------------
#
# The batched kernels take ``(N, C, H, W)`` inputs and stack every frame's
# im2col columns into one wide integer GEMM instead of looping frames.
# Integer accumulation is exact and the acc16 saturation recurrence is
# per-entry independent, so the stacked product is bit-identical per frame
# to the single-frame kernels — *provided the quantizers are shared*.  The
# single-frame kernels derive ``x_range`` from each frame when it is not
# given; the batched kernels derive one range from the whole batch, so pass
# an explicit ``x_range`` when comparing against per-frame calls.


def _stacked_int_gemm(
    x: np.ndarray,
    flat: np.ndarray,
    to_levels,
    ksize: int,
    stride: int,
    pad: int,
    accumulator_bits: int,
    a_offset: int = 0,
    b_offset: int = 0,
):
    """Chunked frames -> stacked columns -> one integer GEMM per chunk.

    Returns ``(acc (N, c_out, positions), overflow_events, peak_cols)``.
    """
    n = x.shape[0]
    c_out = flat.shape[0]
    ckk = flat.shape[1]
    out_h = conv_output_size(x.shape[2], ksize, stride, pad)
    out_w = conv_output_size(x.shape[3], ksize, stride, pad)
    positions = out_h * out_w
    chunk = max(1, _NEON_BATCH_COL_BUDGET // max(1, ckk * positions))
    acc_dtype = np.int16 if accumulator_bits == 16 else np.int32
    acc = np.empty((n, c_out, positions), dtype=acc_dtype)
    overflow = 0
    peak = 0
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        raw = im2col_batch(x[start:stop], ksize, stride, pad)
        cols = to_levels(raw)
        workspace.release(raw)
        stacked = cols.transpose(1, 0, 2).reshape(ckk, -1)
        peak = max(peak, stacked.size)
        if accumulator_bits == 16:
            part, events = gemm_i8_acc16(
                flat, stacked, a_offset=a_offset, b_offset=b_offset,
                pre_shift=ACC16_PRESHIFT,
            )
            overflow += events
        else:
            part = gemm_i8_acc32(
                flat, stacked, a_offset=a_offset, b_offset=b_offset
            )
        acc[start:stop] = (
            part.reshape(c_out, stop - start, positions).transpose(1, 0, 2)
        )
    return acc, overflow, peak, (out_h, out_w)


def conv_gemmlowp_batch(
    x: np.ndarray,
    weights: np.ndarray,
    stride: int = 1,
    pad: int = 1,
    x_range: Tuple[float, float] = None,
) -> Tuple[np.ndarray, ConvStats]:
    """Batched :func:`conv_gemmlowp`: one uint8 GEMM over all frames' columns."""
    if x.ndim != 4:
        raise ValueError(f"batched input must be (N, C, H, W), got {x.shape}")
    c_out = weights.shape[0]
    if x_range is None:
        x_range = (float(x.min()), float(x.max()))
    x_q = AffineQuantizer.from_range(x_range[0], x_range[1], bits=8, signed=False)
    w_q = AffineQuantizer.from_range(
        float(weights.min()), float(weights.max()), bits=8, signed=False
    )
    w_levels = w_q.to_levels(weights.reshape(c_out, -1))
    acc, _, peak, (out_h, out_w) = _stacked_int_gemm(
        x, w_levels, x_q.to_levels, weights.shape[2], stride, pad,
        accumulator_bits=32,
        a_offset=-w_q.zero_point, b_offset=-x_q.zero_point,
    )
    out = acc.astype(np.float64) * (w_q.scale * x_q.scale)
    _, _, _, _, _, macs = _geometry(x[0], weights, stride, pad)
    stats = ConvStats(
        path="gemmlowp-u8-batch",
        macs=macs * x.shape[0],
        lanes=I8_LANES,
        peak_buffer_floats=peak // 4,
        quantized=True,
        accumulator_bits=32,
    )
    return out.reshape(x.shape[0], c_out, out_h, out_w).astype(np.float32), stats


def conv_int8_batch(
    x: np.ndarray,
    weights: np.ndarray,
    stride: int = 1,
    pad: int = 1,
    accumulator_bits: int = 32,
    x_range: Tuple[float, float] = None,
) -> Tuple[np.ndarray, ConvStats]:
    """Batched :func:`conv_int8`: all frames share one stacked integer GEMM.

    ``overflow_events`` in the returned stats is the total across the batch
    (equal to the sum over per-frame calls, since the acc16 saturation
    recurrence is independent per output entry).
    """
    if accumulator_bits not in (16, 32):
        raise ValueError("accumulator_bits must be 16 or 32")
    if x.ndim != 4:
        raise ValueError(f"batched input must be (N, C, H, W), got {x.shape}")
    c_out = weights.shape[0]
    if x_range is None:
        x_range = (float(x.min()), float(x.max()))
    x_q = AffineQuantizer.from_range(0.0, x_range[1], bits=8, signed=False)
    w_q = AffineQuantizer.symmetric(
        max(abs(float(weights.min())), abs(float(weights.max()))), bits=8
    )
    flat = w_q.to_levels(weights.reshape(c_out, -1))
    acc, overflow, peak, (out_h, out_w) = _stacked_int_gemm(
        x, flat, x_q.to_levels, weights.shape[2], stride, pad,
        accumulator_bits=accumulator_bits,
    )
    rescale = w_q.scale * x_q.scale
    if accumulator_bits == 16:
        rescale *= 1 << ACC16_PRESHIFT
    out = acc.astype(np.float64) * rescale
    _, _, _, _, _, macs = _geometry(x[0], weights, stride, pad)
    stats = ConvStats(
        path=f"int8-acc{accumulator_bits}-batch",
        macs=macs * x.shape[0],
        lanes=I16_LANES if accumulator_bits == 16 else F32_LANES,
        peak_buffer_floats=peak // 4,
        quantized=True,
        accumulator_bits=accumulator_bits,
        overflow_events=overflow,
    )
    return out.reshape(x.shape[0], c_out, out_h, out_w).astype(np.float32), stats


def conv_first_layer_custom_batch(
    x: np.ndarray,
    weights: np.ndarray,
    stride: int = 1,
    pad: int = 1,
    variant: str = "float",
    x_range: Tuple[float, float] = None,
) -> Tuple[np.ndarray, ConvStats]:
    """Batched 16x27 first-layer kernel.

    The integer variants stack all frames into one GEMM (bit-identical per
    frame); the float variant keeps the per-frame sliced loop, whose whole
    point is the slice-sized buffer reuse.
    """
    if x.ndim != 4:
        raise ValueError(f"batched input must be (N, C, H, W), got {x.shape}")
    c_out, c_in, k, _ = weights.shape
    if (c_out, c_in * k * k) != (16, 27):
        raise ValueError(
            f"the custom kernel is specialized for a 16x27 weight matrix, "
            f"got {c_out}x{c_in * k * k}"
        )
    if variant == "float":
        outs = []
        stats = None
        for frame in x:
            out, stats = conv_first_layer_custom(
                frame, weights, stride, pad, variant="float"
            )
            outs.append(out)
        stats = ConvStats(
            path="custom-16x27-float-batch",
            macs=stats.macs * x.shape[0],
            lanes=stats.lanes,
            peak_buffer_floats=stats.peak_buffer_floats,
        )
        return np.stack(outs, axis=0), stats
    if variant not in ("i8_acc32", "i8_acc16"):
        raise ValueError(f"unknown variant '{variant}'")
    bits = 16 if variant == "i8_acc16" else 32
    out, stats = conv_int8_batch(
        x, weights, stride, pad, accumulator_bits=bits, x_range=x_range
    )
    stats.path = f"custom-16x27-i8-acc{bits}-batch"
    return out, stats


__all__ = [
    "ConvStats",
    "conv_int8",
    "conv_int8_batch",
    "conv_generic_float",
    "conv_gemmlowp",
    "conv_gemmlowp_batch",
    "conv_fused_float",
    "conv_first_layer_custom",
    "conv_first_layer_custom_batch",
    "F32_LANES",
    "I16_LANES",
    "I8_LANES",
    "ACC16_PRESHIFT",
]
