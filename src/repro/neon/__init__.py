"""NEON vectorization substrate (§III-D).

A lane-accurate 128-bit SIMD register emulator (:mod:`repro.neon.simd`), the
convolution kernel ladder from generic im2col+GEMM to the fully customized
16x27 first-layer kernel (:mod:`repro.neon.kernels`), and the calibrated
A53/NEON execution-time model (:mod:`repro.neon.timing`).
"""

from repro.neon.kernels import (
    ACC16_PRESHIFT,
    ConvStats,
    conv_first_layer_custom,
    conv_first_layer_custom_batch,
    conv_int8,
    conv_int8_batch,
    conv_fused_float,
    conv_gemmlowp,
    conv_gemmlowp_batch,
    conv_generic_float,
    F32_LANES,
    I16_LANES,
    I8_LANES,
)
from repro.neon.timing import (
    A53_FREQ_HZ,
    ConvTimeEstimate,
    PATH_EFFICIENCY,
    conv_time_generic,
    conv_time_neon,
    generic_efficiency,
    pool_time,
)
from repro.neon import simd
from repro.neon.gemmlowp import dot27_acc16_neon, gemm_u8_neon

__all__ = [
    "simd",
    "gemm_u8_neon",
    "dot27_acc16_neon",
    "ConvStats",
    "conv_generic_float",
    "conv_gemmlowp",
    "conv_gemmlowp_batch",
    "conv_fused_float",
    "conv_first_layer_custom",
    "conv_first_layer_custom_batch",
    "conv_int8",
    "conv_int8_batch",
    "F32_LANES",
    "I16_LANES",
    "I8_LANES",
    "ACC16_PRESHIFT",
    "A53_FREQ_HZ",
    "PATH_EFFICIENCY",
    "ConvTimeEstimate",
    "generic_efficiency",
    "conv_time_generic",
    "conv_time_neon",
    "pool_time",
]
