"""Calibrated Cortex-A53 / NEON execution-time model.

We do not own a Zynq board, so wall-clock stage times are *modeled*:

    time = MACs / (f_clk * efficiency(path, geometry))

The efficiency of the generic scalar path grows with the GEMM inner
dimension (loop overhead amortizes over longer dot products) and gets a
factor ~2 for 1x1 convolutions (no im2col inflation); the NEON paths carry
one calibrated efficiency each.  All constants were fit once against the
paper's own measurements — Table III and the §III-D ladder — as documented
in DESIGN.md §6 and EXPERIMENTS.md; they are *not* free parameters per
experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

#: APU clock of the Zynq UltraScale+ EG (Fig. 2).
A53_FREQ_HZ = 1.2e9

#: Generic scalar path: efficiency saturates with the GEMM inner dimension.
#: Fit to Table III: 620 ms input layer (K=27) and 9160 ms hidden layers.
GENERIC_EFF_MAX = 0.325
GENERIC_K_HALF = 60.0
#: 1x1 convolutions skip the im2col inflation entirely (Fig. 1's degenerate
#: case): fit to the 30 ms output layer of Table III.
POINTWISE_BONUS = 2.0

#: NEON path efficiencies (MACs per cycle), fit to the §III-D ladder:
#: 280 / 295 / 160 / 140 / 120 ms for the 74.76 MMAC first layer.
PATH_EFFICIENCY = {
    "gemmlowp-u8": 0.2225,
    "fused-float": 0.2111,
    "custom-16x27-float": 0.3894,
    "custom-16x27-i8-acc32": 0.4450,
    "custom-16x27-i8-acc16": 0.5192,
}

#: Effective scalar copy bandwidth of the naive maxpool (Table III: 140 ms
#: for the 416x416x16 pool).
POOL_BANDWIDTH_BYTES_S = 99e6


@dataclass(frozen=True)
class ConvTimeEstimate:
    path: str
    macs: int
    seconds: float

    @property
    def milliseconds(self) -> float:
        return self.seconds * 1e3


def generic_efficiency(k_inner: int, kernel_size: int) -> float:
    """MACs/cycle of Darknet's scalar C path for a given GEMM geometry."""
    if k_inner <= 0:
        raise ValueError("inner dimension must be positive")
    eff = GENERIC_EFF_MAX * k_inner / (k_inner + GENERIC_K_HALF)
    if kernel_size == 1:
        eff *= POINTWISE_BONUS
    return eff


def conv_time_generic(macs: int, k_inner: int, kernel_size: int) -> ConvTimeEstimate:
    """Modeled time of Darknet's generic scalar convolution path."""
    eff = generic_efficiency(k_inner, kernel_size)
    return ConvTimeEstimate("generic-float", macs, macs / (A53_FREQ_HZ * eff))


def conv_time_neon(path: str, macs: int) -> ConvTimeEstimate:
    """Modeled time of one calibrated NEON kernel path (see PATH_EFFICIENCY)."""
    if path not in PATH_EFFICIENCY:
        raise ValueError(
            f"unknown NEON path '{path}' (known: {sorted(PATH_EFFICIENCY)})"
        )
    eff = PATH_EFFICIENCY[path]
    return ConvTimeEstimate(path, macs, macs / (A53_FREQ_HZ * eff))


def pool_time(in_elements: int, out_elements: int) -> float:
    """Naive scalar maxpool: limited by moving the float maps through L1."""
    bytes_moved = 4 * (in_elements + out_elements)
    return bytes_moved / POOL_BANDWIDTH_BYTES_S


__all__ = [
    "A53_FREQ_HZ",
    "GENERIC_EFF_MAX",
    "GENERIC_K_HALF",
    "POINTWISE_BONUS",
    "PATH_EFFICIENCY",
    "POOL_BANDWIDTH_BYTES_S",
    "ConvTimeEstimate",
    "generic_efficiency",
    "conv_time_generic",
    "conv_time_neon",
    "pool_time",
]
