"""repro — reproduction of Preußer et al., *Inference of Quantized Neural
Networks on Heterogeneous All-Programmable Devices* (DATE 2018).

The package rebuilds the paper's full system in Python:

* :mod:`repro.core` — quantized arithmetic (W1A3, int8, XNOR-popcount).
* :mod:`repro.nn` — the Darknet-like inference substrate (cfg files, layers,
  weights I/O, the generic offload mechanism of Fig. 3/4) and the topology
  zoo (Tiny YOLO, Tincy YOLO, MLP-4, CNV-6).
* :mod:`repro.finn` — the FINN-style FPGA accelerator simulator (MVTU
  folding, cycle and resource models, the fabric offload backend).
* :mod:`repro.neon` — a lane-accurate NEON SIMD emulator with the fused
  kernels of §III-D.
* :mod:`repro.perf` — op counting (Tables I/II) and the calibrated stage
  cost model (Table III, the §III speedup ladder).
* :mod:`repro.pipeline` — the pipelined demo mode of Fig. 5/6 (threaded and
  discrete-event simulated).
* :mod:`repro.video`, :mod:`repro.data`, :mod:`repro.eval`,
  :mod:`repro.train` — video path, synthetic datasets, VOC mAP, and
  quantization-aware retraining.
"""

__version__ = "1.0.0"

from repro.core import FeatureMap


def load_network(cfg_path: str, weights_path: str = None):
    """Convenience loader: cfg file (+ optional .weights) to a Network.

    Importing :mod:`repro.finn` as a side effect registers the
    ``fabric.so`` offload backend, so cfgs with ``[offload]`` sections load
    out of the box.
    """
    import repro.finn  # noqa: F401  (registers fabric.so)
    from repro.nn.network import Network
    from repro.nn.weights import load_weights

    with open(cfg_path) as handle:
        network = Network.from_cfg(handle.read())
    if weights_path:
        load_weights(network, weights_path)
    return network


__all__ = ["FeatureMap", "load_network", "__version__"]
