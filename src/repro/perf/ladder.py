"""The §III optimization ladder: 0.1 -> 1.1 -> 2.5 -> ~5.7 -> 16 fps.

Each rung re-prices the frame-processing stages after one of the paper's
measures:

0. *generic*       — Darknet's reference C inference (Table III, 0.1 fps);
1. *+ offload*     — hidden layers on the FINN fabric (11x, §III-C);
2. *+ NEON*        — custom int8/acc16 first-layer kernel (2.5 fps, §III-D);
3. *+ algorithmic* — modification (d): lean stride-2 input conv replaces
   input layer + first maxpool (>5 fps, §III-E);
4. *+ pipeline*    — the Fig. 5 demo pipeline on 4 cores (16 fps, §III-F),
   evaluated with the discrete-event simulator.

The final rung's 160x total speedup is the paper's headline number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.perf.cost_model import (
    fabric_hidden_time,
    input_layer_neon_time,
    lean_input_time,
    output_layer_time,
    table3_rows,
)
from repro.perf.stages import (
    ACQUISITION_S,
    BOX_DRAWING_S,
    CAMERA_ACCESS_S,
    IMAGE_OUTPUT_S,
    LETTERBOXING_S,
    StageTime,
)
from repro.pipeline.scheduler import StageDescriptor
from repro.pipeline.simulate import DEFAULT_JOB_OVERHEAD_S, PipelineSimulator

#: Frame rates reported in the paper at each rung.
PAPER_LADDER_FPS = {
    "generic": 0.1,
    "+offload": 1.0,
    "+neon": 2.5,
    "+algorithmic": 5.0,   # "more than 5 fps"
    "+pipeline": 16.0,
}

PAPER_TOTAL_SPEEDUP = 160.0


@dataclass
class LadderStep:
    name: str
    stages: List[StageTime]
    fps: float
    note: str = ""

    @property
    def frame_time_s(self) -> float:
        return sum(stage.seconds for stage in self.stages)


def _io_rows(split_acquisition: bool = False) -> tuple:
    if split_acquisition:
        head = [
            StageTime("#0 camera access", CAMERA_ACCESS_S, "io"),
            StageTime("#1 letter boxing", LETTERBOXING_S, "io"),
        ]
    else:
        head = [StageTime("Image Acquisition", ACQUISITION_S, "io")]
    tail = [
        StageTime("Object Boxing", BOX_DRAWING_S, "io"),
        StageTime("Frame Drawing", IMAGE_OUTPUT_S, "io"),
    ]
    return head, tail


def ladder_steps(
    workers: int = 4,
    job_overhead_s: float = DEFAULT_JOB_OVERHEAD_S,
    n_sim_frames: int = 200,
) -> List[LadderStep]:
    """All five rungs with their stage breakdowns and frame rates."""
    steps: List[LadderStep] = []

    # Rung 0: the Table III baseline.
    baseline = table3_rows()
    fps0 = 1.0 / sum(row.seconds for row in baseline)
    steps.append(
        LadderStep("generic", baseline, fps0, note="Darknet reference C on A53")
    )

    fabric = fabric_hidden_time()
    head, tail = _io_rows()
    by_name = {row.name: row for row in baseline}

    # Rung 1: hidden layers offloaded to the fabric.
    stages1 = (
        head
        + [
            by_name["Input Layer"],
            by_name["Max Pool"],
            StageTime("Hidden Layers (fabric)", fabric, "fabric"),
            by_name["Output Layer"],
        ]
        + tail
    )
    fps1 = 1.0 / sum(s.seconds for s in stages1)
    steps.append(
        LadderStep("+offload", stages1, fps1, note="FINN QNN engine, one layer at a time")
    )

    # Rung 2: NEON custom int8/acc16 kernel for the input layer.
    stages2 = (
        head
        + [
            StageTime("Input Layer (NEON i8/acc16)", input_layer_neon_time()),
            by_name["Max Pool"],
            StageTime("Hidden Layers (fabric)", fabric, "fabric"),
            by_name["Output Layer"],
        ]
        + tail
    )
    fps2 = 1.0 / sum(s.seconds for s in stages2)
    steps.append(LadderStep("+neon", stages2, fps2, note="gemmlowp-style 16x27 kernel"))

    # Rung 3: modification (d) — lean stride-2 conv replaces input+maxpool.
    stages3 = (
        head
        + [
            StageTime("Lean Input Conv (stride 2)", lean_input_time()),
            StageTime("Hidden Layers (fabric)", fabric, "fabric"),
            by_name["Output Layer"],
        ]
        + tail
    )
    fps3 = 1.0 / sum(s.seconds for s in stages3)
    steps.append(
        LadderStep("+algorithmic", stages3, fps3, note="Tincy YOLO topology, retrained")
    )

    # Rung 4: the Fig. 5 pipeline on `workers` cores.
    split_head, split_tail = _io_rows(split_acquisition=True)
    stages4 = (
        list(split_head)
        + [
            StageTime("L[0] lean input conv", lean_input_time()),
            StageTime("L[1..N-2] fabric offload", fabric, "fabric"),
            StageTime("L[N-1] output conv", output_layer_time()),
        ]
        + list(split_tail)
    )
    descriptors = [
        StageDescriptor(name=s.name, duration_s=s.seconds, resource=s.resource
                        if s.resource == "fabric" else "cpu")
        for s in stages4
    ]
    result = PipelineSimulator(
        descriptors, workers=workers, job_overhead_s=job_overhead_s
    ).run(n_sim_frames)
    steps.append(
        LadderStep(
            "+pipeline",
            stages4,
            result.fps,
            note=f"{len(stages4)}-stage pipeline on {workers} worker threads",
        )
    )
    return steps


def total_speedup(steps: List[LadderStep] = None) -> float:
    """Last-rung over first-rung frame rate — the paper's 160x headline."""
    if steps is None:
        steps = ladder_steps()
    return steps[-1].fps / steps[0].fps


__all__ = [
    "PAPER_LADDER_FPS",
    "PAPER_TOTAL_SPEEDUP",
    "LadderStep",
    "ladder_steps",
    "total_speedup",
]
