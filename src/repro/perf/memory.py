"""Memory-footprint accounting — the §I motivation for quantization.

"The challenges that must be addressed by a CNN inference engine are the
storage of and timely access to the network parameters as well as the
enormous dot-product compute.  Both challenges can be defused by
quantization.  Eliminating unnecessary precision from the network
parameters reduces their memory footprint accordingly."

This module prices a network's parameter and feature-map storage under a
precision regime: float32, int8, or the layer-specific quantization flags
of the topology itself (binary weights where ``binary=1``, thresholds in
place of BN parameters, level-coded activations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.nn.network import Network


@dataclass
class LayerMemory:
    """Storage of one layer under a given regime (bits)."""

    name: str
    weight_bits: int
    aux_bits: int            # biases / BN params or thresholds
    activation_bits: int     # output feature map

    @property
    def total_bits(self) -> int:
        return self.weight_bits + self.aux_bits + self.activation_bits


@dataclass
class MemoryReport:
    layers: List[LayerMemory]

    @property
    def weight_bytes(self) -> int:
        return sum(l.weight_bits for l in self.layers) // 8

    @property
    def aux_bytes(self) -> int:
        return sum(l.aux_bits for l in self.layers) // 8

    @property
    def activation_bytes(self) -> int:
        return sum(l.activation_bits for l in self.layers) // 8

    @property
    def total_bytes(self) -> int:
        return self.weight_bytes + self.aux_bytes + self.activation_bytes


def _conv_like_memory(layer, regime: str) -> LayerMemory:
    out_elems = int(layer.out_shape[0] * layer.out_shape[1] * layer.out_shape[2])
    n_out = layer.out_shape[0]
    n_weights = int(layer.weights.size)
    bn_params = 4 * n_out if layer.batch_normalize else n_out

    if regime == "float32":
        return LayerMemory(layer.ltype, 32 * n_weights, 32 * bn_params, 32 * out_elems)
    if regime == "int8":
        # int8 weights + float scale/zero-point per layer; BN folded or int32.
        return LayerMemory(layer.ltype, 8 * n_weights, 32 * bn_params, 8 * out_elems)
    if regime == "quantized":
        binary = getattr(layer, "binary", False)
        quant = getattr(layer, "out_quant", None)
        weight_bits = (1 if binary else 8) * n_weights
        if binary and quant is not None:
            # FINN: BN+activation folded into integer thresholds
            # (2**bits - 1 thresholds per output channel, 24-bit each).
            aux_bits = 24 * ((1 << quant.bits) - 1) * n_out
        else:
            aux_bits = 32 * bn_params
        act_bits = (quant.bits if quant is not None else 8) * out_elems
        return LayerMemory(layer.ltype, weight_bits, aux_bits, act_bits)
    raise ValueError(f"unknown memory regime '{regime}'")


def network_memory(network: Network, regime: str = "quantized") -> MemoryReport:
    """Price every parameterized layer of *network* under *regime*.

    ``regime``: ``float32`` (Darknet's native storage), ``int8`` (the
    conservative TPU-style quantization of §II), or ``quantized`` (the
    layer flags of the topology itself — Tincy YOLO's W1A3 regime).
    """
    layers = []
    for layer in network.layers:
        if layer.ltype in ("convolutional", "connected"):
            layers.append(_conv_like_memory(layer, regime))
    return MemoryReport(layers=layers)


def activation_high_water(network: Network, bytes_per_element: int = 4) -> int:
    """Peak simultaneously-live activation bytes per frame.

    Reconciles this module's keep-everything activation pricing with the
    execution engine's buffer liveness: the compiled plan releases every
    intermediate feature map after its last consumer, so the true working
    set is the *high-water mark* of the schedule, not the sum over layers.
    Always ``<= network_memory(...).activation_bytes``-style totals (for
    matching element widths).
    """
    return network.plan().peak_live_bytes(bytes_per_element=bytes_per_element)


def arena_reconciliation(network: Network, report) -> dict:
    """Reconcile a run's measured arena high-water with the plan accounting.

    *report* is the :class:`~repro.engine.executor.ExecutionReport` of a
    batched run (its ``arena`` field holds the allocator snapshot).  The
    plan side of the ledger is :meth:`ExecutionPlan.arena_budget` — peak
    live activation bytes per frame times the batch.  The arena additionally
    holds transient kernel scratch (im2col multiplicands, padded maps,
    level-code buffers), so its high-water normally *exceeds* the plan
    figure; ``scratch_bytes`` is that excess and ``ratio`` the relative
    overshoot.  A ratio far above the im2col inflation of the heaviest
    layer indicates buffers are escaping reuse.
    """
    if report.arena is None:
        raise ValueError("report carries no arena snapshot (zero-frame run?)")
    plan_bytes = network.plan().arena_budget(report.batch)
    measured = int(report.arena["high_water_bytes"])
    return {
        "batch": report.batch,
        "plan_bytes": plan_bytes,
        "arena_high_water_bytes": measured,
        "scratch_bytes": max(0, measured - plan_bytes),
        "ratio": (measured / plan_bytes) if plan_bytes else float("inf"),
        "hits": int(report.arena["hits"]),
        "misses": int(report.arena["misses"]),
        "recycled": int(report.arena["recycled"]),
    }


def compression_factor(network: Network) -> float:
    """Weight-storage compression of the topology's regime vs float32."""
    full = network_memory(network, "float32").weight_bytes
    quant = network_memory(network, "quantized").weight_bytes
    return full / quant


__all__ = [
    "LayerMemory",
    "MemoryReport",
    "network_memory",
    "activation_high_water",
    "arena_reconciliation",
    "compression_factor",
]
