"""Performance accounting: op counts (Tables I/II), the calibrated stage
cost model (Table III) and the §III speedup ladder."""

from repro.perf.cost_model import (
    PAPER_TABLE3_MS,
    fabric_hidden_accelerator,
    fabric_hidden_time,
    input_layer_neon_time,
    lean_input_time,
    output_layer_time,
    table3_rows,
    table3_total,
)
from repro.perf.ladder import (
    PAPER_LADDER_FPS,
    PAPER_TOTAL_SPEEDUP,
    LadderStep,
    ladder_steps,
    total_speedup,
)
from repro.perf.memory import (
    LayerMemory,
    MemoryReport,
    compression_factor,
    network_memory,
)
from repro.perf.report import build_report
from repro.perf.stages import (
    ACQUISITION_S,
    BOX_DRAWING_S,
    CAMERA_ACCESS_S,
    IMAGE_OUTPUT_S,
    LETTERBOXING_S,
    StageTime,
)
from repro.perf.workload import (
    PAPER_TABLE1,
    PAPER_TABLE1_TOTALS,
    PAPER_TABLE2,
    DotProductWorkload,
    Table1Row,
    dot_product_workload,
    table1_rows,
    table1_totals,
    table2_rows,
)

__all__ = [
    "PAPER_TABLE1",
    "PAPER_TABLE1_TOTALS",
    "PAPER_TABLE2",
    "PAPER_TABLE3_MS",
    "PAPER_LADDER_FPS",
    "PAPER_TOTAL_SPEEDUP",
    "Table1Row",
    "DotProductWorkload",
    "table1_rows",
    "table1_totals",
    "table2_rows",
    "dot_product_workload",
    "table3_rows",
    "table3_total",
    "fabric_hidden_accelerator",
    "fabric_hidden_time",
    "input_layer_neon_time",
    "lean_input_time",
    "output_layer_time",
    "LadderStep",
    "ladder_steps",
    "total_speedup",
    "StageTime",
    "ACQUISITION_S",
    "BOX_DRAWING_S",
    "IMAGE_OUTPUT_S",
    "CAMERA_ACCESS_S",
    "LETTERBOXING_S",
    "LayerMemory",
    "MemoryReport",
    "network_memory",
    "compression_factor",
    "build_report",
]
