"""Frame-processing stage definitions and the fixed I/O costs.

The non-compute stage constants come straight from the paper's own
measurements (Table III: acquisition 40 ms, box drawing >= 15 ms, image
output >= 25 ms); §III-F splits acquisition into camera access and internal
scaling, which we apportion 25/15 ms.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Table III constants (seconds).
ACQUISITION_S = 0.040
BOX_DRAWING_S = 0.015
IMAGE_OUTPUT_S = 0.025

#: §III-F: "the image acquisition was split into the camera access and the
#: internal scaling of the captured frame".
CAMERA_ACCESS_S = 0.025
LETTERBOXING_S = 0.015


@dataclass(frozen=True)
class StageTime:
    """One row of a stage-time breakdown."""

    name: str
    seconds: float
    resource: str = "cpu"

    @property
    def milliseconds(self) -> float:
        return self.seconds * 1e3


__all__ = [
    "ACQUISITION_S",
    "BOX_DRAWING_S",
    "IMAGE_OUTPUT_S",
    "CAMERA_ACCESS_S",
    "LETTERBOXING_S",
    "StageTime",
]
