"""Stage-level cost model — Table III and the fabric-offload timing.

Combines the calibrated A53/NEON convolution-time model
(:mod:`repro.neon.timing`), the FINN accelerator cycle model
(:mod:`repro.finn.accelerator`) and the fixed I/O costs
(:mod:`repro.perf.stages`) into whole-frame stage breakdowns.
"""

from __future__ import annotations

from typing import List

from repro.finn.accelerator import (
    DEFAULT_FOLDING,
    IteratedAccelerator,
    compile_stages,
)
from repro.neon.timing import (
    conv_time_generic,
    conv_time_neon,
    pool_time,
)
from repro.nn.network import Network
from repro.nn.zoo import tincy_yolo_config, tiny_yolo_config
from repro.perf.stages import (
    ACQUISITION_S,
    BOX_DRAWING_S,
    IMAGE_OUTPUT_S,
    StageTime,
)

#: Table III as printed (milliseconds; the last two rows are lower bounds).
PAPER_TABLE3_MS = {
    "Image Acquisition": 40,
    "Input Layer": 620,
    "Max Pool": 140,
    "Hidden Layers": 9160,
    "Output Layer": 30,
    "Box Drawing": 15,
    "Image Output": 25,
    "Total": 10_030,
}


def _conv_generic_time(layer) -> float:
    macs = layer.workload().ops // 2
    k_inner = layer.in_shape[0] * layer.size * layer.size
    return conv_time_generic(macs, k_inner, layer.size).seconds


def _pool_stage_time(layer) -> float:
    in_elements = int(
        layer.in_shape[0] * layer.in_shape[1] * layer.in_shape[2]
    )
    out_elements = int(
        layer.out_shape[0] * layer.out_shape[1] * layer.out_shape[2]
    )
    return pool_time(in_elements, out_elements)


def table3_rows(network: Network = None) -> List[StageTime]:
    """Regenerate Table III: the generic Darknet run on the A53 cores."""
    if network is None:
        network = Network(tiny_yolo_config())
    countable = [
        layer for layer in network.layers if layer.ltype in ("convolutional", "maxpool")
    ]
    input_layer = countable[0]
    first_pool = countable[1]
    hidden = countable[2:-1]
    output_layer = countable[-1]

    # Table III's "Hidden Layers" row covers the convolutions; the interior
    # pools (~138 ms combined) are small enough that the paper's rows sum to
    # the printed total without them, so we follow the same accounting.
    hidden_seconds = sum(
        _conv_generic_time(layer)
        for layer in hidden
        if layer.ltype == "convolutional"
    )

    rows = [
        StageTime("Image Acquisition", ACQUISITION_S, "io"),
        StageTime("Input Layer", _conv_generic_time(input_layer)),
        StageTime("Max Pool", _pool_stage_time(first_pool)),
        StageTime("Hidden Layers", hidden_seconds),
        StageTime("Output Layer", _conv_generic_time(output_layer)),
        StageTime("Box Drawing", BOX_DRAWING_S, "io"),
        StageTime("Image Output", IMAGE_OUTPUT_S, "io"),
    ]
    return rows


def table3_total(rows: List[StageTime] = None) -> float:
    """Sum of the Table III stage times (the 10,030 ms of 0.1 fps)."""
    if rows is None:
        rows = table3_rows()
    return sum(row.seconds for row in rows)


def fabric_hidden_accelerator(
    folding=DEFAULT_FOLDING,
) -> IteratedAccelerator:
    """The iterated engine serving Tincy YOLO's hidden layers.

    Built from a default-initialized Tincy YOLO (cycle counts and resource
    footprints are independent of the trained parameter values).
    """
    network = Network(tincy_yolo_config())
    hidden = network.layers[1:-2]  # between the first and last convolution
    in_scale = network.layers[0].out_quant.scale
    stages = compile_stages(
        hidden, in_scale, network.layers[0].out_shape, folding=folding
    )
    return IteratedAccelerator(stages)


def fabric_hidden_time() -> float:
    """Modeled time for all offloaded hidden layers (§III-C: ~30 ms)."""
    return fabric_hidden_accelerator().time_per_frame()


#: MAC counts used throughout the ladder (derived from Table I geometry).
TINY_INPUT_MACS = 16 * 27 * 416 * 416          # 74,760,192
LEAN_INPUT_MACS = 16 * 27 * 208 * 208          # modification (d): stride 2
TINY_OUTPUT_MACS = 125 * 1024 * 13 * 13        # 21,632,000


def input_layer_neon_time(path: str = "custom-16x27-i8-acc16") -> float:
    """Input-layer time on a NEON path (stride 1, pre-(d) geometry)."""
    return conv_time_neon(path, TINY_INPUT_MACS).seconds


def lean_input_time(path: str = "custom-16x27-i8-acc16") -> float:
    """Modification (d)'s lean stride-2 input convolution time (~30-35 ms)."""
    return conv_time_neon(path, LEAN_INPUT_MACS).seconds


def output_layer_time() -> float:
    """Generic-path time of the 1x1 output convolution (~30 ms)."""
    return conv_time_generic(TINY_OUTPUT_MACS, k_inner=1024, kernel_size=1).seconds


__all__ = [
    "PAPER_TABLE3_MS",
    "table3_rows",
    "table3_total",
    "fabric_hidden_accelerator",
    "fabric_hidden_time",
    "input_layer_neon_time",
    "lean_input_time",
    "output_layer_time",
    "TINY_INPUT_MACS",
    "LEAN_INPUT_MACS",
    "TINY_OUTPUT_MACS",
]
