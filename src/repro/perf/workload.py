"""Operation-count accounting — Tables I and II.

Table I lists the per-frame operations of every Tiny YOLO layer next to its
Tincy YOLO counterpart; Table II breaks the dot-product workloads of three
QNN applications into the aggressively quantized ("Reduced") and 8-bit
parts.  Both are *derived* quantities here: the zoo builds the topologies,
each layer reports its own operation count, and this module only arranges
the rows.  The paper's published numbers are kept as constants so the test
suite can assert digit-for-digit agreement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.nn.config import NetworkConfig
from repro.nn.network import Network
from repro.nn.zoo import cnv6_config, mlp4_config, tincy_yolo_config, tiny_yolo_config

#: Table I as printed in the paper (layer number, type, Tiny ops, Tincy ops).
PAPER_TABLE1: List[Tuple[int, str, int, Optional[int]]] = [
    (1, "conv", 149_520_384, 37_380_096),
    (2, "pool", 173_056, None),
    (3, "conv", 398_721_024, 797_442_048),
    (4, "pool", 43_264, 43_264),
    (5, "conv", 398_721_024, 797_442_048),
    (6, "pool", 10_816, 10_816),
    (7, "conv", 398_721_024, 398_721_024),
    (8, "pool", 2_704, 2_704),
    (9, "conv", 398_721_024, 398_721_024),
    (10, "pool", 676, 676),
    (11, "conv", 398_721_024, 398_721_024),
    (12, "pool", 676, 676),
    (13, "conv", 1_594_884_096, 797_442_048),
    (14, "conv", 3_189_768_192, 797_442_048),
    (15, "conv", 43_264_000, 21_632_000),
]

PAPER_TABLE1_TOTALS = (6_971_272_984, 4_445_001_496)

#: Table II: (reduced ops, regime, 8-bit ops) per application.
PAPER_TABLE2: Dict[str, Tuple[int, str, int]] = {
    "MLP-4": (5_820_416, "W1A1", 0),
    "CNV-6": (115_812_352, "W1A1", 3_110_400),
    "Tincy YOLO": (4_385_931_264, "W1A3", 59_012_096),
}


@dataclass
class Table1Row:
    layer: int
    ltype: str
    tiny_ops: int
    tincy_ops: Optional[int]
    note: str = ""


@dataclass
class DotProductWorkload:
    """One Table II row: the dot-product ops of a QNN application."""

    name: str
    reduced_ops: int
    regime: str
    eightbit_ops: int

    @property
    def total_ops(self) -> int:
        return self.reduced_ops + self.eightbit_ops


def countable_layers(network: Network) -> List:
    """The layers Table I counts: convolutions and pools, in order."""
    return [
        layer
        for layer in network.layers
        if layer.ltype in ("convolutional", "maxpool")
    ]


def table1_rows() -> List[Table1Row]:
    """Regenerate Table I from the zoo topologies."""
    tiny = Network(tiny_yolo_config())
    tincy = Network(tincy_yolo_config())
    tiny_layers = countable_layers(tiny)
    tincy_layers = countable_layers(tincy)
    rows: List[Table1Row] = []
    tincy_cursor = 0
    for number, layer in enumerate(tiny_layers, start=1):
        tiny_ops = layer.workload().ops
        if number == 2 and layer.ltype == "maxpool":
            # Modification (d) removed this pool from Tincy YOLO.
            rows.append(Table1Row(number, "pool", tiny_ops, None, "removed by (d)"))
            continue
        counterpart = tincy_layers[tincy_cursor]
        tincy_cursor += 1
        if counterpart.ltype != layer.ltype:
            raise RuntimeError(
                f"layer alignment broke at {number}: "
                f"{layer.ltype} vs {counterpart.ltype}"
            )
        ltype = "conv" if layer.ltype == "convolutional" else "pool"
        note = counterpart.workload().note
        rows.append(
            Table1Row(number, ltype, tiny_ops, counterpart.workload().ops, note)
        )
    return rows


def table1_totals() -> Tuple[int, int]:
    """The Σ row of Table I: (Tiny, Tincy) total ops per frame."""
    rows = table1_rows()
    tiny = sum(row.tiny_ops for row in rows)
    tincy = sum(row.tincy_ops for row in rows if row.tincy_ops is not None)
    return tiny, tincy


def dot_product_workload(name: str, config: NetworkConfig) -> DotProductWorkload:
    """Split a network's dot-product ops into reduced-precision and 8-bit.

    Only multiply-accumulate layers count (Table II is about *dot-product*
    workloads; pooling comparisons are excluded).  A layer is "reduced" when
    its weights are binarized.
    """
    network = Network(config)
    reduced = 0
    eightbit = 0
    regime = "W1A1"
    for layer in network.layers:
        if layer.ltype not in ("convolutional", "connected"):
            continue
        ops = layer.workload().ops
        if getattr(layer, "binary", False):
            reduced += ops
            quant = getattr(layer, "out_quant", None)
            if quant is not None and quant.bits > 1:
                regime = f"W1A{quant.bits}"
        else:
            eightbit += ops
    return DotProductWorkload(name, reduced, regime, eightbit)


def table2_rows() -> List[DotProductWorkload]:
    """Regenerate Table II from the zoo topologies."""
    return [
        dot_product_workload("MLP-4", mlp4_config()),
        dot_product_workload("CNV-6", cnv6_config()),
        dot_product_workload("Tincy YOLO", tincy_yolo_config()),
    ]


__all__ = [
    "PAPER_TABLE1",
    "PAPER_TABLE1_TOTALS",
    "PAPER_TABLE2",
    "Table1Row",
    "DotProductWorkload",
    "countable_layers",
    "table1_rows",
    "table1_totals",
    "dot_product_workload",
    "table2_rows",
]
