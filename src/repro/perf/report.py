"""One-shot reproduction report.

Aggregates every *model-derived* artifact (Tables I–III, the speedup
ladder, the memory footprint, the fabric fit matrix) into a single
markdown document — everything except the training-based Table IV, which
the benchmark suite owns (minutes of compute).  Used by
``python -m repro report``.
"""

from __future__ import annotations

from typing import List

from repro.util.tables import format_table


def build_report() -> str:
    """Render the full model-derived reproduction report as markdown-ish text."""
    from repro.finn.device import XCZU3EG, XCZU9EG
    from repro.nn.network import Network
    from repro.nn.zoo import tincy_yolo_config
    from repro.perf.cost_model import (
        PAPER_TABLE3_MS,
        fabric_hidden_accelerator,
        table3_rows,
        table3_total,
    )
    from repro.perf.ladder import PAPER_LADDER_FPS, ladder_steps, total_speedup
    from repro.perf.memory import compression_factor, network_memory
    from repro.perf.workload import table1_rows, table1_totals, table2_rows

    sections: List[str] = [
        "# Reproduction report — Preußer et al., DATE 2018 (Tincy YOLO)",
        "",
        "Model-derived artifacts only; run `pytest benchmarks/ "
        "--benchmark-only` for the training-based Table IV and the "
        "functional-equivalence checks.",
        "",
    ]

    rows = [
        (r.layer, r.ltype, r.tiny_ops, r.tincy_ops if r.tincy_ops is not None else "-")
        for r in table1_rows()
    ]
    totals = table1_totals()
    rows.append(("", "Σ", totals[0], totals[1]))
    sections.append(format_table(
        ["Layer", "Type", "Tiny YOLO", "Tincy YOLO"], rows,
        title="Table I: operations per frame (digit-exact)",
    ))
    sections.append("")

    sections.append(format_table(
        ["Application", "Reduced", "Regime", "8-bit"],
        [
            (r.name, f"{r.reduced_ops / 1e6:,.1f} M", r.regime,
             f"{r.eightbit_ops / 1e6:,.1f} M" if r.eightbit_ops else "-")
            for r in table2_rows()
        ],
        title="Table II: QNN dot-product workloads",
    ))
    sections.append("")

    t3 = table3_rows()
    t3_rows = [
        (r.name, f"{r.milliseconds:8.1f}", PAPER_TABLE3_MS[r.name])
        for r in t3
    ]
    t3_rows.append(
        ("Total", f"{table3_total(t3) * 1e3:8.1f}", PAPER_TABLE3_MS["Total"])
    )
    sections.append(format_table(
        ["Stage", "Model (ms)", "Paper (ms)"], t3_rows,
        title="Table III: generic-inference stage times",
    ))
    sections.append("")

    steps = ladder_steps()
    sections.append(format_table(
        ["Rung", "fps (model)", "fps (paper)"],
        [(s.name, f"{s.fps:6.2f}", PAPER_LADDER_FPS[s.name]) for s in steps],
        title=f"§III speedup ladder (total {total_speedup(steps):.0f}x, "
              "paper 160x)",
    ))
    sections.append("")

    accel = fabric_hidden_accelerator()
    resources = accel.resources()
    sections.append(format_table(
        ["Quantity", "Value"],
        [
            ("hidden-layer fabric time",
             f"{accel.time_per_frame() * 1e3:.1f} ms (paper ~30 ms)"),
            ("engine folding", f"{accel.folding.pe}x{accel.folding.simd}"),
            ("LUTs", f"{resources.luts:,} / {XCZU3EG.usable_luts:,}"),
            ("BRAM36", f"{resources.bram36} / {XCZU3EG.usable_bram36}"),
            ("fits XCZU3EG", "yes" if resources.fits(XCZU3EG) else "NO"),
            ("2x engines fit", "yes" if (resources + resources).fits(XCZU3EG)
             else "NO (only one engine fits, §III-A)"),
            ("fits XCZU9EG", "yes" if resources.fits(XCZU9EG) else "NO"),
        ],
        title="FINN iterated engine on the XCZU3EG",
    ))
    sections.append("")

    network = Network(tincy_yolo_config())
    quant = network_memory(network, "quantized")
    full = network_memory(network, "float32")
    sections.append(format_table(
        ["Quantity", "Value"],
        [
            ("float32 weights", f"{full.weight_bytes / 1e6:.1f} MB"),
            ("paper-regime weights", f"{quant.weight_bytes / 1e6:.2f} MB"),
            ("compression", f"{compression_factor(network):.0f}x"),
            ("activations (W1A3 coding)", f"{quant.activation_bytes / 1e6:.2f} MB"),
        ],
        title="§I storage: Tincy YOLO memory footprint",
    ))
    return "\n".join(sections) + "\n"


__all__ = ["build_report"]
