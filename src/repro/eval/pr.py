"""Precision-recall curve extraction and per-class reporting.

mAP compresses the detector's behaviour into one number; the PR curves
behind it show *where* quantization hurts (typically the high-recall tail,
where marginal activations get rounded away).  Used by the Table IV bench
report and the quantization-sweep example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.eval.metrics import (
    ImageEval,
    _match_class,
    _precision_recall,
    average_precision_11pt,
    average_precision_area,
)


@dataclass
class PRCurve:
    """One class's precision-recall trajectory (score-ordered)."""

    class_id: int
    precision: np.ndarray
    recall: np.ndarray
    n_truth: int

    @property
    def ap_11pt(self) -> float:
        return average_precision_11pt(self.precision, self.recall)

    @property
    def ap_area(self) -> float:
        return average_precision_area(self.precision, self.recall)

    @property
    def max_recall(self) -> float:
        return float(self.recall[-1]) if self.recall.size else 0.0

    def precision_at_recall(self, target: float) -> float:
        """Best precision achievable at recall >= target (0 if unreached)."""
        mask = self.recall >= target
        return float(self.precision[mask].max()) if mask.any() else 0.0


def pr_curves(
    images: Sequence[ImageEval], n_classes: int, iou_threshold: float = 0.5
) -> Dict[int, PRCurve]:
    """Per-class PR curves over all *images* (classes absent from the
    ground truth are skipped, as in VOC)."""
    curves: Dict[int, PRCurve] = {}
    for class_id in range(n_classes):
        tp, fp, n_truth = _match_class(images, class_id, iou_threshold)
        if n_truth == 0:
            continue
        precision, recall = _precision_recall(tp, fp, n_truth)
        curves[class_id] = PRCurve(
            class_id=class_id,
            precision=precision,
            recall=recall,
            n_truth=n_truth,
        )
    return curves


def render_pr_table(
    curves: Dict[int, PRCurve], class_names: Sequence[str] = None
) -> List[tuple]:
    """Rows (class, AP11, AParea, max recall, P@R=.5) for report tables."""
    rows = []
    for class_id in sorted(curves):
        curve = curves[class_id]
        name = (
            class_names[class_id]
            if class_names is not None and class_id < len(class_names)
            else str(class_id)
        )
        rows.append(
            (
                name,
                f"{curve.ap_11pt * 100:5.1f}",
                f"{curve.ap_area * 100:5.1f}",
                f"{curve.max_recall * 100:5.1f}",
                f"{curve.precision_at_recall(0.5) * 100:5.1f}",
                curve.n_truth,
            )
        )
    return rows


__all__ = ["PRCurve", "pr_curves", "render_pr_table"]
