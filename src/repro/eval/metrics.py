"""Pascal VOC detection metrics: per-class AP and mAP.

Implements both the classic 11-point interpolated AP (VOC2007, the metric
behind Table IV's mAP numbers) and the all-point area-under-curve variant
(VOC2010+).  Matching follows the VOC protocol: detections are processed in
descending score order, each may claim at most one unmatched ground truth
with IoU above the threshold; duplicates are false positives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.eval.boxes import Detection, GroundTruth, iou


@dataclass
class ImageEval:
    """Detections and ground truth of one image."""

    detections: Sequence[Detection]
    truths: Sequence[GroundTruth]


def _match_class(
    images: Sequence[ImageEval], class_id: int, iou_threshold: float
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Score-ordered TP/FP flags for one class over all images."""
    records: List[Tuple[float, int, int]] = []  # (score, image idx, det idx)
    n_truth = 0
    for image_index, image in enumerate(images):
        n_truth += sum(1 for t in image.truths if t.class_id == class_id)
        for det_index, det in enumerate(image.detections):
            if det.class_id == class_id:
                records.append((det.score, image_index, det_index))
    records.sort(key=lambda r: -r[0])
    tp = np.zeros(len(records))
    fp = np.zeros(len(records))
    claimed: Dict[Tuple[int, int], bool] = {}
    for rank, (score, image_index, det_index) in enumerate(records):
        image = images[image_index]
        det = image.detections[det_index]
        best_iou, best_truth = 0.0, None
        for truth_index, truth in enumerate(image.truths):
            if truth.class_id != class_id:
                continue
            overlap = iou(det.box, truth.box)
            if overlap > best_iou:
                best_iou, best_truth = overlap, truth_index
        if best_truth is not None and best_iou >= iou_threshold:
            key = (image_index, best_truth)
            if not claimed.get(key):
                claimed[key] = True
                tp[rank] = 1
            else:
                fp[rank] = 1  # duplicate detection of a matched object
        else:
            fp[rank] = 1
    return tp, fp, n_truth


def _precision_recall(
    tp: np.ndarray, fp: np.ndarray, n_truth: int
) -> Tuple[np.ndarray, np.ndarray]:
    cum_tp = np.cumsum(tp)
    cum_fp = np.cumsum(fp)
    recall = cum_tp / max(n_truth, 1)
    precision = cum_tp / np.maximum(cum_tp + cum_fp, 1e-12)
    return precision, recall


def average_precision_11pt(precision: np.ndarray, recall: np.ndarray) -> float:
    """VOC2007 11-point interpolation."""
    if precision.size == 0:
        return 0.0
    total = 0.0
    for point in np.linspace(0.0, 1.0, 11):
        mask = recall >= point
        total += float(precision[mask].max()) if mask.any() else 0.0
    return total / 11.0


def average_precision_area(precision: np.ndarray, recall: np.ndarray) -> float:
    """VOC2010+ area under the interpolated precision-recall curve."""
    if precision.size == 0:
        return 0.0
    mrec = np.concatenate(([0.0], recall, [1.0]))
    mpre = np.concatenate(([0.0], precision, [0.0]))
    for index in range(mpre.size - 2, -1, -1):
        mpre[index] = max(mpre[index], mpre[index + 1])
    changes = np.where(mrec[1:] != mrec[:-1])[0]
    return float(np.sum((mrec[changes + 1] - mrec[changes]) * mpre[changes + 1]))


@dataclass
class MAPResult:
    per_class_ap: Dict[int, float]
    map_percent: float
    method: str

    def __repr__(self) -> str:
        return f"<mAP {self.map_percent:.1f}% ({self.method})>"


def evaluate_map(
    images: Sequence[ImageEval],
    n_classes: int,
    iou_threshold: float = 0.5,
    method: str = "11pt",
) -> MAPResult:
    """Mean average precision over classes that appear in the ground truth."""
    if method == "11pt":
        ap_fn = average_precision_11pt
    elif method == "area":
        ap_fn = average_precision_area
    else:
        raise ValueError(f"unknown AP method '{method}'")
    per_class: Dict[int, float] = {}
    for class_index in range(n_classes):
        tp, fp, n_truth = _match_class(images, class_index, iou_threshold)
        if n_truth == 0:
            continue  # VOC skips absent classes
        precision, recall = _precision_recall(tp, fp, n_truth)
        per_class[class_index] = ap_fn(precision, recall)
    mean = float(np.mean(list(per_class.values()))) if per_class else 0.0
    return MAPResult(per_class_ap=per_class, map_percent=100.0 * mean, method=method)


__all__ = [
    "ImageEval",
    "MAPResult",
    "average_precision_11pt",
    "average_precision_area",
    "evaluate_map",
]
