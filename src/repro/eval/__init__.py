"""Detection evaluation: boxes, IoU, NMS and Pascal VOC mAP."""

from repro.eval.boxes import Box, Detection, iou, nms
from repro.eval.pr import PRCurve, pr_curves, render_pr_table
from repro.eval.metrics import (
    ImageEval,
    MAPResult,
    average_precision_11pt,
    average_precision_area,
    evaluate_map,
)

__all__ = [
    "Box",
    "Detection",
    "iou",
    "nms",
    "ImageEval",
    "MAPResult",
    "average_precision_11pt",
    "average_precision_area",
    "evaluate_map",
    "PRCurve",
    "pr_curves",
    "render_pr_table",
]
