"""Bounding boxes, IoU and non-maximum suppression.

Boxes use the Darknet convention: normalized center coordinates
``(x, y, w, h)`` in ``[0, 1]`` relative to the network input square (the
letterboxed frame).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Sequence


@dataclass(frozen=True)
class Box:
    x: float
    y: float
    w: float
    h: float

    @property
    def left(self) -> float:
        return self.x - self.w / 2

    @property
    def right(self) -> float:
        return self.x + self.w / 2

    @property
    def top(self) -> float:
        return self.y - self.h / 2

    @property
    def bottom(self) -> float:
        return self.y + self.h / 2

    @property
    def area(self) -> float:
        return max(self.w, 0.0) * max(self.h, 0.0)


@dataclass(frozen=True)
class GroundTruth:
    """One annotated object of a dataset image."""

    class_id: int
    box: Box


@dataclass(frozen=True)
class Detection:
    """One detected object: a box, its class and the detection confidence."""

    box: Box
    class_id: int
    score: float
    objectness: float = 0.0

    def with_score(self, score: float) -> "Detection":
        return replace(self, score=score)


def iou(a: Box, b: Box) -> float:
    """Intersection over union of two boxes (0 when disjoint)."""
    ix = min(a.right, b.right) - max(a.left, b.left)
    iy = min(a.bottom, b.bottom) - max(a.top, b.top)
    if ix <= 0 or iy <= 0:
        return 0.0
    inter = ix * iy
    union = a.area + b.area - inter
    if union <= 0:
        return 0.0
    return inter / union


def _nms_order(det: Detection) -> tuple:
    """Total order for NMS: score first, deterministic tie-breaks after.

    Ties must break identically on every pass or NMS would not be
    idempotent (a property test guards this).
    """
    return (-det.score, det.class_id, det.box.x, det.box.y, det.box.w, det.box.h)


def nms(
    detections: Sequence[Detection], iou_threshold: float = 0.45
) -> List[Detection]:
    """Greedy per-class non-maximum suppression (Darknet's ``do_nms_sort``)."""
    kept: List[Detection] = []
    by_class = {}
    for det in detections:
        by_class.setdefault(det.class_id, []).append(det)
    for dets in by_class.values():
        dets = sorted(dets, key=_nms_order)
        survivors: List[Detection] = []
        for det in dets:
            if all(iou(det.box, keep.box) <= iou_threshold for keep in survivors):
                survivors.append(det)
        kept.extend(survivors)
    return sorted(kept, key=_nms_order)


__all__ = ["Box", "GroundTruth", "Detection", "iou", "nms"]
