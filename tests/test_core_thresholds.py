"""FINN threshold-activation derivation tests.

The central invariant: counting integer thresholds is *exactly* equivalent to
the float BN + ReLU + re-quantization pipeline, for every integer
accumulator value a layer can produce.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.thresholds import (
    ThresholdActivation,
    derive_thresholds,
    float_reference_activation,
)


def _random_bn(rng, channels, allow_negative_gamma=True):
    gamma = rng.uniform(0.2, 2.0, size=channels)
    if allow_negative_gamma:
        gamma *= rng.choice([-1.0, 1.0], size=channels)
    beta = rng.uniform(-1.0, 1.0, size=channels)
    mean = rng.uniform(-5.0, 5.0, size=channels)
    var = rng.uniform(0.1, 4.0, size=channels)
    return gamma, beta, mean, var


class TestDeriveThresholds:
    @pytest.mark.parametrize("bits", [1, 2, 3])
    def test_exact_equivalence_exhaustive_accumulators(self, rng, bits):
        channels = 8
        gamma, beta, mean, var = _random_bn(rng, channels)
        in_scale, out_scale = 1.0 / 7.0, 1.0 / 7.0
        ta = derive_thresholds(gamma, beta, mean, var, in_scale, out_scale, bits)
        # Every accumulator a 3x3x16 binary-weight layer can produce.
        max_acc = 7 * 144
        acc = np.tile(np.arange(-max_acc, max_acc + 1), (channels, 1))
        got = ta.apply(acc)
        expected = float_reference_activation(
            acc, gamma, beta, mean, var, in_scale, out_scale, bits
        )
        assert np.array_equal(got, expected)

    def test_negative_gamma_flips_comparison(self, rng):
        channels = 4
        gamma = np.full(channels, -1.0)
        beta = np.zeros(channels)
        mean = np.zeros(channels)
        var = np.ones(channels) - 1e-6
        ta = derive_thresholds(gamma, beta, mean, var, 1.0, 1.0, bits=1)
        assert np.all(ta.signs == -1)
        # y = -acc: positive accumulators give level 0, negative level 1.
        acc = np.tile(np.array([-3, -1, 0, 1, 3]), (channels, 1))
        got = ta.apply(acc)
        expected = float_reference_activation(
            acc, gamma, beta, mean, var, 1.0, 1.0, bits=1
        )
        assert np.array_equal(got, expected)

    def test_zero_gamma_constant_channel(self):
        gamma = np.array([0.0, 0.0])
        beta = np.array([10.0, -10.0])
        mean = np.zeros(2)
        var = np.ones(2)
        ta = derive_thresholds(gamma, beta, mean, var, 1.0, 1.0, bits=2)
        acc = np.tile(np.array([-100, 0, 100]), (2, 1))
        got = ta.apply(acc)
        assert np.all(got[0] == 3)  # beta=10 saturates to top level
        assert np.all(got[1] == 0)

    @given(seed=st.integers(0, 10_000), bits=st.sampled_from([1, 2, 3]))
    @settings(max_examples=40, deadline=None)
    def test_equivalence_random_bn(self, seed, bits):
        rng = np.random.default_rng(seed)
        channels = 3
        gamma, beta, mean, var = _random_bn(rng, channels)
        in_scale = float(rng.uniform(0.05, 1.0))
        out_scale = float(rng.uniform(0.05, 1.0))
        ta = derive_thresholds(gamma, beta, mean, var, in_scale, out_scale, bits)
        acc = rng.integers(-500, 500, size=(channels, 64))
        got = ta.apply(acc)
        expected = float_reference_activation(
            acc, gamma, beta, mean, var, in_scale, out_scale, bits
        )
        assert np.array_equal(got, expected)

    def test_apply_on_spatial_maps(self, rng):
        channels = 5
        gamma, beta, mean, var = _random_bn(rng, channels)
        ta = derive_thresholds(gamma, beta, mean, var, 0.2, 0.3, bits=3)
        acc = rng.integers(-200, 200, size=(channels, 6, 7))
        got = ta.apply(acc)
        assert got.shape == (channels, 6, 7)
        expected = float_reference_activation(
            acc, gamma, beta, mean, var, 0.2, 0.3, bits=3
        )
        assert np.array_equal(got, expected)

    def test_wrong_channel_count_rejected(self, rng):
        gamma, beta, mean, var = _random_bn(rng, 4)
        ta = derive_thresholds(gamma, beta, mean, var, 1.0, 1.0, bits=3)
        with pytest.raises(ValueError):
            ta.apply(np.zeros((5, 2)))

    def test_threshold_count_validation(self):
        with pytest.raises(ValueError):
            ThresholdActivation(
                thresholds=np.zeros((2, 3)), signs=np.ones(2), bits=3
            )
