"""Synthetic dataset tests."""

import numpy as np
import pytest

from repro.data.classify import GlyphClassificationDataset, cifar_like, mnist_like
from repro.data.shapes import (
    CLASS_NAMES,
    N_CLASSES,
    SHAPES,
    ShapesDetectionDataset,
    class_id,
)


class TestShapesDataset:
    def test_determinism(self):
        a = ShapesDetectionDataset(seed=3)
        b = ShapesDetectionDataset(seed=3)
        image_a, truths_a = a.sample(7)
        image_b, truths_b = b.sample(7)
        assert np.array_equal(image_a, image_b)
        assert truths_a == truths_b

    def test_different_indices_differ(self):
        dataset = ShapesDetectionDataset(seed=3)
        image_a, _ = dataset.sample(0)
        image_b, _ = dataset.sample(1)
        assert not np.array_equal(image_a, image_b)

    def test_image_range_and_shape(self):
        dataset = ShapesDetectionDataset(image_size=64, seed=1)
        image, _ = dataset.sample(0)
        assert image.shape == (3, 64, 64)
        assert image.min() >= 0.0 and image.max() <= 1.0

    def test_ground_truth_boxes_valid(self):
        dataset = ShapesDetectionDataset(seed=1, max_objects=3)
        for index in range(20):
            _, truths = dataset.sample(index)
            assert 1 <= len(truths) <= 3
            for truth in truths:
                assert 0 <= truth.class_id < N_CLASSES
                assert 0.0 <= truth.box.left and truth.box.right <= 1.0 + 1e-9
                assert 0.0 <= truth.box.top and truth.box.bottom <= 1.0 + 1e-9

    def test_twenty_classes_like_voc(self):
        assert N_CLASSES == 20
        assert len(CLASS_NAMES) == 20

    def test_class_id_mapping(self):
        assert class_id(SHAPES[0], "red") == 0
        assert class_id(SHAPES[1], "red") == 4
        with pytest.raises(ValueError):
            class_id("hexagon", "red")

    def test_objects_are_visible(self):
        """Rendered shapes must paint their class color inside their box."""
        from repro.data.shapes import COLORS

        dataset = ShapesDetectionDataset(seed=9, noise=0.0, min_objects=1, max_objects=1)
        for index in range(10):
            image, truths = dataset.sample(index)
            truth = truths[0]
            size = image.shape[1]
            left, right = int(truth.box.left * size), int(truth.box.right * size)
            top, bottom = int(truth.box.top * size), int(truth.box.bottom * size)
            patch = image[:, top:bottom, left:right]
            color = np.array(COLORS[truth.class_id % len(COLORS)][1])
            # Some pixel of the patch must be close to the (possibly shaded)
            # class color — shapes like rings are hollow, so not all are.
            diffs = np.abs(patch - color[:, None, None]).max(axis=0)
            assert diffs.min() < 0.2

    def test_validation(self):
        with pytest.raises(ValueError, match="max_objects"):
            ShapesDetectionDataset(min_objects=3, max_objects=1)


class TestGlyphDataset:
    def test_mnist_like_geometry(self):
        image, label = mnist_like(seed=0).sample(0)
        assert image.shape == (1, 28, 28)
        assert 0 <= label < 10

    def test_cifar_like_geometry(self):
        image, label = cifar_like(seed=0).sample(0)
        assert image.shape == (3, 32, 32)

    def test_determinism(self):
        a, la = mnist_like(seed=4).sample(5)
        b, lb = mnist_like(seed=4).sample(5)
        assert np.array_equal(a, b) and la == lb

    def test_batch(self):
        images, labels = cifar_like(seed=1).batch(0, 8)
        assert images.shape == (8, 3, 32, 32)
        assert labels.shape == (8,)

    def test_all_classes_reachable(self):
        dataset = GlyphClassificationDataset(seed=2)
        labels = {dataset.sample(i)[1] for i in range(200)}
        assert labels == set(range(10))

    def test_classes_distinguishable_by_template(self):
        """A trivial nearest-template classifier must beat chance easily —
        otherwise the dataset is too hard to show quantization effects."""
        from repro.data.classify import _glyph

        dataset = GlyphClassificationDataset(seed=3, jitter=1, noise=0.1)
        templates = np.stack([_glyph(c, 26) for c in range(10)])
        correct = 0
        total = 100
        for i in range(total):
            image, label = dataset.sample(i)
            padded = image[0, 1:27, 1:27]
            scores = [
                float((padded * t).sum() / (t.sum() + 1)) for t in templates
            ]
            if int(np.argmax(scores)) == label:
                correct += 1
        assert correct / total > 0.5
