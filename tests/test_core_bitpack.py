"""Bit packing and XNOR-popcount datapath tests.

These guarantee the packed binary arithmetic is *bit-faithful* to plain
integer dot products — the property that makes the FINN emulation exact.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitpack import (
    bitserial_dot,
    pack_bits,
    pack_levels,
    popcount,
    signed_bitplane_dot,
    unpack_bits,
    xnor_popcount_dot,
)


class TestPackBits:
    def test_roundtrip_short(self, rng):
        bits = rng.integers(0, 2, size=13)
        words, n = pack_bits(bits)
        assert n == 13
        assert words.shape == (1,)
        assert np.array_equal(unpack_bits(words, n), bits)

    def test_roundtrip_multiword(self, rng):
        bits = rng.integers(0, 2, size=200)
        words, n = pack_bits(bits)
        assert words.shape == (4,)
        assert np.array_equal(unpack_bits(words, n), bits)

    def test_batched_leading_dims(self, rng):
        bits = rng.integers(0, 2, size=(5, 3, 70))
        words, n = pack_bits(bits)
        assert words.shape == (5, 3, 2)
        assert np.array_equal(unpack_bits(words, n), bits)

    @given(n=st.integers(1, 300))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_any_length(self, n):
        bits = np.random.default_rng(n).integers(0, 2, size=n)
        words, length = pack_bits(bits)
        assert np.array_equal(unpack_bits(words, length), bits)


class TestPopcount:
    def test_known_values(self):
        words = np.array([0, 1, 3, 0xFFFFFFFFFFFFFFFF], dtype=np.uint64)
        assert popcount(words).tolist() == [0, 1, 2, 64]

    def test_matches_python_bin(self, rng):
        words = rng.integers(0, 2**63, size=50, dtype=np.uint64)
        expected = [bin(int(w)).count("1") for w in words]
        assert popcount(words).tolist() == expected


class TestXnorPopcountDot:
    def _reference(self, w, a):
        return int(np.dot(w, a))

    def test_matches_integer_dot(self, rng):
        for n in (1, 27, 64, 65, 144, 1000):
            w = rng.choice([-1, 1], size=n)
            a = rng.choice([-1, 1], size=n)
            pw, _ = pack_bits((w > 0).astype(np.uint8))
            pa, _ = pack_bits((a > 0).astype(np.uint8))
            assert xnor_popcount_dot(pw, pa, n) == self._reference(w, a)

    def test_padding_bits_do_not_leak(self):
        # All -1 against all -1 over 3 elements: dot = 3, but the 61 padding
        # zeros of both words XNOR to ones — they must be masked away.
        w = np.array([-1, -1, -1])
        pw, _ = pack_bits((w > 0).astype(np.uint8))
        assert xnor_popcount_dot(pw, pw, 3) == 3

    def test_batched_weight_matrix(self, rng):
        n, rows = 100, 16
        weights = rng.choice([-1, 1], size=(rows, n))
        activation = rng.choice([-1, 1], size=n)
        pw, _ = pack_bits((weights > 0).astype(np.uint8))
        pa, _ = pack_bits((activation > 0).astype(np.uint8))
        got = xnor_popcount_dot(pw, pa, n)
        expected = weights @ activation
        assert np.array_equal(got, expected)


class TestBitserialDot:
    def test_single_plane_matches_signed_dot(self, rng):
        n = 80
        w = rng.choice([-1, 1], size=n)
        bits = rng.integers(0, 2, size=n)
        pw, _ = pack_bits((w > 0).astype(np.uint8))
        plane, _ = pack_bits(bits)
        assert signed_bitplane_dot(pw, plane, n) == int(np.dot(w, bits))

    def test_three_bit_activations(self, rng):
        # The exact W1A3 datapath of the paper's hidden layers.
        n = 144  # 16 channels * 3x3 kernel
        w = rng.choice([-1, 1], size=n)
        levels = rng.integers(0, 8, size=n)
        pw, _ = pack_bits((w > 0).astype(np.uint8))
        planes, _ = pack_levels(levels, bits=3)
        assert bitserial_dot(pw, planes, n) == int(np.dot(w, levels))

    @given(n=st.integers(1, 200), bits=st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_any_width(self, n, bits):
        rng = np.random.default_rng(n * 10 + bits)
        w = rng.choice([-1, 1], size=n)
        levels = rng.integers(0, 1 << bits, size=n)
        pw, _ = pack_bits((w > 0).astype(np.uint8))
        planes, _ = pack_levels(levels, bits=bits)
        assert bitserial_dot(pw, planes, n) == int(np.dot(w, levels))

    def test_batched_matrix_times_vector(self, rng):
        rows, n = 8, 90
        weights = rng.choice([-1, 1], size=(rows, n))
        levels = rng.integers(0, 8, size=n)
        pw, _ = pack_bits((weights > 0).astype(np.uint8))
        planes, _ = pack_levels(levels, bits=3)
        got = bitserial_dot(pw, planes, n)
        assert np.array_equal(got, weights @ levels)

    def test_pack_levels_rejects_out_of_range(self):
        import pytest

        with pytest.raises(ValueError):
            pack_levels(np.array([8]), bits=3)
