"""Batch-norm folding tests."""

import numpy as np
import pytest

from repro.core.tensor import FeatureMap
from repro.nn.config import Section
from repro.nn.fold_bn import fold_batchnorm_conv, fold_network_batchnorms
from repro.nn.layers.convolutional import ConvolutionalLayer
from repro.nn.network import Network


def make_bn_conv(rng, filters=6, **extra):
    options = {
        "filters": str(filters),
        "size": "3",
        "stride": "1",
        "pad": "1",
        "activation": "leaky",
        "batch_normalize": "1",
    }
    options.update({k: str(v) for k, v in extra.items()})
    layer = ConvolutionalLayer(Section("convolutional", options))
    layer.init((3, 10, 10))
    layer.initialize(rng)
    layer.scales = rng.uniform(0.5, 2.0, size=filters).astype(np.float32)
    layer.biases = rng.normal(size=filters).astype(np.float32)
    layer.rolling_mean = (rng.normal(size=filters) * 2).astype(np.float32)
    layer.rolling_var = rng.uniform(0.5, 2.0, size=filters).astype(np.float32)
    return layer


class TestFoldConv:
    def test_fold_is_exact(self, rng):
        layer = make_bn_conv(rng)
        folded = fold_batchnorm_conv(layer)
        x = FeatureMap(rng.normal(size=(3, 10, 10)).astype(np.float32))
        assert np.allclose(
            folded.forward(x).data, layer.forward(x).data, atol=1e-4
        )
        assert not folded.batch_normalize

    def test_fold_with_activation_quantization(self, rng):
        """Folding commutes with the downstream 3-bit activation quantizer."""
        layer = make_bn_conv(rng, activation="relu", activation_bits=3)
        folded = fold_batchnorm_conv(layer)
        x = FeatureMap(rng.normal(size=(3, 10, 10)).astype(np.float32))
        a, b = layer.forward(x), folded.forward(x)
        assert np.array_equal(a.data, b.data)
        assert a.scale == b.scale

    def test_original_layer_untouched(self, rng):
        layer = make_bn_conv(rng)
        weights_before = layer.weights.copy()
        fold_batchnorm_conv(layer)
        assert np.array_equal(layer.weights, weights_before)
        assert layer.batch_normalize

    def test_rejects_bn_free_layer(self, rng):
        layer = make_bn_conv(rng, batch_normalize=0)
        with pytest.raises(ValueError, match="no batch normalization"):
            fold_batchnorm_conv(layer)

    def test_rejects_quantized_weights(self, rng):
        layer = make_bn_conv(rng, binary=1)
        with pytest.raises(ValueError, match="thresholds"):
            fold_batchnorm_conv(layer)


class TestFoldNetwork:
    CFG = """
[net]
width=16
height=16
channels=3

[convolutional]
batch_normalize=1
filters=4
size=3
stride=1
pad=1
activation=relu

[convolutional]
batch_normalize=1
filters=6
size=3
stride=2
pad=1
activation=relu
binary=1
activation_bits=3

[convolutional]
batch_normalize=1
filters=4
size=1
stride=1
pad=0
activation=linear
"""

    def _network(self, rng):
        network = Network.from_cfg(self.CFG)
        network.initialize(rng)
        for layer in network.layers:
            n = layer.filters
            layer.scales = rng.uniform(0.5, 2.0, size=n).astype(np.float32)
            layer.biases = rng.normal(size=n).astype(np.float32)
            layer.rolling_mean = (rng.normal(size=n)).astype(np.float32)
            layer.rolling_var = rng.uniform(0.5, 2.0, size=n).astype(np.float32)
        return network

    def test_folds_only_float_layers(self, rng):
        network = self._network(rng)
        x = FeatureMap(rng.normal(size=(3, 16, 16)).astype(np.float32))
        before = network.forward(x)
        count = fold_network_batchnorms(network)
        after = network.forward(x)
        assert count == 2  # the binary middle layer is skipped
        assert network.layers[1].batch_normalize  # fabric layer untouched
        assert np.allclose(before.data, after.data, atol=1e-4)
