"""Unit tests for ``repro.faults``: plans, parsing, determinism, seams."""

import threading

import numpy as np
import pytest

from repro import faults
from repro.core.tensor import FeatureMapBatch
from repro.util.clock import VirtualClock


class TestFaultSpec:
    def test_default_site_per_kind(self):
        assert faults.FaultSpec(faults.FABRIC_RAISE).site == faults.FABRIC_STEP
        assert faults.FaultSpec(faults.QUEUE_STALL).site == faults.QUEUE_POP
        assert faults.FaultSpec(faults.WORKER_DEATH).site == faults.WORKER

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            faults.FaultSpec("fabric-meltdown")

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            faults.FaultSpec(faults.FABRIC_RAISE, site="serve.nowhere")

    def test_non_fabric_kind_cannot_target_fabric_site(self):
        with pytest.raises(ValueError, match="cannot target"):
            faults.FaultSpec(faults.WORKER_DEATH, site=faults.FABRIC_STEP)

    def test_at_and_rate_are_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            faults.FaultSpec(faults.FABRIC_RAISE, at=(0,), rate=0.5)

    def test_rate_bounds(self):
        with pytest.raises(ValueError, match="rate"):
            faults.FaultSpec(faults.FABRIC_RAISE, rate=1.5)


class TestParse:
    def test_explicit_indices(self):
        plan = faults.FaultPlan.parse("fabric-raise@0,2,5")
        assert plan.specs[0].at == (0, 2, 5)
        assert plan.specs[0].site == faults.FABRIC_STEP

    def test_rate(self):
        plan = faults.FaultPlan.parse("fabric-corrupt%0.25", seed=7)
        assert plan.specs[0].rate == 0.25
        assert plan.seed == 7

    def test_bare_kind_fires_once(self):
        plan = faults.FaultPlan.parse("fabric-hang")
        assert plan.specs[0].at == (0,)

    def test_site_override(self):
        plan = faults.FaultPlan.parse("fabric-raise/fabric.backend@0")
        assert plan.specs[0].site == faults.FABRIC_BACKEND

    def test_multiple_specs(self):
        plan = faults.FaultPlan.parse("fabric-raise@0;worker-death@1")
        assert [s.kind for s in plan.specs] == [
            faults.FABRIC_RAISE,
            faults.WORKER_DEATH,
        ]

    def test_bad_indices_rejected(self):
        with pytest.raises(ValueError, match="indices"):
            faults.FaultPlan.parse("fabric-raise@a,b")

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="no fault rules"):
            faults.FaultPlan.parse(" ; ")

    def test_describe_is_json_safe(self):
        import json

        plan = faults.FaultPlan.parse("fabric-raise@0;fabric-corrupt%0.5")
        assert json.loads(json.dumps(plan.describe())) == plan.describe()


class TestSeams:
    def test_noop_without_installed_plan(self):
        assert faults.active() is None
        assert faults.call(faults.FABRIC_STEP, lambda: 42) == 42
        assert faults.stall(faults.QUEUE_POP) is False
        faults.fire(faults.WORKER)  # must not raise

    def test_raise_at_selected_invocations(self):
        plan = faults.FaultPlan.parse("fabric-raise@1")
        with faults.install(plan) as injector:
            assert faults.call(faults.FABRIC_STEP, lambda: "ok") == "ok"
            with pytest.raises(faults.FabricFault):
                faults.call(faults.FABRIC_STEP, lambda: "ok")
            assert faults.call(faults.FABRIC_STEP, lambda: "ok") == "ok"
            assert injector.events() == [
                (faults.FABRIC_STEP, faults.FABRIC_RAISE, 1, "")
            ]

    def test_hang_advances_injected_clock(self):
        clock = VirtualClock()
        plan = faults.FaultPlan(
            [faults.FaultSpec(faults.FABRIC_HANG, at=(0,), hang_s=2.5)]
        )
        with faults.install(plan, clock=clock):
            with pytest.raises(faults.FabricHang) as excinfo:
                faults.call(faults.FABRIC_STEP, lambda: "ok")
        assert excinfo.value.hang_s == 2.5
        assert clock() == 2.5

    def test_corrupt_changes_exactly_one_element(self):
        plan = faults.FaultPlan.parse("fabric-corrupt@0", seed=3)
        clean = FeatureMapBatch(
            np.zeros((2, 3, 4, 4), dtype=np.int64), scale=0.5
        )
        with faults.install(plan):
            dirty = faults.call(faults.FABRIC_STEP, lambda: clean)
        assert dirty.scale == clean.scale
        assert np.count_nonzero(dirty.data != clean.data) == 1
        # The original result object is never mutated in place.
        assert np.count_nonzero(clean.data) == 0

    def test_corruption_position_is_seeded(self):
        outs = []
        for _ in range(2):
            plan = faults.FaultPlan.parse("fabric-corrupt@0", seed=11)
            clean = FeatureMapBatch(np.zeros((1, 2, 3, 3), dtype=np.int64))
            with faults.install(plan):
                outs.append(faults.call(faults.FABRIC_STEP, lambda: clean))
        assert np.array_equal(outs[0].data, outs[1].data)

    def test_stall_and_worker_death(self):
        plan = faults.FaultPlan.parse("queue-stall@0;worker-death@0")
        with faults.install(plan):
            assert faults.stall(faults.QUEUE_POP) is True
            assert faults.stall(faults.QUEUE_POP) is False
            with pytest.raises(faults.WorkerDeath):
                faults.fire(faults.WORKER)
            faults.fire(faults.WORKER)  # invocation 1: no fault

    def test_rate_draws_are_deterministic(self):
        def run():
            plan = faults.FaultPlan.parse("fabric-raise%0.5", seed=99)
            fired = []
            with faults.install(plan) as injector:
                for _ in range(32):
                    try:
                        faults.call(faults.FABRIC_STEP, lambda: None)
                    except faults.FabricFault:
                        pass
                fired = injector.events()
            return fired

        first, second = run(), run()
        assert first == second
        assert 0 < len(first) < 32  # the coin really has two sides

    def test_limit_caps_rate_fires(self):
        plan = faults.FaultPlan(
            [faults.FaultSpec(faults.FABRIC_RAISE, rate=1.0, limit=2)]
        )
        with faults.install(plan) as injector:
            for _ in range(5):
                try:
                    faults.call(faults.FABRIC_STEP, lambda: None)
                except faults.FabricFault:
                    pass
            assert len(injector.events()) == 2

    def test_nested_install_refused(self):
        plan = faults.FaultPlan.parse("fabric-raise@0")
        with faults.install(plan):
            with pytest.raises(RuntimeError, match="already installed"):
                with faults.install(plan):
                    pass
        assert faults.active() is None

    def test_counters_are_race_free(self):
        plan = faults.FaultPlan.parse("fabric-raise@100000")  # never fires
        with faults.install(plan) as injector:
            threads = [
                threading.Thread(
                    target=lambda: [
                        faults.call(faults.FABRIC_STEP, lambda: None)
                        for _ in range(200)
                    ]
                )
                for _ in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert injector.invocations(faults.FABRIC_STEP) == 1600

    def test_fabric_exceptions_form_one_family(self):
        for exc in (
            faults.FabricFault,
            faults.FabricHang,
            faults.FabricTimeout,
            faults.FabricCorruption,
        ):
            assert issubclass(exc, faults.FabricError)
        assert not issubclass(faults.WorkerDeath, faults.FabricError)
