"""The optimizing pass pipeline: bit-identity and per-pass behavior."""

import numpy as np
import pytest
from dataclasses import replace

from repro.core.resources import FABRIC
from repro.core.tensor import FeatureMapBatch
from repro.engine.reference import legacy_forward_batch_all
from repro.isa import (
    PIPELINES,
    PassError,
    PassManager,
    PlanVM,
    compile_network,
    decode,
    encode,
    frontend,
    peak_live_elements,
)
from repro.isa.ops import (
    CONV,
    FUSED,
    LOAD_INPUT,
    OFFLOAD,
    PART_WHOLE,
    RELEASE,
    STORE_OUTPUT,
    THRESHOLD,
    Instruction,
    Program,
)
from repro.isa.passes import (
    fold_requant,
    fuse_chains,
    liveness,
    overlap,
    prepack,
)
from repro.nn import zoo
from repro.nn.network import Network

ZOO = {
    "tiny": zoo.tiny_yolo_config,
    "tincy": zoo.tincy_yolo_config,
    "mlp4": zoo.mlp4_config,
    "cnv6": zoo.cnv6_config,
}


def _network(name: str):
    network = Network(ZOO[name]())
    network.initialize(np.random.default_rng(0))
    return network


class TestEveryLevelIsBitIdentical:
    """The acceptance gate: -O0/-O1/-O2 vs the frozen legacy reference."""

    @pytest.mark.parametrize("name", sorted(ZOO))
    def test_all_levels_match_reference(self, name):
        network = _network(name)
        rng = np.random.default_rng(7)
        frames = rng.uniform(
            0.0, 1.0, size=(1,) + tuple(network.input_shape)
        ).astype(np.float32)
        expected = legacy_forward_batch_all(
            network, FeatureMapBatch(frames.copy())
        )[-1]
        by_level = {}
        for level in sorted(PIPELINES):
            program, stats = compile_network(network, name=name, level=level)
            assert program.opt_level == level
            assert program.passes == tuple(PIPELINES[level])
            assert [s.name for s in stats] == list(PIPELINES[level])
            # The artifact that ships is the decoded one.
            program = decode(encode(program))
            out = PlanVM(program, network).run(FeatureMapBatch(frames.copy()))
            assert out.data.tobytes() == expected.data.tobytes(), (
                f"{name} -O{level} diverged from engine.reference"
            )
            by_level[level] = program
        # -O2 must strictly pay: fewer compute instructions, lower peak.
        o0, o2 = by_level[0], by_level[max(by_level)]
        assert len(o2.compute_instructions()) < len(
            o0.compute_instructions()
        )
        assert peak_live_elements(o2) < peak_live_elements(o0)


class TestFoldRequant:
    def test_split_pairs_are_folded_back(self):
        program = frontend(_network("tincy"), name="tincy")
        thresholds = sum(
            1 for i in program.instructions if i.opcode == THRESHOLD
        )
        assert thresholds > 0  # tincy's conv tower splits statically
        folded, detail, _witness = fold_requant(program, None)
        assert "folded" in detail
        assert not any(
            i.opcode == THRESHOLD for i in folded.instructions
        )
        # Every merged instruction is whole again and keeps its layer.
        assert all(
            i.part == PART_WHOLE for i in folded.compute_instructions()
        )
        assert len(folded) == len(program) - thresholds

    def test_no_splits_means_no_change(self):
        program = frontend(_network("cnv6"), name="cnv6")
        folded, _detail, _witness = fold_requant(program, None)
        assert folded == program


class TestFuseChains:
    def test_conv_maxpool_chains_become_fused_instructions(self):
        program, _, _ = fold_requant(frontend(_network("tiny"), name="tiny"), None)
        fused, detail, _witness = fuse_chains(program, None)
        chains = [i for i in fused.instructions if i.opcode == FUSED]
        assert chains and "fused" in detail
        for instr in chains:
            assert len(instr.fused_layers) == 2
            assert "+" in instr.ltype

    def test_fusion_never_crosses_the_output_slot(self):
        program, _, _ = fold_requant(
            frontend(_network("mlp4"), name="mlp4"), None
        )
        fused, _detail, _witness = fuse_chains(program, None)
        out_slot = fused.output_slot()
        for instr in fused.instructions:
            if instr.opcode == FUSED:
                assert instr.dest == out_slot or all(
                    s != out_slot for s in instr.srcs
                )


class TestLiveness:
    def test_releases_are_embedded_and_peak_drops(self):
        program = frontend(_network("tincy"), name="tincy")
        lively, _detail, _witness = liveness(program, None)
        assert not any(
            i.opcode == RELEASE for i in lively.instructions
        )
        assert any(i.releases for i in lively.instructions)
        assert peak_live_elements(lively) < peak_live_elements(program)

    def test_output_slot_is_never_released(self):
        program = frontend(_network("mlp4"), name="mlp4")
        lively, _detail, _witness = liveness(program, None)
        out_slot = lively.output_slot()
        for instr in lively.instructions:
            assert out_slot not in instr.releases


class TestOverlap:
    def test_ready_fabric_work_is_issued_first(self):
        # A CPU instruction and a FABRIC instruction both ready at the
        # top: overlap hoists the offload so host compute runs under it.
        program = Program(
            network_name="synthetic",
            weights_sha256="",
            cfg_sha256="",
            input_shape=(1, 2, 2),
            output_shape=(1, 2, 2),
            instructions=(
                Instruction(LOAD_INPUT, 0, shape=(1, 2, 2)),
                Instruction(
                    CONV, 1, srcs=(0,), shape=(1, 2, 2),
                    ltype="convolutional", layer=0,
                ),
                Instruction(
                    OFFLOAD, 2, srcs=(0,), resource=FABRIC,
                    shape=(1, 2, 2), ltype="offload", layer=1,
                ),
                Instruction(
                    CONV, 3, srcs=(1, 2), shape=(1, 2, 2),
                    ltype="convolutional", layer=2,
                ),
                Instruction(STORE_OUTPUT, 3, shape=(1, 2, 2)),
            ),
        )
        moved, _detail, _witness = overlap(program, None)
        order = [i.opcode for i in moved.instructions]
        assert order.index(OFFLOAD) < order.index(CONV)

    def test_release_carrying_streams_are_left_alone(self):
        program = frontend(_network("mlp4"), name="mlp4")
        lively, _, _ = liveness(program, None)
        unmoved, detail, _witness = overlap(lively, None)
        assert unmoved == lively
        assert "liveness" in detail


class TestPrepack:
    def test_constants_cover_binary_layers(self):
        network = _network("cnv6")
        program = frontend(network, name="cnv6")
        packed, detail, _witness = prepack(program, network)
        assert packed.constants and "constant" in detail
        kinds = {kind for kind, _layer, _param in packed.constants}
        assert "weights" in kinds
        for _kind, layer, _param in packed.constants:
            assert 0 <= layer < len(network.layers)

    def test_without_a_network_nothing_is_recorded(self):
        program = frontend(_network("cnv6"), name="cnv6")
        packed, _detail, _witness = prepack(program, None)
        assert packed == program


class TestPassManager:
    def test_unknown_pass_is_a_pass_error(self):
        manager = PassManager()
        with pytest.raises(PassError, match="unknown pass"):
            manager.run_one(
                frontend(_network("mlp4")), "no-such-pass"
            )

    def test_verifier_catches_a_buggy_rewrite(self):
        # A "pass" that releases a slot which is still consumed later
        # must die at compile time, not diverge at run time.
        def bogus(program, network):
            instructions = list(program.instructions)
            for position, instr in enumerate(instructions):
                if instr.is_compute:
                    instructions[position] = replace(
                        instr, releases=(instr.dest,)
                    )
                    break
            return (
                replace(program, instructions=tuple(instructions)),
                "sabotage",
            )

        manager = PassManager()
        manager.register("bogus", bogus)
        with pytest.raises(PassError):
            manager.run_one(frontend(_network("mlp4")), "bogus")

    def test_stats_track_eliminated_instructions(self):
        network = _network("tincy")
        program = frontend(network, name="tincy")
        manager = PassManager()
        manager.register("fold-requant", fold_requant)
        folded, stats = manager.run_one(program, "fold-requant")
        assert stats.changed
        assert stats.after_instructions < stats.before_instructions
        assert stats.name == "fold-requant"
        assert "->" in stats.summary()
