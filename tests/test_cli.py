"""CLI tests (the Darknet-style front end)."""

import numpy as np
import pytest

from repro.cli import main


class TestCfgCommand:
    def test_emits_parseable_tincy_cfg(self, capsys):
        assert main(["cfg", "tincy"]) == 0
        text = capsys.readouterr().out
        from repro.nn.network import Network

        network = Network.from_cfg(text)
        assert network.total_ops() == 4_445_001_496

    def test_all_zoo_networks(self, capsys):
        for name in ("tiny", "tincy", "mlp4", "cnv6"):
            assert main(["cfg", name]) == 0
            assert "[net]" in capsys.readouterr().out

    def test_unknown_network_rejected(self):
        with pytest.raises(SystemExit):
            main(["cfg", "yolov8"])


class TestTableCommands:
    def test_workload(self, capsys):
        assert main(["workload"]) == 0
        out = capsys.readouterr().out
        assert "6,971,272,984" in out
        assert "4,445,001,496" in out
        assert "Table II" in out

    def test_stages(self, capsys):
        assert main(["stages"]) == 0
        out = capsys.readouterr().out
        assert "Hidden Layers" in out
        assert "0.10 fps" in out

    def test_ladder(self, capsys):
        assert main(["ladder"]) == 0
        out = capsys.readouterr().out
        assert "+pipeline" in out
        assert "paper: 160x" in out

    def test_folding(self, capsys):
        assert main(["folding", "--device", "XCZU3EG", "--top", "4"]) == 0
        out = capsys.readouterr().out
        assert "best fitting" in out

    def test_folding_unknown_device(self, capsys):
        assert main(["folding", "--device", "XC9999"]) == 2


class TestDetectCommand:
    @pytest.fixture
    def setup_files(self, tmp_path):
        from repro.video.image import write_ppm

        cfg = tmp_path / "net.cfg"
        cfg.write_text(
            "[net]\nwidth=48\nheight=48\nchannels=3\n"
            "[convolutional]\nbatch_normalize=1\nfilters=8\nsize=3\nstride=2\n"
            "pad=1\nactivation=relu\n"
            "[convolutional]\nfilters=125\nsize=1\nstride=1\npad=0\n"
            "activation=linear\n"
            "[region]\nclasses=20\nnum=5\n"
        )
        image = tmp_path / "frame.ppm"
        rng = np.random.default_rng(0)
        write_ppm(str(image), rng.uniform(size=(3, 60, 80)).astype(np.float32))
        return cfg, image, tmp_path

    def test_detect_with_random_weights(self, setup_files, capsys):
        cfg, image, tmp_path = setup_files
        out_file = tmp_path / "annotated.ppm"
        code = main([
            "detect", "--cfg", str(cfg), "--image", str(image),
            "--thresh", "0.0", "--output", str(out_file),
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "warning: no --weights" in captured.err
        assert out_file.exists()

    def test_detect_with_weights_roundtrip(self, setup_files, capsys):
        from repro.nn.network import Network
        from repro.nn.weights import save_weights

        cfg, image, tmp_path = setup_files
        network = Network.from_cfg(cfg.read_text())
        network.initialize(np.random.default_rng(3))
        weights = tmp_path / "net.weights"
        save_weights(network, str(weights))
        code = main([
            "detect", "--cfg", str(cfg), "--weights", str(weights),
            "--image", str(image), "--thresh", "0.9",
        ])
        assert code == 0
        assert "no --weights" not in capsys.readouterr().err

    def test_detect_requires_region_head(self, tmp_path, capsys):
        from repro.video.image import write_ppm

        cfg = tmp_path / "net.cfg"
        cfg.write_text(
            "[net]\nwidth=8\nheight=8\nchannels=3\n"
            "[convolutional]\nfilters=4\nsize=1\nstride=1\npad=0\n"
            "activation=linear\n"
        )
        image = tmp_path / "x.ppm"
        write_ppm(str(image), np.zeros((3, 8, 8), dtype=np.float32))
        assert main(["detect", "--cfg", str(cfg), "--image", str(image)]) == 2


class TestSummaryCommand:
    def test_zoo_summary(self, capsys):
        assert main(["summary", "tincy"]) == 0
        out = capsys.readouterr().out
        assert "W1A3" in out
        assert "4,445,001,496" in out

    def test_cfg_file_summary(self, tmp_path, capsys):
        cfg = tmp_path / "net.cfg"
        cfg.write_text(
            "[net]\nwidth=8\nheight=8\nchannels=3\n"
            "[convolutional]\nfilters=4\nsize=3\nstride=1\npad=1\n"
            "activation=relu\n"
        )
        assert main(["summary", str(cfg)]) == 0
        assert "convolutional" in capsys.readouterr().out


class TestReportCommand:
    def test_report_to_stdout(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "6,971,272,984" in out
        assert "speedup ladder" in out
        assert "only one engine fits" in out

    def test_report_to_file(self, tmp_path, capsys):
        path = tmp_path / "report.md"
        assert main(["report", "--output", str(path)]) == 0
        assert "Table III" in path.read_text()
