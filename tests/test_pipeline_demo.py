"""End-to-end demo-mode tests (Fig. 5 with a real network and camera)."""

import numpy as np
import pytest

from repro.nn.network import Network
from repro.pipeline.demo import build_demo_stages, run_demo
from repro.video.sink import CollectingSink
from repro.video.source import SyntheticCamera

DEMO_CFG = """
[net]
width=48
height=48
channels=3

[convolutional]
batch_normalize=1
filters=8
size=3
stride=2
pad=1
activation=relu

[convolutional]
batch_normalize=1
filters=16
size=3
stride=2
pad=1
activation=relu

[maxpool]
size=2
stride=2

[convolutional]
filters=125
size=1
stride=1
pad=0
activation=linear

[region]
classes=20
num=5
"""


@pytest.fixture
def demo_network(rng):
    network = Network.from_cfg(DEMO_CFG)
    network.initialize(rng)
    return network


class TestDemoStages:
    def test_fig5_structure(self, demo_network):
        camera = SyntheticCamera(seed=0)
        sink = CollectingSink()
        stages = build_demo_stages(demo_network, camera, sink)
        # N network layers + 4 extra stages (Fig. 5: the pipeline is four
        # stages longer than the user-specified underlying network).
        assert len(stages) == len(demo_network.layers) + 4
        assert stages[0].name == "#0 read-frame"
        assert stages[1].name == "#1 letter-boxing"
        assert stages[-2].name == "object-boxing"
        assert stages[-1].name == "frame-drawing"

    def test_offload_layer_tagged_fabric(self, rng, tmp_path):
        # Reuse the offload round-trip fixture network from test_finn_offload.
        from repro.finn.offload_backend import export_offload
        from tests.test_finn_offload import FULL_CFG, HYBRID_CFG_TEMPLATE, _trained

        full = _trained(rng, FULL_CFG)
        binparam = str(tmp_path / "binparam")
        export_offload(
            full.layers[1:4],
            input_scale=full.layers[0].out_quant.scale,
            input_shape=full.layers[0].out_shape,
            directory=binparam,
        )
        hybrid = Network.from_cfg(HYBRID_CFG_TEMPLATE.format(binparam=binparam))
        # Append a region head so the demo builder accepts it? Not needed:
        # just verify the stage tagging logic on the layers directly.
        from repro.pipeline.demo import build_demo_stages

        camera = SyntheticCamera(seed=0)
        sink = CollectingSink()
        with pytest.raises(ValueError, match="region"):
            build_demo_stages(hybrid, camera, sink)

    def test_requires_region_head(self, rng):
        network = Network.from_cfg(
            "[net]\nwidth=8\nheight=8\nchannels=3\n"
            "[convolutional]\nfilters=4\nsize=1\nstride=1\npad=0\nactivation=linear\n"
        )
        with pytest.raises(ValueError, match="region"):
            build_demo_stages(network, SyntheticCamera(seed=0), CollectingSink())


class TestRunDemo:
    def test_processes_frames_in_order(self, demo_network):
        camera = SyntheticCamera(seed=1, height=48, width=64)
        sink = CollectingSink()
        payloads = run_demo(
            demo_network, camera, sink, n_frames=6, workers=4,
            detection_threshold=0.9,
        )
        assert len(payloads) == 6
        assert [p.frame.index for p in payloads] == list(range(6))
        assert len(sink) == 6
        for payload in payloads:
            assert payload.annotated.shape == (3, 48, 64)

    def test_single_worker_equivalent_output(self, demo_network):
        def run(workers):
            camera = SyntheticCamera(seed=2, height=48, width=64)
            sink = CollectingSink()
            payloads = run_demo(
                demo_network, camera, sink, n_frames=4, workers=workers,
                detection_threshold=0.5,
            )
            return [p.annotated for p in payloads]

        frames1 = run(1)
        frames4 = run(4)
        for a, b in zip(frames1, frames4):
            assert np.array_equal(a, b)

    def test_detections_attached_to_frames(self, demo_network):
        camera = SyntheticCamera(seed=3, height=48, width=64)
        sink = CollectingSink()
        payloads = run_demo(
            demo_network, camera, sink, n_frames=2, workers=2,
            detection_threshold=0.0,
        )
        # Threshold 0: the untrained network reports plenty of candidates.
        assert all(len(p.detections) > 0 for p in payloads)
        for payload in payloads:
            assert payload.frame.detections == payload.detections
