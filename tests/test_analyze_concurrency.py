"""Concurrency + hot-path AST lint: seeded fixture modules per rule.

Each rule gets a minimal source fixture exhibiting the violation, a
clean counterpart that must NOT fire (the rules must not cry wolf over
the repo's own disciplined code), and a suppressed variant proving the
``# analyze: allow(...)`` escape hatch works.
"""

import textwrap

from repro.analyze import analyze_self
from repro.analyze.astlint import lint_source as lint_ast
from repro.analyze.concurrency import lint_concurrency
from repro.analyze.concurrency import lint_source as lint_cc
from repro.analyze.findings import ERROR, WARNING


def _rules(findings):
    return [f.rule for f in findings]


BAD_LOCK = textwrap.dedent(
    """
    import threading

    class Pool:
        def __init__(self):
            self._lock = threading.Lock()
            self._jobs = []

        def add(self, job):
            with self._lock:
                self._jobs = self._jobs + [job]

        def reset(self):
            self._jobs = []
    """
)


class TestLockDiscipline:
    def test_mixed_guarded_and_unguarded_write_is_error(self):
        findings = lint_cc(BAD_LOCK)
        hits = [f for f in findings if f.rule == "CC-LOCK-DISCIPLINE"]
        assert hits and hits[0].severity == ERROR
        assert "_jobs" in hits[0].message and "_lock" in hits[0].message

    def test_init_writes_are_exempt(self):
        source = textwrap.dedent(
            """
            import threading

            class Pool:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._jobs = []

                def add(self, job):
                    with self._lock:
                        self._jobs = self._jobs + [job]
            """
        )
        assert lint_cc(source) == []

    def test_allow_comment_suppresses(self):
        source = BAD_LOCK.replace(
            "self._jobs = []\n",
            "self._jobs = []  # analyze: allow(CC-LOCK-DISCIPLINE)\n",
        )
        # Only replace the occurrence inside reset(), not __init__.
        assert source.count("allow(CC-LOCK-DISCIPLINE)") == 2
        assert lint_cc(source) == []


class TestThreadStartOrder:
    def test_assignment_after_start_is_flagged(self):
        source = textwrap.dedent(
            """
            import threading

            class Runner:
                def go(self):
                    worker = threading.Thread(target=self._run)
                    worker.start()
                    self.ready = True
            """
        )
        findings = lint_cc(source)
        hits = [f for f in findings if f.rule == "CC-THREAD-BEFORE-INIT"]
        assert hits and hits[0].severity == WARNING

    def test_lock_guarded_assignment_after_join_is_not_flagged(self):
        # The serve/pipeline shutdown shape: threads joined, then state
        # cleared under the lock — properly synchronized, not a race.
        source = textwrap.dedent(
            """
            import threading

            class Runner:
                def go(self):
                    worker = threading.Thread(target=self._run)
                    worker.start()
                    worker.join()
                    with self._control:
                        self.active = None
            """
        )
        assert _rules(lint_cc(source)) == []

    def test_assignment_before_start_is_fine(self):
        source = textwrap.dedent(
            """
            import threading

            class Runner:
                def go(self):
                    self.ready = False
                    worker = threading.Thread(target=self._run)
                    worker.start()
            """
        )
        assert lint_cc(source) == []


class TestGateInvariant:
    def test_unlocked_counter_updates_are_errors(self):
        source = textwrap.dedent(
            """
            class Gate:
                def __enter__(self):
                    self.in_flight += 1
                    return self

                def __exit__(self, *exc_info):
                    self.in_flight -= 1
            """
        )
        findings = lint_cc(source)
        assert _rules(findings) == ["CC-GATE-INVARIANT", "CC-GATE-INVARIANT"]
        assert all(f.severity == ERROR for f in findings)

    def test_locked_counters_are_clean(self):
        source = textwrap.dedent(
            """
            class Gate:
                def __enter__(self):
                    with self._stats:
                        self.in_flight += 1
                    return self

                def __exit__(self, *exc_info):
                    with self._stats:
                        self.in_flight -= 1
            """
        )
        assert lint_cc(source) == []


BAD_BREAKER = textwrap.dedent(
    """
    import threading

    class Breaker:
        def __init__(self):
            self._lock = threading.Lock()
            self._state = "closed"

        def trip(self):
            self._state = "open"
    """
)


class TestCircuitState:
    def test_bare_state_write_is_error(self):
        findings = lint_cc(BAD_BREAKER)
        hits = [f for f in findings if f.rule == "CC-CIRCUIT-STATE"]
        assert hits and hits[0].severity == ERROR
        assert "_state" in hits[0].message and "_lock" in hits[0].message

    def test_fires_even_when_no_write_is_guarded(self):
        # The distinction from CC-LOCK-DISCIPLINE: one bare write with NO
        # guarded sibling anywhere is still an error for state machines.
        assert "with self._lock" not in BAD_BREAKER
        assert "CC-CIRCUIT-STATE" in _rules(lint_cc(BAD_BREAKER))

    def test_guarded_state_write_is_clean(self):
        source = textwrap.dedent(
            """
            import threading

            class Breaker:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._state = "closed"

                def trip(self):
                    with self._lock:
                        self._state = "open"
            """
        )
        assert _rules(lint_cc(source)) == []

    def test_non_state_machine_classes_are_exempt(self):
        # No lock in __init__ -> not the breaker shape, rule stays quiet.
        source = textwrap.dedent(
            """
            class Plain:
                def __init__(self):
                    self._state = "closed"

                def trip(self):
                    self._state = "open"
            """
        )
        assert _rules(lint_cc(source)) == []

    def test_allow_comment_suppresses(self):
        source = BAD_BREAKER.replace(
            'self._state = "open"',
            'self._state = "open"  # analyze: allow(CC-CIRCUIT-STATE)',
        )
        assert _rules(lint_cc(source)) == []


BAD_BLOCKING = textwrap.dedent(
    """
    import threading
    import time

    class Collector:
        def __init__(self):
            self._lock = threading.Lock()
            self._conn = make_pipe()

        def pull(self):
            with self._lock:
                return self._conn.recv()

        def nap(self):
            with self._lock:
                time.sleep(1.0)
    """
)


class TestBlockingUnderLock:
    def test_recv_and_sleep_under_lock_are_errors(self):
        findings = lint_cc(BAD_BLOCKING)
        hits = [f for f in findings if f.rule == "CC-BLOCKING-UNDER-LOCK"]
        assert len(hits) == 2
        assert all(f.severity == ERROR for f in hits)
        assert ".recv(" in hits[0].message and "_lock" in hits[0].message
        assert ".sleep(" in hits[1].message

    def test_condition_wait_idiom_is_exempt(self):
        # Waiting on the very condition you hold is how conditions work —
        # the exemption keys on the call owner matching the held lock.
        source = textwrap.dedent(
            """
            import threading

            class Waiter:
                def __init__(self):
                    self._cond = threading.Condition()
                    self._ready = False

                def wait_ready(self):
                    with self._cond:
                        while not self._ready:
                            self._cond.wait()
            """
        )
        assert _rules(lint_cc(source)) == []

    def test_waiting_on_a_different_object_under_a_lock_still_fires(self):
        # Holding one lock while waiting on a *different* condition is
        # exactly the convoy the rule exists for.
        source = textwrap.dedent(
            """
            import threading

            class Waiter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._cond = threading.Condition()

                def wait_other(self):
                    with self._lock:
                        self._cond.wait()
            """
        )
        assert "CC-BLOCKING-UNDER-LOCK" in _rules(lint_cc(source))

    def test_blocking_outside_any_lock_is_clean(self):
        source = textwrap.dedent(
            """
            import time

            class Collector:
                def pull(self):
                    message = self._conn.recv()
                    time.sleep(0.01)
                    return message
            """
        )
        assert _rules(lint_cc(source)) == []

    def test_allow_comment_suppresses(self):
        source = BAD_BLOCKING.replace(
            "return self._conn.recv()",
            "return self._conn.recv()  "
            "# analyze: allow(CC-BLOCKING-UNDER-LOCK)",
        ).replace(
            "time.sleep(1.0)",
            "time.sleep(1.0)  # analyze: allow(CC-BLOCKING-UNDER-LOCK)",
        )
        assert _rules(lint_cc(source)) == []


class TestHotPathRules:
    def test_three_nested_loops_are_flagged(self):
        source = textwrap.dedent(
            """
            def conv_pixels(image, kernel, out):
                for row in range(4):
                    for col in range(4):
                        for tap in range(9):
                            out[row, col] += image[row, col, tap] * kernel[tap]
            """
        )
        findings = lint_ast(source)
        assert _rules(findings) == ["AST-NESTED-LOOP"]

    def test_def_line_allow_comment_suppresses_nested_loop(self):
        source = textwrap.dedent(
            """
            # analyze: allow(AST-NESTED-LOOP)
            def conv_pixels(image, kernel, out):
                for row in range(4):
                    for col in range(4):
                        for tap in range(9):
                            out[row, col] += image[row, col, tap] * kernel[tap]
            """
        )
        assert lint_ast(source) == []

    def test_float_literal_in_integer_kernel(self):
        findings = lint_ast("def scale_i8(x):\n    return x * 1.5\n")
        assert _rules(findings) == ["AST-FLOAT-LIT"]

    def test_float_literal_outside_kernel_is_fine(self):
        assert lint_ast("def scale(x):\n    return x * 1.5\n") == []

    def test_wrapped_float_is_deliberate(self):
        source = (
            "import numpy as np\n"
            "def scale_i8(x):\n    return x * np.float32(1.5)\n"
        )
        assert lint_ast(source) == []

    def test_platform_width_builtins_are_flagged(self):
        findings = lint_ast("def pack(x):\n    return x.astype(float)\n")
        assert _rules(findings) == ["AST-PROMOTE"]
        findings = lint_ast(
            "import numpy as np\n"
            "def pack(n):\n    return np.zeros(n, dtype=int)\n"
        )
        assert _rules(findings) == ["AST-PROMOTE"]


class TestRepoIsClean:
    def test_self_lint_passes_on_the_repo_source(self):
        # The CI gate: repro analyze --self must stay clean.
        assert analyze_self() == []

    def test_concurrency_pass_alone_is_clean(self):
        assert lint_concurrency() == []
