"""Activation-scale calibration and SQNR tests."""

import numpy as np
import pytest

from repro.core.tensor import FeatureMap
from repro.nn.calibrate import calibrate_activation_scales, quantization_sqnr
from repro.nn.network import Network

QUANT_CFG = """
[net]
width=16
height=16
channels=3

[convolutional]
batch_normalize=1
filters=8
size=3
stride=2
pad=1
activation=relu
activation_bits=3

[convolutional]
batch_normalize=1
filters=8
size=3
stride=1
pad=1
activation=relu
binary=1
activation_bits=3

[convolutional]
filters=4
size=1
stride=1
pad=0
activation=linear
"""


def _network(rng, activation_gain=1.0):
    network = Network.from_cfg(QUANT_CFG)
    network.initialize(rng)
    for layer in network.layers:
        n = layer.filters
        layer.biases = (rng.normal(size=n) * 0.05).astype(np.float32)
        if layer.batch_normalize:
            layer.scales = (
                rng.uniform(0.5, 1.5, size=n) * activation_gain
            ).astype(np.float32)
            layer.rolling_mean = (rng.normal(size=n) * 0.1).astype(np.float32)
            layer.rolling_var = rng.uniform(0.5, 1.5, size=n).astype(np.float32)
    return network


def _samples(rng, count=4):
    return [rng.uniform(size=(3, 16, 16)).astype(np.float32) for _ in range(count)]


class TestCalibration:
    def test_scales_follow_activation_magnitude(self, rng):
        """A network with 5x hotter activations calibrates to ~5x the step."""
        cool = _network(np.random.default_rng(0), activation_gain=1.0)
        hot = _network(np.random.default_rng(0), activation_gain=5.0)
        samples = _samples(rng)
        cool_scales = calibrate_activation_scales(cool, samples)
        hot_scales = calibrate_activation_scales(hot, samples)
        first = min(cool_scales)
        ratio = hot_scales[first] / cool_scales[first]
        assert 3.0 < ratio < 8.0

    def test_calibration_improves_sqnr_for_hot_network(self, rng):
        """With activations above 1, the default [0,1] range clips hard;
        calibration must recover output fidelity."""
        samples = _samples(rng, count=4)
        before = _network(np.random.default_rng(3), activation_gain=4.0)
        sqnr_before = quantization_sqnr(before, samples)
        after = _network(np.random.default_rng(3), activation_gain=4.0)
        calibrate_activation_scales(after, samples)
        sqnr_after = quantization_sqnr(after, samples)
        assert sqnr_after > sqnr_before + 3.0  # at least 3 dB better

    def test_scales_written_back_to_cfg(self, rng):
        network = _network(rng)
        scales = calibrate_activation_scales(network, _samples(rng, 2))
        for index, scale in scales.items():
            section = network.layers[index].section
            assert float(section.options["activation_scale"]) == pytest.approx(
                scale
            )

    def test_only_quantized_layers_touched(self, rng):
        network = _network(rng)
        scales = calibrate_activation_scales(network, _samples(rng, 2))
        assert sorted(scales) == [0, 1]  # the final float conv is untouched

    def test_no_inputs_rejected(self, rng):
        with pytest.raises(ValueError, match="at least one"):
            calibrate_activation_scales(_network(rng), [])

    def test_bad_percentile_rejected(self, rng):
        with pytest.raises(ValueError, match="percentile"):
            calibrate_activation_scales(_network(rng), _samples(rng, 1), percentile=0)

    def test_unquantized_network_is_noop(self, rng):
        cfg = (
            "[net]\nwidth=8\nheight=8\nchannels=3\n"
            "[convolutional]\nfilters=4\nsize=3\nstride=1\npad=1\n"
            "activation=relu\n"
        )
        network = Network.from_cfg(cfg)
        network.initialize(rng)
        assert calibrate_activation_scales(network, _samples(rng, 1)) == {}


class TestSQNR:
    def test_finite_and_positive_for_sane_network(self, rng):
        network = _network(rng)
        sqnr = quantization_sqnr(network, _samples(rng, 2))
        assert np.isfinite(sqnr)

    def test_float_network_restored_after_measurement(self, rng):
        network = _network(rng)
        x = FeatureMap(_samples(rng, 1)[0])
        before = network.forward(x).data.copy()
        quantization_sqnr(network, _samples(rng, 2))
        after = network.forward(x).data
        assert np.array_equal(before, after)  # quantizers reinstated
