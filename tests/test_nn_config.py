"""cfg parser tests."""

import pytest

from repro.nn.config import NetworkConfig, Section, parse_config, serialize_config

SAMPLE = """
[net]
width=416
height=416
channels=3

[convolutional]   # first layer
filters=16
size=3
stride=1
pad=1
activation=leaky

[maxpool]
size=2
stride=2

[offload]
library=fabric.so
network=tincy-yolo-offload.json
weights=binparam-tincy-yolo/
height=13
width=13
channel=125
"""


class TestParse:
    def test_section_sequence(self):
        config = parse_config(SAMPLE)
        assert [s.name for s in config] == ["net", "convolutional", "maxpool", "offload"]

    def test_input_shape(self):
        assert parse_config(SAMPLE).input_shape() == (3, 416, 416)

    def test_comments_stripped(self):
        config = parse_config(SAMPLE)
        assert config.layers[0].get_int("filters") == 16

    def test_offload_section_of_fig4(self):
        offload = parse_config(SAMPLE).layers[-1]
        assert offload.get_str("library") == "fabric.so"
        assert offload.get_str("weights") == "binparam-tincy-yolo/"
        assert offload.get_int("channel") == 125

    def test_repeated_sections_stay_ordered(self):
        text = "[net]\nwidth=8\nheight=8\n[maxpool]\nstride=2\n[maxpool]\nstride=1\n"
        config = parse_config(text)
        strides = [s.get_int("stride") for s in config.layers]
        assert strides == [2, 1]

    def test_malformed_section_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_config("[net\nwidth=1")

    def test_option_outside_section_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            parse_config("width=416\n[net]")

    def test_missing_net_section_rejected(self):
        with pytest.raises(ValueError, match=r"\[net\]"):
            parse_config("[convolutional]\nfilters=1")

    def test_non_kv_line_rejected(self):
        with pytest.raises(ValueError, match="key=value"):
            parse_config("[net]\nwidth 416")


class TestSectionAccessors:
    def test_typed_defaults(self):
        section = Section("convolutional", {"filters": "16"})
        assert section.get_int("stride", 1) == 1
        assert section.get_float("momentum", 0.9) == 0.9
        assert section.get_str("activation", "linear") == "linear"

    def test_missing_required_raises(self):
        with pytest.raises(KeyError, match="filters"):
            Section("convolutional", {}).get_int("filters")

    def test_float_list(self):
        section = Section("region", {"anchors": "1.08,1.19, 3.42,4.41"})
        assert section.get_float_list("anchors") == [1.08, 1.19, 3.42, 4.41]


class TestSerialize:
    def test_round_trip(self):
        config = parse_config(SAMPLE)
        text = serialize_config(config)
        again = parse_config(text)
        assert [s.name for s in again] == [s.name for s in config]
        for a, b in zip(again, config):
            assert a.options == b.options

    def test_empty_config_rejected(self):
        with pytest.raises(ValueError):
            NetworkConfig([])
