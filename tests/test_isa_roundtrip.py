"""Serialization round-trip and strict-decode tests for repro.isa."""

import struct
import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.resources import CPU, FABRIC
from repro.isa import (
    FORMAT_VERSION,
    DecodeError,
    EncodeError,
    Instruction,
    Program,
    decode,
    disassemble,
    encode,
    read_program,
    write_program,
)
from repro.isa.encode import MAGIC
from repro.isa.ops import (
    CONV,
    FUSED,
    GEMM,
    LOAD_INPUT,
    MAXPOOL,
    OFFLOAD,
    OPCODE_NAMES,
    PART_ACC,
    PART_VALUES,
    RELEASE,
    STORE_OUTPUT,
    THRESHOLD,
)

HEX = "0123456789abcdef"


def _recrc(body: bytes) -> bytes:
    """Re-seal arbitrary *body* bytes with a valid CRC footer."""
    return body + struct.pack("<I", zlib.crc32(body) & 0xFFFFFFFF)


def _simple_program(**overrides) -> Program:
    fields = dict(
        network_name="mini",
        weights_sha256="ab" * 32,
        cfg_sha256="cd" * 32,
        input_shape=(3, 8, 8),
        output_shape=(4, 1, 1),
        instructions=(
            Instruction(LOAD_INPUT, 0, shape=(3, 8, 8), name="input"),
            Instruction(
                CONV, 1, srcs=(0,), shape=(2, 6, 6), ops=100,
                name="#00 conv", ltype="convolutional",
            ),
            Instruction(RELEASE, 0),
            Instruction(
                GEMM, 2, srcs=(1,), shape=(4, 1, 1), ops=288,
                name="#01 fc", ltype="connected",
            ),
            Instruction(RELEASE, 1),
            Instruction(STORE_OUTPUT, 2, shape=(4, 1, 1)),
        ),
    )
    fields.update(overrides)
    return Program(**fields)


# -- hypothesis strategies ---------------------------------------------------

_names = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
    max_size=12,
)
_shapes = st.tuples(
    st.integers(0, 2**32 - 1),
    st.integers(0, 1024),
    st.integers(0, 1024),
)
_instructions = st.builds(
    Instruction,
    opcode=st.sampled_from(sorted(OPCODE_NAMES)),
    dest=st.integers(0, 2**32 - 1),
    srcs=st.lists(st.integers(0, 2**32 - 1), max_size=4).map(tuple),
    resource=st.sampled_from([CPU, FABRIC]),
    shape=_shapes,
    ops=st.integers(0, 2**64 - 1),
    name=_names,
    ltype=_names,
    layer=st.integers(-1, 2**31 - 1),
    part=st.sampled_from(sorted(PART_VALUES)),
    fused_layers=st.lists(st.integers(0, 2**32 - 1), max_size=3).map(tuple),
    releases=st.lists(st.integers(0, 2**32 - 1), max_size=3).map(tuple),
)
_constants = st.tuples(
    _names,
    st.integers(0, 2**32 - 1),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
)
_programs = st.builds(
    Program,
    network_name=_names,
    weights_sha256=st.sampled_from(["", "ab" * 32, "0f" * 32]),
    cfg_sha256=st.sampled_from(["", "12" * 32]),
    input_shape=_shapes,
    output_shape=_shapes,
    instructions=st.lists(_instructions, max_size=12).map(tuple),
    opt_level=st.integers(0, 255),
    passes=st.lists(_names, max_size=4).map(tuple),
    constants=st.lists(_constants, max_size=4).map(tuple),
)


class TestRoundTrip:
    @given(program=_programs)
    @settings(max_examples=80, deadline=None)
    def test_encode_decode_encode_is_byte_identical(self, program):
        data = encode(program)
        decoded = decode(data)
        assert decoded == program
        assert encode(decoded) == data

    def test_artifact_file_round_trip(self, tmp_path):
        program = _simple_program()
        path = str(tmp_path / "mini.rpb")
        size = write_program(program, path)
        assert size == (tmp_path / "mini.rpb").stat().st_size
        assert read_program(path) == program

    def test_disassembly_names_every_instruction(self):
        program = _simple_program()
        text = disassemble(program)
        for instr in program.instructions:
            assert instr.mnemonic in text
        assert program.weights_sha256 in text
        assert "3x8x8" in text and "4x1x1" in text

    def test_optimized_program_round_trips(self, tmp_path):
        # The v2 vocabulary end to end: a split epilogue, a FUSED chain
        # with embedded releases, pass/constant header records.
        program = _simple_program(
            instructions=(
                Instruction(LOAD_INPUT, 0, shape=(3, 8, 8), name="input"),
                Instruction(
                    CONV, 1, srcs=(0,), shape=(2, 6, 6), ops=100,
                    name="#00 conv", ltype="convolutional", layer=0,
                    part=PART_ACC, releases=(0,),
                ),
                Instruction(
                    THRESHOLD, 2, srcs=(1,), shape=(2, 6, 6),
                    name="#00 threshold", ltype="threshold", layer=0,
                    part=PART_ACC, releases=(1,),
                ),
                Instruction(
                    FUSED, 3, srcs=(2,), shape=(4, 1, 1), ops=388,
                    name="#01 conv+maxpool", ltype="convolutional+maxpool",
                    fused_layers=(1, 2), releases=(2,),
                ),
                Instruction(STORE_OUTPUT, 3, shape=(4, 1, 1)),
            ),
            opt_level=2,
            passes=("fold-requant", "fuse-chains", "liveness"),
            constants=(("weights", 1, 0.0), ("thresholds", 0, 0.125)),
        )
        data = encode(program)
        decoded = decode(data)
        assert decoded == program
        assert encode(decoded) == data
        path = str(tmp_path / "opt.rpb")
        write_program(program, path)
        assert read_program(path) == program
        text = disassemble(program)
        assert "CONV.acc" in text and "THRESHOLD.acc" in text
        assert "layers 1+2" in text and "rel %2" in text
        assert "opt -O2" in text and "fold-requant" in text
        assert "const weights layer 1" in text


class TestStrictDecode:
    def test_bad_magic_is_rejected(self):
        data = encode(_simple_program())
        with pytest.raises(DecodeError, match="bad magic"):
            decode(b"NOPE" + data[4:])

    def test_too_short_to_be_an_artifact(self):
        with pytest.raises(DecodeError, match="shorter than"):
            decode(MAGIC)

    def test_every_single_byte_corruption_is_caught(self):
        data = encode(_simple_program())
        # CRC-before-structure means any flipped byte anywhere in the
        # stream is one clear error, never a half-parsed program.
        for offset in range(len(MAGIC), len(data), 7):
            corrupt = bytearray(data)
            corrupt[offset] ^= 0xFF
            with pytest.raises(DecodeError, match="CRC mismatch"):
                decode(bytes(corrupt))

    def test_plain_truncation_is_rejected(self):
        data = encode(_simple_program())
        for cut in (len(data) - 1, len(data) // 2, len(MAGIC) + 5):
            with pytest.raises(DecodeError):
                decode(data[:cut])

    def test_resealed_truncation_names_the_missing_field(self):
        # Truncate the body and restore a valid CRC: the bounds-checked
        # reader (not the checksum) must still refuse, naming the field.
        data = encode(_simple_program())
        body = data[:-4]
        with pytest.raises(DecodeError, match="truncated program"):
            decode(_recrc(body[: len(body) - 6]))

    def test_cross_version_header_is_refused(self):
        data = encode(_simple_program())
        body = bytearray(data[:-4])
        offset = len(MAGIC)
        body[offset : offset + 2] = struct.pack("<H", FORMAT_VERSION + 1)
        with pytest.raises(
            DecodeError, match=f"format version {FORMAT_VERSION + 1} not"
        ):
            decode(_recrc(bytes(body)))

    def test_reserved_flags_are_refused(self):
        data = encode(_simple_program())
        body = bytearray(data[:-4])
        offset = len(MAGIC) + 2
        body[offset : offset + 2] = struct.pack("<H", 0x8000)
        with pytest.raises(DecodeError, match="reserved header flags"):
            decode(_recrc(bytes(body)))

    def test_trailing_bytes_are_refused(self):
        data = encode(_simple_program())
        with pytest.raises(DecodeError, match="trailing bytes"):
            decode(_recrc(data[:-4] + b"\x00\x01"))

    def test_unknown_opcode_is_refused(self):
        program = Program(
            network_name="",
            weights_sha256="",
            cfg_sha256="",
            input_shape=(1, 1, 1),
            output_shape=(1, 1, 1),
            instructions=(Instruction(LOAD_INPUT, 0),),
        )
        data = encode(program)
        body = bytearray(data[:-4])
        # The single instruction starts right after the fixed header
        # (magic, version/flags, empty name, two 32-byte hashes, two
        # 3xu32 shapes, the v2 opt_level u8 + empty pass list u8 + empty
        # constant table u16, u32 instruction count); its first byte is
        # the opcode.
        opcode_offset = len(MAGIC) + 4 + 2 + 32 + 32 + 12 + 12 + 1 + 1 + 2 + 4
        assert body[opcode_offset] == LOAD_INPUT
        body[opcode_offset] = 0xEE
        with pytest.raises(DecodeError, match="unknown opcode"):
            decode(_recrc(bytes(body)))


class TestEncodeValidation:
    def test_non_hex_hash_is_an_encode_error(self):
        with pytest.raises(EncodeError, match="not a hex digest"):
            encode(_simple_program(weights_sha256="zz" * 32))

    def test_wrong_length_hash_is_an_encode_error(self):
        with pytest.raises(EncodeError, match="32 bytes"):
            encode(_simple_program(cfg_sha256="abcd"))

    def test_wrong_version_is_an_encode_error(self):
        with pytest.raises(EncodeError, match="version"):
            encode(_simple_program(version=FORMAT_VERSION + 1))

    def test_shape_must_be_three_dimensional(self):
        with pytest.raises(EncodeError, match=r"\(C, H, W\)"):
            encode(_simple_program(input_shape=(3, 8)))

    def test_overlong_ltype_is_an_encode_error(self):
        program = _simple_program(
            instructions=(
                Instruction(LOAD_INPUT, 0),
                Instruction(MAXPOOL, 1, srcs=(0,), ltype="x" * 300),
                Instruction(STORE_OUTPUT, 1),
            )
        )
        with pytest.raises(EncodeError, match="too long"):
            encode(program)


class TestProgramModel:
    def test_instruction_validates_opcode_and_resource(self):
        with pytest.raises(ValueError, match="unknown opcode"):
            Instruction(0x7F, 0)
        with pytest.raises(ValueError, match="unknown resource"):
            Instruction(CONV, 1, resource="gpu")
        with pytest.raises(ValueError, match="non-negative"):
            Instruction(CONV, -1)

    def test_uses_fabric_and_output_slot(self):
        program = _simple_program()
        assert not program.uses_fabric
        assert program.output_slot() == 2
        assert len(program.compute_instructions()) == 2
        fabric = _simple_program(
            instructions=program.instructions[:1]
            + (
                Instruction(
                    OFFLOAD, 1, srcs=(0,), resource=FABRIC,
                    shape=(1, 1, 1), ltype="offload",
                ),
                Instruction(STORE_OUTPUT, 1),
            )
        )
        assert fabric.uses_fabric
