"""VOC XML interchange and LR-schedule tests."""

import pytest

from repro.data.voc import (
    VOC_CLASS_INDEX,
    VOC_CLASSES,
    VOCAnnotation,
    load_voc_annotation,
    load_voc_directory,
    parse_voc_xml,
    save_voc_annotation,
    write_voc_xml,
)
from repro.eval.boxes import Box, GroundTruth
from repro.train.schedule import burn_in, constant, cosine, step_decay

SAMPLE_XML = """
<annotation>
  <folder>VOC2007</folder>
  <filename>000001.jpg</filename>
  <size><width>353</width><height>500</height><depth>3</depth></size>
  <object>
    <name>dog</name>
    <pose>Left</pose>
    <difficult>0</difficult>
    <bndbox><xmin>48</xmin><ymin>240</ymin><xmax>195</xmax><ymax>371</ymax></bndbox>
  </object>
  <object>
    <name>person</name>
    <difficult>0</difficult>
    <bndbox><xmin>8</xmin><ymin>12</ymin><xmax>352</xmax><ymax>498</ymax></bndbox>
  </object>
</annotation>
"""


class TestVOCParsing:
    def test_parse_real_schema(self):
        annotation = parse_voc_xml(SAMPLE_XML)
        assert annotation.filename == "000001.jpg"
        assert (annotation.width, annotation.height) == (353, 500)
        assert len(annotation.truths) == 2
        dog = annotation.truths[0]
        assert dog.class_id == VOC_CLASS_INDEX["dog"]
        assert dog.box.x == pytest.approx((48 + 195) / 2 / 353)
        assert dog.box.w == pytest.approx((195 - 48) / 353)

    def test_twenty_classes(self):
        assert len(VOC_CLASSES) == 20
        assert VOC_CLASS_INDEX["aeroplane"] == 0
        assert VOC_CLASS_INDEX["tvmonitor"] == 19

    def test_unknown_class_rejected(self):
        bad = SAMPLE_XML.replace("dog", "dragon")
        with pytest.raises(ValueError, match="dragon"):
            parse_voc_xml(bad)

    def test_degenerate_box_rejected(self):
        bad = SAMPLE_XML.replace("<xmax>195</xmax>", "<xmax>48</xmax>")
        with pytest.raises(ValueError, match="degenerate"):
            parse_voc_xml(bad)

    def test_wrong_root_rejected(self):
        with pytest.raises(ValueError, match="root tag"):
            parse_voc_xml("<something/>")

    def test_missing_size_rejected(self):
        with pytest.raises(ValueError, match="size"):
            parse_voc_xml("<annotation><filename>x</filename></annotation>")


class TestVOCRoundtrip:
    def _annotation(self):
        return VOCAnnotation(
            filename="synthetic.ppm",
            width=320,
            height=240,
            truths=[
                GroundTruth(3, Box(0.5, 0.5, 0.25, 0.3)),
                GroundTruth(14, Box(0.2, 0.7, 0.1, 0.2)),
            ],
        )

    def test_write_parse_roundtrip(self):
        original = self._annotation()
        text = write_voc_xml(original)
        back = parse_voc_xml(text)
        assert back.filename == original.filename
        assert len(back.truths) == 2
        for a, b in zip(back.truths, original.truths):
            assert a.class_id == b.class_id
            assert a.box.x == pytest.approx(b.box.x, abs=1e-2)
            assert a.box.w == pytest.approx(b.box.w, abs=1e-2)

    def test_directory_loading(self, tmp_path):
        for index in range(3):
            annotation = self._annotation()
            save_voc_annotation(annotation, str(tmp_path / f"{index:06d}.xml"))
        (tmp_path / "notes.txt").write_text("ignored")
        loaded = load_voc_directory(str(tmp_path))
        assert len(loaded) == 3

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "a.xml")
        save_voc_annotation(self._annotation(), path)
        assert load_voc_annotation(path).width == 320

    def test_evaluation_pipeline_compatible(self):
        """Parsed VOC truths drop straight into the mAP evaluator."""
        from repro.eval.boxes import Detection
        from repro.eval.metrics import ImageEval, evaluate_map

        annotation = parse_voc_xml(SAMPLE_XML)
        detections = [
            Detection(truth.box, truth.class_id, 0.9)
            for truth in annotation.truths
        ]
        result = evaluate_map(
            [ImageEval(detections=detections, truths=annotation.truths)],
            n_classes=20,
        )
        assert result.map_percent == pytest.approx(100.0)


class TestSchedules:
    def test_constant(self):
        schedule = constant(0.01)
        assert schedule(0) == schedule(10_000) == 0.01

    def test_burn_in_ramps(self):
        schedule = burn_in(constant(0.01), steps=100)
        assert schedule(0) == 0.0
        assert schedule(50) < schedule(99) < 0.01
        assert schedule(100) == 0.01
        assert schedule(500) == 0.01

    def test_step_decay(self):
        schedule = step_decay(0.01, [(100, 0.1), (200, 0.1)])
        assert schedule(0) == pytest.approx(0.01)
        assert schedule(150) == pytest.approx(0.001)
        assert schedule(250) == pytest.approx(0.0001)

    def test_cosine_endpoints_and_monotone(self):
        schedule = cosine(0.01, total_steps=100, floor=0.001)
        assert schedule(0) == pytest.approx(0.01)
        assert schedule(100) == pytest.approx(0.001)
        values = [schedule(s) for s in range(0, 101, 10)]
        assert values == sorted(values, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            cosine(0.1, total_steps=0)
        with pytest.raises(ValueError):
            burn_in(constant(0.1), steps=-1)


class TestTrainerScheduleIntegration:
    def test_schedule_drives_optimizer_lr(self):
        from repro.data.shapes import ShapesDetectionDataset
        from repro.train.models import mini_yolo
        from repro.train.trainer import TrainConfig, train_detector

        dataset = ShapesDetectionDataset(image_size=48, seed=3, max_objects=2)
        model = mini_yolo("mini-tiny", n_classes=20, seed=3)
        seen = []

        def spy_schedule(step):
            lr = 2e-3 * (0.5 if step >= 5 else 1.0)
            seen.append(lr)
            return lr

        result = train_detector(
            model, dataset,
            TrainConfig(steps=10, batch_size=2, eval_samples=2,
                        lr_schedule=spy_schedule),
        )
        assert len(seen) == 10
        assert seen[0] == 2e-3 and seen[-1] == 1e-3
        assert len(result.losses) == 10
