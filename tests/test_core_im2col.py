"""im2col / col2im / sliced-im2col tests (Fig. 1 substrate)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.im2col import col2im, im2col, im2col_inflation, sliced_im2col
from repro.core.ops import conv2d


def _naive_im2col(x, ksize, stride, pad):
    c, h, w = x.shape
    out_h = (h + 2 * pad - ksize) // stride + 1
    out_w = (w + 2 * pad - ksize) // stride + 1
    padded = np.zeros((c, h + 2 * pad, w + 2 * pad), dtype=x.dtype)
    padded[:, pad : pad + h, pad : pad + w] = x
    cols = np.zeros((c * ksize * ksize, out_h * out_w), dtype=x.dtype)
    row = 0
    for ch in range(c):
        for ky in range(ksize):
            for kx in range(ksize):
                col = 0
                for oy in range(out_h):
                    for ox in range(out_w):
                        cols[row, col] = padded[ch, oy * stride + ky, ox * stride + kx]
                        col += 1
                row += 1
    return cols


class TestIm2col:
    @pytest.mark.parametrize(
        "shape,ksize,stride,pad",
        [
            ((3, 8, 8), 3, 1, 1),
            ((2, 7, 9), 3, 2, 1),
            ((1, 5, 5), 5, 1, 0),  # degenerate fully-connected case
            ((4, 6, 6), 1, 1, 0),
            ((2, 10, 10), 2, 2, 0),
        ],
    )
    def test_matches_naive(self, rng, shape, ksize, stride, pad):
        x = rng.normal(size=shape).astype(np.float32)
        assert np.array_equal(
            im2col(x, ksize, stride, pad), _naive_im2col(x, ksize, stride, pad)
        )

    def test_row_order_is_darknet_channel_major(self):
        # Channel 0's kernel rows must come before channel 1's.
        x = np.stack([np.zeros((3, 3)), np.ones((3, 3))]).astype(np.float32)
        cols = im2col(x, 3, 1, 0)
        assert cols.shape == (18, 1)
        assert np.array_equal(cols[:9, 0], np.zeros(9))
        assert np.array_equal(cols[9:, 0], np.ones(9))

    def test_output_is_writable_copy(self, rng):
        x = rng.normal(size=(2, 6, 6)).astype(np.float32)
        cols = im2col(x, 3, 1, 1)
        cols[0, 0] = 42.0  # must not raise (stride-tricks views are read-only)


class TestCol2im:
    @given(
        c=st.integers(1, 3),
        hw=st.integers(4, 9),
        ksize=st.sampled_from([1, 2, 3]),
        stride=st.sampled_from([1, 2]),
        pad=st.sampled_from([0, 1]),
    )
    @settings(max_examples=40, deadline=None)
    def test_adjoint_of_im2col(self, c, hw, ksize, stride, pad):
        """<im2col(x), y> == <x, col2im(y)> — the defining adjoint property."""
        if hw + 2 * pad < ksize:
            return
        rng = np.random.default_rng(c * 1000 + hw * 10 + ksize)
        x = rng.normal(size=(c, hw, hw))
        cols = im2col(x, ksize, stride, pad)
        y = rng.normal(size=cols.shape)
        lhs = float(np.sum(cols * y))
        rhs = float(np.sum(x * col2im(y, x.shape, ksize, stride, pad)))
        assert lhs == pytest.approx(rhs, rel=1e-9)


class TestInflation:
    def test_stride_one_small_kernel_approaches_k_squared(self):
        factor = im2col_inflation(416, 416, 16, ksize=3, stride=1, pad=1)
        assert factor == pytest.approx(9.0, rel=0.01)

    def test_fully_connected_degenerates_to_one(self):
        # Kernel the size of the map: single application, no inflation (Fig. 1).
        assert im2col_inflation(13, 13, 256, ksize=13, stride=1, pad=0) == 1.0

    def test_stride_two_quarters_the_inflation(self):
        s1 = im2col_inflation(416, 416, 3, ksize=3, stride=1, pad=1)
        s2 = im2col_inflation(416, 416, 3, ksize=3, stride=2, pad=1)
        assert s2 == pytest.approx(s1 / 4, rel=0.01)


class TestSlicedIm2col:
    @pytest.mark.parametrize("slice_width", [1, 4, 8, 100, 1000])
    def test_concatenation_reproduces_full_matrix(self, rng, slice_width):
        x = rng.normal(size=(3, 12, 12)).astype(np.float32)
        full = im2col(x, 3, 1, 1)
        parts = []
        cursor = 0
        for part, start, stop in sliced_im2col(x, 3, 1, 1, slice_width):
            assert start == cursor
            assert part.shape[1] == stop - start
            assert part.shape[1] <= slice_width
            parts.append(part)
            cursor = stop
        assert np.array_equal(np.concatenate(parts, axis=1), full)

    def test_sliced_gemm_equals_conv(self, rng):
        # The fused-kernel contract: slice-wise GEMM equals the full conv.
        x = rng.normal(size=(3, 9, 9)).astype(np.float32)
        weights = rng.normal(size=(4, 3, 3, 3)).astype(np.float32)
        flat = weights.reshape(4, -1)
        out = np.zeros((4, 81), dtype=np.float32)
        for part, start, stop in sliced_im2col(x, 3, 1, 1, slice_width=8):
            out[:, start:stop] = flat @ part
        expected = conv2d(x, weights, stride=1, pad=1).reshape(4, -1)
        assert np.allclose(out, expected, atol=1e-5)

    def test_rejects_bad_slice_width(self, rng):
        x = rng.normal(size=(1, 4, 4))
        with pytest.raises(ValueError):
            list(sliced_im2col(x, 3, 1, 1, slice_width=0))
