"""Accelerator schedule tests: functional equivalence, cycles, resources."""

import numpy as np
import pytest

from repro.core.tensor import FeatureMap
from repro.finn.accelerator import (
    DataflowAccelerator,
    IteratedAccelerator,
    balanced_dataflow_foldings,
    compile_stages,
)
from repro.finn.device import XCZU3EG, XCZU9EG
from repro.finn.mvtu import Folding
from repro.nn.network import Network
from repro.nn.zoo import tincy_yolo_config

MINI_HIDDEN_CFG = """
[net]
width=24
height=24
channels=8

[convolutional]
batch_normalize=1
filters=12
size=3
stride=1
pad=1
activation=relu
binary=1
activation_bits=3

[maxpool]
size=2
stride=2

[convolutional]
batch_normalize=1
filters=16
size=3
stride=1
pad=1
activation=relu
binary=1
activation_bits=3

[convolutional]
batch_normalize=1
filters=10
size=3
stride=1
pad=1
activation=relu
binary=1
activation_bits=3
"""

IN_SCALE = 1.0 / 7.0


def _trained_mini_net(rng):
    net = Network.from_cfg(MINI_HIDDEN_CFG)
    net.initialize(rng)
    for layer in net.layers:
        if layer.ltype != "convolutional":
            continue
        n = layer.filters
        layer.scales = rng.uniform(0.5, 2.0, size=n).astype(np.float32)
        layer.biases = rng.normal(size=n).astype(np.float32)
        layer.rolling_mean = (rng.normal(size=n) * 0.5).astype(np.float32)
        layer.rolling_var = rng.uniform(0.5, 2.0, size=n).astype(np.float32)
    return net


class TestCompileStages:
    def test_pools_attach_to_preceding_conv(self, rng):
        net = _trained_mini_net(rng)
        stages = compile_stages(net.layers, IN_SCALE, net.input_shape)
        assert len(stages) == 3
        assert stages[0].pool is not None
        assert stages[1].pool is None

    def test_functional_equivalence_with_darknet_layers(self, rng):
        """The compiled fabric reproduces the fake-quantized float network
        level for level — the core FINN-correctness claim."""
        net = _trained_mini_net(rng)
        stages = compile_stages(net.layers, IN_SCALE, net.input_shape)
        levels = rng.integers(0, 8, size=net.input_shape)
        fabric_fm = FeatureMap(levels, scale=IN_SCALE)
        for stage in stages:
            fabric_fm = stage.forward(fabric_fm)

        float_fm = FeatureMap(levels, scale=IN_SCALE)
        for layer in net.layers:
            float_fm = layer.forward(float_fm)
        assert fabric_fm.scale == pytest.approx(float_fm.scale)
        assert np.array_equal(fabric_fm.data, np.asarray(float_fm.data))

    def test_rejects_unquantized_layers(self, rng):
        cfg = MINI_HIDDEN_CFG.replace("binary=1", "binary=0")
        net = Network.from_cfg(cfg)
        with pytest.raises(ValueError, match="binary"):
            compile_stages(net.layers, IN_SCALE, net.input_shape)

    def test_rejects_leading_pool(self, rng):
        net = _trained_mini_net(rng)
        with pytest.raises(ValueError, match="convolution"):
            compile_stages(net.layers[1:], IN_SCALE, (12, 24, 24))


def _tincy_hidden_stages(folding=Folding(32, 32), per_layer=None):
    net = Network(tincy_yolo_config())
    # hidden run: everything between the first and the last convolution
    layers = net.layers[1:-2]  # skip conv1; drop conv15 + region
    rng = np.random.default_rng(0)
    for layer in layers:
        if layer.ltype != "convolutional":
            continue
        n = layer.filters
        layer.scales = rng.uniform(0.5, 2.0, size=n).astype(np.float32)
        layer.rolling_var = rng.uniform(0.5, 2.0, size=n).astype(np.float32)
    in_shape = net.layers[0].out_shape
    return compile_stages(
        layers, 1.0 / 7.0, in_shape, folding=folding, per_layer_folding=per_layer
    )


class TestIteratedAcceleratorTiming:
    def test_tincy_hidden_layers_take_about_30ms(self):
        """§III-C: the QNN accelerator reduces all hidden layers to ~30 ms."""
        accel = IteratedAccelerator(_tincy_hidden_stages())
        t = accel.time_per_frame()
        assert 0.025 <= t <= 0.035

    def test_cycle_count_matches_hand_calculation(self):
        accel = IteratedAccelerator(_tincy_hidden_stages())
        conv_cycles = sum(s.conv.cycles(s.in_shape) for s in accel.stages)
        # Hand-derived in DESIGN.md: folds 10/36/72/288/1152/2304/2304.
        assert conv_cycles == (
            10 * 208 * 208
            + 36 * 104 * 104
            + 72 * 52 * 52
            + 288 * 26 * 26
            + 1152 * 169
            + 2304 * 169
            + 2304 * 169
        )

    def test_speedup_over_generic_cpu_is_about_300x(self):
        """§III-C: 9160 ms generic -> 30 ms on fabric, >300x."""
        accel = IteratedAccelerator(_tincy_hidden_stages())
        speedup = 9.160 / accel.time_per_frame()
        assert speedup > 250

    def test_shared_engine_requires_uniform_folding(self):
        stages = _tincy_hidden_stages(
            per_layer=[Folding(32, 32)] * 6 + [Folding(16, 16)]
        )
        with pytest.raises(ValueError, match="one folding"):
            IteratedAccelerator(stages)


class TestResourceFit:
    def test_single_iterated_engine_fits_xczu3eg(self):
        accel = IteratedAccelerator(_tincy_hidden_stages())
        assert accel.resources().fits(XCZU3EG)

    def test_two_engines_do_not_fit_xczu3eg(self):
        """§III-A: *only* a single conv+pool engine fits the fabric."""
        accel = IteratedAccelerator(_tincy_hidden_stages())
        doubled = accel.resources() + accel.resources()
        assert not doubled.fits(XCZU3EG)

    def test_weight_bram_dominates(self):
        accel = IteratedAccelerator(_tincy_hidden_stages())
        resources = accel.resources()
        utilization = resources.utilization(XCZU3EG)
        assert utilization["bram"] > utilization["lut"]
        assert utilization["bram"] > 0.8  # weights nearly fill the device

    def test_throughput_matched_dataflow_overflows_xczu3eg(self):
        """A per-layer pipeline matching the iterated engine's throughput
        does not fit the small device — the reason the layers 'must be run
        one after the other on the same accelerator'."""
        base = _tincy_hidden_stages()
        unit = [
            s.conv.mvtu.geometry.rows
            * s.conv.mvtu.geometry.cols
            * int(np.prod(s.conv.out_shape(s.in_shape)[1:]))
            for s in base
        ]
        target = IteratedAccelerator(base).cycles_per_frame()
        foldings = balanced_dataflow_foldings(unit, target)
        stages = _tincy_hidden_stages(per_layer=foldings)
        dataflow = DataflowAccelerator(stages)
        assert not dataflow.resources().fits(XCZU3EG)
        assert dataflow.resources().fits(XCZU9EG)

    def test_dataflow_beats_iterated_on_big_device(self):
        base = _tincy_hidden_stages()
        unit = [
            s.conv.mvtu.geometry.rows
            * s.conv.mvtu.geometry.cols
            * int(np.prod(s.conv.out_shape(s.in_shape)[1:]))
            for s in base
        ]
        target = IteratedAccelerator(base).cycles_per_frame()
        foldings = balanced_dataflow_foldings(unit, target)
        dataflow = DataflowAccelerator(_tincy_hidden_stages(per_layer=foldings))
        iterated = IteratedAccelerator(base)
        assert dataflow.time_per_frame() <= iterated.time_per_frame()


class TestDataflowModel:
    def test_initiation_interval_is_max_stage(self, rng):
        net = _trained_mini_net(rng)
        stages = compile_stages(net.layers, IN_SCALE, net.input_shape)
        dataflow = DataflowAccelerator(stages)
        assert dataflow.initiation_interval_cycles() == max(
            s.cycles() for s in stages
        )
        assert dataflow.latency_s() >= dataflow.time_per_frame()

    def test_balanced_foldings_meet_target(self):
        unit = [1000, 8000, 64000]
        foldings = balanced_dataflow_foldings(unit, target_cycles=1000)
        for cycles, folding in zip(unit, foldings):
            assert cycles / folding.macs_per_cycle <= 1000
