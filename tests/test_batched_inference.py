"""Batched inference (batch axis 0) is bit-identical to per-frame forward.

The batched layer paths exist purely for throughput: every
``forward_batch`` must reproduce the corresponding sequential ``forward``
calls bit for bit — including the full Tincy YOLO network at batch 16,
the FINN fabric offload, and the batched NEON integer kernels (under a
shared calibration range).
"""

import numpy as np
import pytest

import repro.finn  # noqa: F401  (registers fabric.so)
from repro.core.tensor import FeatureMap, FeatureMapBatch
from repro.finn.mvtu import Folding
from repro.finn.offload_backend import export_offload
from repro.nn import zoo
from repro.nn.network import Network
from repro.pipeline import forward_frames, iter_batches


def _frames(rng, shape, count):
    return [
        FeatureMap(rng.normal(size=shape).astype(np.float32))
        for _ in range(count)
    ]


def _assert_batch_matches_sequential(network, frames):
    sequential = [network.forward(fm) for fm in frames]
    batched = network.forward_batch(FeatureMapBatch.from_maps(frames))
    assert batched.batch == len(frames)
    for expected, got in zip(sequential, batched.frames()):
        assert got.scale == expected.scale
        assert np.array_equal(got.data, expected.data)


class TestFeatureMapBatch:
    def test_from_maps_roundtrip(self, rng):
        maps = [
            FeatureMap(rng.integers(0, 8, size=(2, 4, 4)).astype(np.int32), 0.25)
            for _ in range(3)
        ]
        fmb = FeatureMapBatch.from_maps(maps)
        assert fmb.shape == (3, 2, 4, 4)
        for original, frame in zip(maps, fmb.frames()):
            assert frame.scale == original.scale
            assert np.array_equal(frame.data, original.data)

    def test_mixed_scales_rejected(self, rng):
        a = FeatureMap(np.zeros((1, 2, 2), dtype=np.int32), 0.5)
        b = FeatureMap(np.zeros((1, 2, 2), dtype=np.int32), 0.25)
        with pytest.raises(ValueError, match="scale"):
            FeatureMapBatch.from_maps([a, b])

    def test_mixed_shapes_rejected(self):
        a = FeatureMap(np.zeros((1, 2, 2), dtype=np.float32))
        b = FeatureMap(np.zeros((1, 3, 3), dtype=np.float32))
        with pytest.raises(ValueError, match="shape"):
            FeatureMapBatch.from_maps([a, b])

    def test_values_dequantizes_like_single_frame(self, rng):
        maps = [
            FeatureMap(rng.integers(0, 8, size=(2, 4, 4)).astype(np.int32), 1 / 7)
            for _ in range(4)
        ]
        fmb = FeatureMapBatch.from_maps(maps)
        for original, values in zip(maps, fmb.values()):
            assert np.array_equal(values, original.values())


class TestNetworksBatchedEquivalence:
    def test_mlp4_batch_matches_sequential(self, rng):
        network = Network(zoo.mlp4_config())
        network.initialize(rng)
        _assert_batch_matches_sequential(
            network, _frames(rng, network.input_shape, 5)
        )

    def test_cnv6_batch_matches_sequential(self, rng):
        network = Network(zoo.cnv6_config())
        network.initialize(rng)
        _assert_batch_matches_sequential(
            network, _frames(rng, network.input_shape, 3)
        )

    @pytest.mark.slow
    def test_tincy_batch16_matches_sequential(self, rng):
        # The headline guarantee: Tincy YOLO at batch 16 is bit-identical,
        # frame for frame, to 16 sequential batch-1 forward passes.
        network = Network(zoo.tincy_yolo_config())
        network.initialize(rng)
        _assert_batch_matches_sequential(
            network, _frames(rng, network.input_shape, 16)
        )

    def test_partial_and_single_frame_batches(self, rng):
        network = Network(zoo.mlp4_config())
        network.initialize(rng)
        _assert_batch_matches_sequential(
            network, _frames(rng, network.input_shape, 1)
        )

    def test_wrong_frame_shape_rejected(self, rng):
        network = Network(zoo.mlp4_config())
        network.initialize(rng)
        bad = FeatureMapBatch(np.zeros((2, 1, 3, 3), dtype=np.float32))
        with pytest.raises(ValueError, match="do not match network"):
            network.forward_batch(bad)


class TestOffloadBatchedEquivalence:
    # Reuses the Fig. 4 export flow of test_finn_offload on a small W1A3 run.
    CFG = """
[net]
width=24
height=24
channels=3

[convolutional]
batch_normalize=1
filters=8
size=3
stride=2
pad=1
activation=relu
activation_bits=3

[offload]
library=fabric.so
network=hidden.cfg
weights={binparam}
height=6
width=6
channel=16

[convolutional]
filters=10
size=1
stride=1
pad=0
activation=linear
"""

    def test_hybrid_network_batch_matches_sequential(self, rng, tmp_path):
        from tests.test_finn_offload import FULL_CFG, _trained

        full = _trained(rng, FULL_CFG)
        binparam = str(tmp_path / "binparam-mini")
        export_offload(
            full.layers[1:4],
            input_scale=full.layers[0].out_quant.scale,
            input_shape=full.layers[0].out_shape,
            directory=binparam,
            folding=Folding(4, 4),
        )
        hybrid = Network.from_cfg(self.CFG.format(binparam=binparam))
        for src_index, dst_index in ((0, 0), (4, 2)):
            src, dst = full.layers[src_index], hybrid.layers[dst_index]
            dst.weights = src.weights.copy()
            dst.biases = src.biases.copy()
            if src.batch_normalize:
                dst.scales = src.scales.copy()
                dst.rolling_mean = src.rolling_mean.copy()
                dst.rolling_var = src.rolling_var.copy()
        hybrid.layers[1].backend.load_weights()
        _assert_batch_matches_sequential(hybrid, _frames(rng, (3, 24, 24), 5))


class TestNeonBatchedKernels:
    # Batched NEON kernels derive x_range from the whole batch; pin it
    # explicitly so per-frame comparisons are apples to apples.
    def _operands(self, rng, frames=3, c=3, hw=12, c_out=8):
        x = rng.normal(size=(frames, c, hw, hw)).astype(np.float32)
        w = rng.normal(size=(c_out, c, 3, 3)).astype(np.float32) * 0.2
        return x, w

    def test_gemmlowp_batch_matches_per_frame(self, rng):
        from repro.neon import conv_gemmlowp, conv_gemmlowp_batch

        x, w = self._operands(rng)
        x_range = (float(x.min()), float(x.max()))
        batched, stats = conv_gemmlowp_batch(x, w, x_range=x_range)
        for i in range(x.shape[0]):
            single, _ = conv_gemmlowp(x[i], w, x_range=x_range)
            assert np.array_equal(batched[i], single)
        assert stats.path == "gemmlowp-u8-batch"

    @pytest.mark.parametrize("bits", [16, 32])
    def test_int8_batch_matches_per_frame(self, rng, bits):
        from repro.neon import conv_int8, conv_int8_batch

        x, w = self._operands(rng)
        x_range = (float(x.min()), float(x.max()))
        batched, stats = conv_int8_batch(
            x, w, accumulator_bits=bits, x_range=x_range
        )
        overflow_total = 0
        for i in range(x.shape[0]):
            single, s = conv_int8(x[i], w, accumulator_bits=bits, x_range=x_range)
            overflow_total += s.overflow_events
            assert np.array_equal(batched[i], single)
        assert stats.overflow_events == overflow_total

    @pytest.mark.parametrize("variant", ["float", "i8_acc32", "i8_acc16"])
    def test_first_layer_batch_matches_per_frame(self, rng, variant):
        from repro.neon import conv_first_layer_custom, conv_first_layer_custom_batch

        x = rng.normal(size=(2, 3, 16, 16)).astype(np.float32)
        w = rng.normal(size=(16, 3, 3, 3)).astype(np.float32) * 0.2
        x_range = (float(x.min()), float(x.max()))
        batched, _ = conv_first_layer_custom_batch(
            x, w, variant=variant, x_range=x_range
        )
        for i in range(x.shape[0]):
            single, _ = conv_first_layer_custom(
                x[i], w, variant=variant, x_range=x_range
            )
            assert np.array_equal(batched[i], single)


class TestMicroBatching:
    def test_iter_batches_sizes_and_order(self, rng):
        frames = _frames(rng, (1, 2, 2), 7)
        chunks = list(iter_batches(frames, 3))
        assert [c.batch for c in chunks] == [3, 3, 1]
        flat = [frame for chunk in chunks for frame in chunk.frames()]
        for original, frame in zip(frames, flat):
            assert np.array_equal(frame.data, original.data)

    def test_iter_batches_rejects_bad_size(self, rng):
        with pytest.raises(ValueError, match="positive"):
            list(iter_batches(_frames(rng, (1, 2, 2), 2), 0))

    def test_forward_frames_matches_sequential(self, rng):
        network = Network(zoo.mlp4_config())
        network.initialize(rng)
        frames = _frames(rng, network.input_shape, 7)
        expected = [network.forward(fm) for fm in frames]
        got = forward_frames(network, frames, batch_size=3)
        assert len(got) == len(expected)
        for e, g in zip(expected, got):
            assert g.scale == e.scale
            assert np.array_equal(g.data, e.data)
