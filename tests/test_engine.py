"""Execution engine tests: plan structure, liveness, bit-identity, contracts.

The engine's promise is *refactor without drift*: ``compile_plan`` +
``Executor.run`` must be bit-identical to the frozen pre-engine walk
loops (``repro.engine.reference``) on everything — the full Tincy YOLO
zoo network, backward-looking [route] topologies, and the FINN offload
hybrid — while buffer liveness provably shrinks the working set and the
FABRIC resource tag (not ``ltype`` string compares) keys the offload
guard.
"""

import numpy as np
import pytest

from repro.core.resources import CPU, FABRIC
from repro.core.tensor import FeatureMap, FeatureMapBatch
from repro.engine import (
    INPUT,
    Executor,
    compile_plan,
    legacy_forward_all,
    legacy_forward_batch_all,
)
from repro.finn.offload_backend import export_offload
from repro.finn.schedule import Folding
from repro.nn import zoo
from repro.nn.layers.base import Layer
from repro.nn.network import LAYER_TYPES, Network, register_layer_type
from tests.test_nn_route import ROUTE_CFG


def _tincy(rng):
    network = Network(zoo.tincy_yolo_config())
    network.initialize(rng)
    return network


def _frames(rng, shape, count):
    return [
        FeatureMap(rng.normal(size=shape).astype(np.float32))
        for _ in range(count)
    ]


class RecordingGuard:
    """Context manager counting how often the executor entered it."""

    def __init__(self):
        self.entered = 0
        self.in_flight = 0
        self.max_in_flight = 0

    def __enter__(self):
        self.entered += 1
        self.in_flight += 1
        self.max_in_flight = max(self.max_in_flight, self.in_flight)
        return self

    def __exit__(self, *exc_info):
        self.in_flight -= 1
        return False


class FakeFabricLayer(Layer):
    """A registered offload-style layer: FABRIC-tagged, not ltype 'offload'."""

    ltype = "fakefabric"
    resource = FABRIC

    def _configure(self, in_shape):
        return in_shape

    def forward(self, fm):
        self._require_initialized()
        return FeatureMap(fm.data * 2.0, fm.scale)


FAKE_FABRIC_CFG = """
[net]
width=6
height=6
channels=2

[convolutional]
filters=3
size=3
stride=1
pad=1
activation=relu

[fakefabric]

[convolutional]
filters=2
size=1
stride=1
pad=0
activation=linear
"""


@pytest.fixture
def fake_fabric_network(rng):
    register_layer_type("fakefabric", FakeFabricLayer)
    try:
        network = Network.from_cfg(FAKE_FABRIC_CFG)
        network.initialize(rng)
        yield network
    finally:
        del LAYER_TYPES["fakefabric"]


class TestPlanStructure:
    def test_tincy_chain_edges(self):
        network = Network(zoo.tincy_yolo_config())
        plan = compile_plan(network)
        assert len(plan) == len(network.layers)
        assert plan.input_shape == tuple(network.input_shape)
        assert plan.output_shape == tuple(network.output_shape)
        for index, (step, layer) in enumerate(zip(plan.steps, network.layers)):
            assert step.index == index
            assert step.ltype == layer.ltype
            assert step.layer is layer
            assert step.out_shape == tuple(layer.out_shape)
            assert step.ops == layer.workload().ops
            assert step.resource == CPU
            assert step.inputs == ((index - 1,) if index else (INPUT,))

    def test_metadata_accessors(self):
        plan = compile_plan(Network(zoo.tincy_yolo_config()))
        edges = plan.edges()
        assert (INPUT, 0) in edges
        assert all(producer < consumer for producer, consumer in edges)
        assert plan.consumers(INPUT) == (0,)
        assert plan.consumers(0) == (1,)
        assert plan.consumers(len(plan) - 1) == ()  # the plan output
        assert plan.buffer_shape(INPUT) == plan.input_shape
        assert plan.buffer_shape(len(plan) - 1) == plan.output_shape

    def test_tincy_chain_liveness_releases_each_buffer_once(self):
        plan = compile_plan(Network(zoo.tincy_yolo_config()))
        released = [b for victims in plan.release_after.values() for b in victims]
        # Every buffer except the final output dies exactly once.
        expected = [INPUT] + [s.index for s in plan.steps[:-1]]
        assert sorted(released) == sorted(expected)
        # A pure chain frees each input right after its only consumer.
        assert plan.release_after[0] == (INPUT,)
        assert plan.release_after[1] == (0,)

    def test_route_history_edges(self):
        network = Network.from_cfg(ROUTE_CFG)
        plan = compile_plan(network)
        route = plan.steps[2]
        assert route.ltype == "route"
        # Chain predecessor first, then the resolved [route] sources
        # (layers=-1,-2 resolves to absolute indices 1, 0).
        assert route.inputs == (1, 1, 0)
        # Buffer 0 must stay alive past step 1 (the route still reads it)
        # and die only after the route has consumed it.
        assert 0 not in plan.release_after.get(1, ())
        assert 0 in plan.release_after[2]

    def test_fabric_resource_tags(self, fake_fabric_network):
        plan = compile_plan(fake_fabric_network)
        assert [s.resource for s in plan.steps] == [CPU, FABRIC, CPU]
        assert plan.uses_fabric
        assert [s.index for s in plan.fabric_steps()] == [1]
        assert fake_fabric_network.uses_fabric

    def test_empty_network_rejected(self):
        class Hollow:
            layers = []
            input_shape = (1, 1, 1)

        with pytest.raises(ValueError, match="empty network"):
            compile_plan(Hollow())

    def test_network_plan_is_cached(self):
        network = Network.from_cfg(ROUTE_CFG)
        assert network.plan() is network.plan()
        assert network.executor() is network.executor()


class TestLiveness:
    def test_tincy_peak_strictly_below_keep_everything(self):
        plan = compile_plan(Network(zoo.tincy_yolo_config()))
        peak = plan.peak_live_bytes()
        total = plan.total_buffer_bytes()
        # Releasing dead intermediates must shrink the working set on a
        # 15-layer network — by a wide margin, not epsilon.
        assert peak < 0.75 * total

    def test_measured_high_water_run_below_run_all(self, rng):
        network = Network.from_cfg(ROUTE_CFG)
        network.initialize(rng)
        executor = network.executor()
        fmb = FeatureMapBatch.from_maps(_frames(rng, (2, 8, 8), 2))
        executor.run(fmb)
        live_peak = executor.last_report.peak_live_bytes
        executor.run_all(fmb)
        keep_all_peak = executor.last_report.peak_live_bytes
        assert live_peak < keep_all_peak

    def test_estimate_matches_measured_float32_high_water(self, rng):
        network = Network.from_cfg(ROUTE_CFG)
        network.initialize(rng)
        executor = network.executor()
        fmb = FeatureMapBatch.from_maps(_frames(rng, (2, 8, 8), 1))
        executor.run(fmb)
        # Float32 maps, batch 1: the compile-time estimate is exact.
        assert executor.last_report.peak_live_bytes == (
            network.plan().peak_live_bytes()
        )

    def test_perf_reconciliation_helper(self):
        from repro.perf.memory import activation_high_water

        network = Network(zoo.tincy_yolo_config())
        assert activation_high_water(network) == network.plan().peak_live_bytes()
        assert activation_high_water(network, bytes_per_element=1) == (
            network.plan().peak_live_bytes(bytes_per_element=1)
        )


class TestLegacyEquivalence:
    def test_tincy_bit_identical_to_legacy_walk(self, rng):
        network = _tincy(rng)
        frames = _frames(rng, network.input_shape, 2)
        out = network.executor().run(FeatureMapBatch.from_maps(frames))
        for index, frame in enumerate(frames):
            legacy = legacy_forward_all(network, frame)[-1]
            assert np.array_equal(out.frame(index).data, legacy.data)
            assert out.frame(index).scale == legacy.scale

    def test_route_network_bit_identical_to_legacy_walk(self, rng):
        network = Network.from_cfg(ROUTE_CFG)
        network.initialize(rng)
        frames = _frames(rng, (2, 8, 8), 3)
        fmb = FeatureMapBatch.from_maps(frames)
        engine_all = network.executor().run_all(fmb)
        legacy_all = legacy_forward_batch_all(network, fmb)
        assert len(engine_all) == len(legacy_all)
        for engine_fmb, legacy_fmb in zip(engine_all, legacy_all):
            assert np.array_equal(engine_fmb.data, legacy_fmb.data)

    def test_offload_hybrid_bit_identical_with_guard(self, rng, tmp_path):
        from tests.test_batched_inference import TestOffloadBatchedEquivalence
        from tests.test_finn_offload import FULL_CFG, _trained

        full = _trained(rng, FULL_CFG)
        binparam = str(tmp_path / "binparam-mini")
        export_offload(
            full.layers[1:4],
            input_scale=full.layers[0].out_quant.scale,
            input_shape=full.layers[0].out_shape,
            directory=binparam,
            folding=Folding(4, 4),
        )
        hybrid = Network.from_cfg(
            TestOffloadBatchedEquivalence.CFG.format(binparam=binparam)
        )
        for src_index, dst_index in ((0, 0), (4, 2)):
            src, dst = full.layers[src_index], hybrid.layers[dst_index]
            dst.weights = src.weights.copy()
            dst.biases = src.biases.copy()
            if src.batch_normalize:
                dst.scales = src.scales.copy()
                dst.rolling_mean = src.rolling_mean.copy()
                dst.rolling_var = src.rolling_var.copy()
        hybrid.layers[1].backend.load_weights()

        fmb = FeatureMapBatch.from_maps(_frames(rng, (3, 24, 24), 4))
        guard = RecordingGuard()
        out = hybrid.executor().run(fmb, offload_guard=guard)
        legacy = legacy_forward_batch_all(hybrid, fmb)[-1]
        assert np.array_equal(out.data, legacy.data)
        assert out.scale == legacy.scale
        # The real [offload] layer is FABRIC-tagged, so the guard wrapped
        # exactly that one step.
        assert guard.entered == 1
        assert guard.max_in_flight == 1


class TestOffloadGuardByResourceTag:
    def test_guard_wraps_registered_fabric_layer(self, fake_fabric_network, rng):
        # Satellite: the guard keys off the plan's FABRIC resource tag.  A
        # registered fabric-backed layer whose ltype is NOT "offload" must
        # still execute inside the guard (the legacy ltype compare missed it).
        guard = RecordingGuard()
        fmb = FeatureMapBatch.from_maps(_frames(rng, (2, 6, 6), 2))
        out = fake_fabric_network.executor().run(fmb, offload_guard=guard)
        assert guard.entered == 1
        legacy = legacy_forward_batch_all(fake_fabric_network, fmb)[-1]
        assert np.array_equal(out.data, legacy.data)

    def test_guard_skips_cpu_only_network(self, rng):
        network = Network.from_cfg(ROUTE_CFG)
        network.initialize(rng)
        guard = RecordingGuard()
        fmb = FeatureMapBatch.from_maps(_frames(rng, (2, 8, 8), 1))
        network.executor().run(fmb, offload_guard=guard)
        assert guard.entered == 0


class TestBatchHistoryContract:
    # Satellite: Layer.forward_batch enforces its signature instead of
    # silently ignoring mismatched history plumbing.
    def test_history_to_non_history_layer_is_typeerror(self, rng):
        network = Network.from_cfg(ROUTE_CFG)
        network.initialize(rng)
        conv = network.layers[0]
        fmb = FeatureMapBatch.from_maps(_frames(rng, (2, 8, 8), 1))
        with pytest.raises(TypeError, match="does not consume a layer history"):
            conv.forward_batch(fmb, history=[fmb])

    def test_missing_history_for_route_is_valueerror(self, rng):
        network = Network.from_cfg(ROUTE_CFG)
        network.initialize(rng)
        outputs = network.forward_batch_all(
            FeatureMapBatch.from_maps(_frames(rng, (2, 8, 8), 1))
        )
        route = network.layers[2]
        with pytest.raises(ValueError, match="history"):
            route.forward_batch(outputs[1])

    def test_run_batch_arity_is_checked(self, rng):
        network = Network.from_cfg(ROUTE_CFG)
        network.initialize(rng)
        fmb = FeatureMapBatch.from_maps(_frames(rng, (2, 8, 8), 1))
        with pytest.raises(ValueError, match="exactly one input"):
            network.layers[0].run_batch([fmb, fmb])


class TestDegenerateBatches:
    def test_empty_batch_through_executor(self, rng):
        network = Network.from_cfg(ROUTE_CFG)
        network.initialize(rng)
        empty = FeatureMapBatch(np.zeros((0, 2, 8, 8), dtype=np.float32))
        out = network.executor().run(empty)
        assert out.batch == 0
        assert tuple(out.frame_shape) == network.plan().output_shape
        everything = network.executor().run_all(empty)
        assert [fmb.batch for fmb in everything] == [0] * len(network.layers)

    def test_empty_batch_through_network(self, rng):
        network = _tincy(rng)
        empty = FeatureMapBatch(
            np.zeros((0,) + tuple(network.input_shape), dtype=np.float32)
        )
        out = network.forward_batch(empty)
        assert out.batch == 0
        assert tuple(out.frame_shape) == tuple(network.output_shape)

    def test_batch_of_one_matches_single_frame(self, rng):
        network = Network.from_cfg(ROUTE_CFG)
        network.initialize(rng)
        frame = _frames(rng, (2, 8, 8), 1)[0]
        single = network.forward(frame)
        batched = network.forward_batch(FeatureMapBatch.from_maps([frame]))
        assert batched.batch == 1
        assert np.array_equal(batched.frame(0).data, single.data)

    def test_serve_empty_and_singleton(self, rng):
        from repro.serve import InferenceServer, ServeConfig

        network = Network(zoo.mlp4_config())
        network.initialize(rng)
        frame = _frames(rng, network.input_shape, 1)[0]
        with InferenceServer(network, ServeConfig(warmup=False)) as server:
            assert server.infer_many([]) == []
            outs = server.infer_many([frame], timeout_s=30)
            assert len(outs) == 1
            assert np.array_equal(outs[0].data, network.forward(frame).data)


class TestInstrumentation:
    def test_report_covers_every_step(self, rng):
        network = Network.from_cfg(ROUTE_CFG)
        network.initialize(rng)
        executor = network.executor()
        fmb = FeatureMapBatch.from_maps(_frames(rng, (2, 8, 8), 3))
        executor.run(fmb)
        report = executor.last_report
        assert report.batch == 3
        assert [s.index for s in report.steps] == list(range(len(network.layers)))
        assert all(s.wall_s >= 0.0 for s in report.steps)
        assert report.total_ops == 3 * network.total_ops()
        assert report.peak_live_bytes == max(s.live_bytes for s in report.steps)

    def test_on_step_hook_fires_in_order(self, rng):
        network = Network.from_cfg(ROUTE_CFG)
        network.initialize(rng)
        seen = []
        executor = Executor(network.plan(), on_step=lambda s: seen.append(s.name))
        executor.run(FeatureMapBatch.from_maps(_frames(rng, (2, 8, 8), 1)))
        assert seen == [step.name for step in network.plan().steps]

    def test_serve_metrics_expose_plan_steps(self, rng):
        from repro.serve import InferenceServer, ServeConfig

        network = Network(zoo.mlp4_config())
        network.initialize(rng)
        frames = _frames(rng, network.input_shape, 3)
        with InferenceServer(network, ServeConfig(warmup=False)) as server:
            server.infer_many(frames, timeout_s=30)
            snapshot = server.metrics.snapshot()
        steps = snapshot["plan_steps"]
        assert set(steps) == {s.name for s in network.plan().steps}
        for entry in steps.values():
            assert entry["count"] >= 1
            assert entry["total_ms"] >= 0.0

    def test_executor_rejects_wrong_frame_shape(self, rng):
        network = Network.from_cfg(ROUTE_CFG)
        network.initialize(rng)
        bad = FeatureMapBatch(np.zeros((2, 2, 8, 9), dtype=np.float32))
        with pytest.raises(ValueError, match="do not match network"):
            network.executor().run(bad)
