"""Model-based randomized testing of :class:`DynamicBatcher`.

The production batcher is a state machine over explicit ``now`` values,
which makes it perfectly replayable: this test drives it with seeded
random event sequences (interleaved ``add``/``poll`` calls on a
non-decreasing virtual timeline, random ``max_batch``/``max_delay_s``
knobs per case) and checks every step against ``ModelBatcher``, a naive
reimplementation of the two-trigger policy kept deliberately simple
enough to audit by eye.

Invariants, checked after every event and at the final forced flush:

* **agreement** — the real batcher emits exactly the flushes the model
  predicts (same request ids, same order, same cause);
* **no drop / no duplicate** — every added request appears in exactly
  one flush by the end;
* **no deadline overrun** — whenever an event observes the batcher at
  time ``now``, no request is left pending past its batch's deadline;
* **deadline bookkeeping** — ``next_deadline()`` is ``None`` iff nothing
  is pending, else ``oldest arrival + max_delay_s``.

On failure the test *shrinks by seed-prefix replay*: it re-runs the same
seed with ever-shorter event prefixes to find the minimal failing
prefix, then reports the seed, the knobs, and the exact event list —
paste them into ``_run_case`` to reproduce (docs/TESTING.md).
"""

from typing import List, Optional, Tuple

import numpy as np
import pytest

from repro.core.tensor import FeatureMap
from repro.serve.batcher import (
    FLUSH_DEADLINE,
    FLUSH_FORCED,
    FLUSH_SIZE,
    DynamicBatcher,
)
from repro.serve.queue import InferenceRequest

#: Number of seeded cases; each is an independent random schedule.
CASES = 40

#: One shared dummy frame — the batcher never looks inside it.
_FRAME = FeatureMap(np.zeros((1, 1, 1), dtype=np.float32))

#: (kind, now) event rows; kind is "add" or "poll".
Event = Tuple[str, float]


class ModelBatcher:
    """The two-trigger policy, written the naive way: a list and an if."""

    def __init__(self, max_batch: int, max_delay_s: float) -> None:
        self.max_batch = max_batch
        self.max_delay_s = max_delay_s
        self.pending: List[Tuple[int, float]] = []  # (request id, arrival)

    def oldest(self) -> Optional[float]:
        return self.pending[0][1] if self.pending else None

    def _take(self) -> List[int]:
        ids = [rid for rid, _ in self.pending]
        self.pending = []
        return ids

    def add(self, rid: int, now: float):
        self.pending.append((rid, now))
        if len(self.pending) >= self.max_batch:
            return self._take(), FLUSH_SIZE
        if now >= self.pending[0][1] + self.max_delay_s:
            return self._take(), FLUSH_DEADLINE
        return None

    def poll(self, now: float):
        if self.pending and now >= self.pending[0][1] + self.max_delay_s:
            return self._take(), FLUSH_DEADLINE
        return None

    def flush(self):
        if not self.pending:
            return None
        return self._take(), FLUSH_FORCED


def _generate(seed: int):
    """One random case: knobs plus a non-decreasing event schedule."""
    rng = np.random.default_rng((20180621, seed))
    max_batch = int(rng.integers(1, 7))
    max_delay_s = float(rng.choice([0.0, 0.001, 0.005, 0.02]))
    steps = [0.0, 0.0005, 0.001, 0.004, 0.01, 0.03]
    events: List[Event] = []
    now = 0.0
    for _ in range(int(rng.integers(20, 120))):
        now += float(rng.choice(steps))
        events.append(("add" if rng.random() < 0.7 else "poll", now))
    return max_batch, max_delay_s, events


def _run_case(
    max_batch: int, max_delay_s: float, events: List[Event]
) -> Optional[str]:
    """Replay one schedule; returns a failure description or None."""
    real = DynamicBatcher(max_batch, max_delay_s)
    model = ModelBatcher(max_batch, max_delay_s)
    added: List[int] = []
    flushed: List[int] = []

    def describe_flush(flush):
        if flush is None:
            return None
        return [r.id for r in flush.requests], flush.cause

    def check(step: int, kind: str, now: float, got, want) -> Optional[str]:
        if got != want:
            return (
                f"step {step} ({kind} @ {now:g}): "
                f"batcher flushed {got}, model expected {want}"
            )
        if got is not None:
            flushed.extend(got[0])
        # No pending request may sit past its deadline at an observation.
        deadline = real.next_deadline()
        if real.pending == 0:
            if deadline is not None:
                return f"step {step}: empty batcher reports deadline {deadline}"
        else:
            if deadline != model.oldest() + max_delay_s:
                return (
                    f"step {step}: next_deadline() == {deadline}, "
                    f"expected {model.oldest() + max_delay_s}"
                )
            if now >= deadline:
                return (
                    f"step {step}: request pending past its deadline "
                    f"({now:g} >= {deadline:g})"
                )
        return None

    for step, (kind, now) in enumerate(events):
        if kind == "add":
            rid = len(added)
            added.append(rid)
            got = describe_flush(real.add(InferenceRequest(rid, _FRAME, now), now))
            want = model.add(rid, now)
        else:
            got = describe_flush(real.poll(now))
            want = model.poll(now)
        error = check(step, kind, now, got, want)
        if error:
            return error

    got, want = describe_flush(real.flush()), model.flush()
    if got != want:
        return f"final flush: batcher flushed {got}, model expected {want}"
    if got is not None:
        flushed.extend(got[0])
    if flushed != added:
        dropped = sorted(set(added) - set(flushed))
        dupes = sorted({r for r in flushed if flushed.count(r) > 1})
        return (
            f"request conservation violated: dropped={dropped} "
            f"duplicated={dupes} (flushed {flushed}, added {added})"
        )
    return None


def _shrink(seed: int) -> str:
    """Find the minimal failing event prefix of *seed*'s schedule."""
    max_batch, max_delay_s, events = _generate(seed)
    shortest = events
    for length in range(1, len(events) + 1):
        if _run_case(max_batch, max_delay_s, events[:length]) is not None:
            shortest = events[:length]
            break
    error = _run_case(max_batch, max_delay_s, shortest)
    return (
        f"seed={seed} max_batch={max_batch} max_delay_s={max_delay_s} "
        f"minimal prefix ({len(shortest)}/{len(events)} events): "
        f"{shortest!r}\n{error}"
    )


class TestBatcherAgainstModel:
    @pytest.mark.parametrize("seed", range(CASES))
    def test_random_schedule_matches_model(self, seed):
        max_batch, max_delay_s, events = _generate(seed)
        if _run_case(max_batch, max_delay_s, events) is not None:
            pytest.fail(_shrink(seed), pytrace=False)

    def test_schedules_exercise_every_flush_cause(self):
        # Meta-check: the generator actually reaches all three causes
        # (otherwise the model agreement would be vacuous for some).
        causes = set()
        for seed in range(CASES):
            max_batch, max_delay_s, events = _generate(seed)
            real = DynamicBatcher(max_batch, max_delay_s)
            for i, (kind, now) in enumerate(events):
                flush = (
                    real.add(InferenceRequest(i, _FRAME, now), now)
                    if kind == "add"
                    else real.poll(now)
                )
                if flush is not None:
                    causes.add(flush.cause)
            final = real.flush()
            if final is not None:
                causes.add(final.cause)
        assert causes == {FLUSH_SIZE, FLUSH_DEADLINE, FLUSH_FORCED}

    def test_shrinker_reports_minimal_prefix(self, monkeypatch):
        # Sabotage the generator's schedule length knowledge by checking
        # the shrinker on a hand-made failure: a model that disagrees at
        # event 3 must be pinned to a 4-event prefix, not the full run.
        events = [("add", 0.0), ("poll", 0.0), ("add", 0.1), ("add", 0.2)]

        def fake_generate(seed):
            return 10, 5.0, events  # never flushes by itself

        broken = _run_case(10, 5.0, events)
        assert broken is None  # sanity: the real batcher is fine here

        def broken_run(max_batch, max_delay_s, evs):
            return "injected" if len(evs) >= 3 else None

        monkeypatch.setattr(
            "tests.test_serve_batcher_model._generate", fake_generate
        )
        monkeypatch.setattr(
            "tests.test_serve_batcher_model._run_case", broken_run
        )
        message = _shrink(seed=0)
        assert "3/4 events" in message
        assert "injected" in message
