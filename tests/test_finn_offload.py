"""End-to-end offload tests: export -> binparam -> fabric.so -> Darknet cfg.

This is the Fig. 4 flow: a quantized network's hidden layers are exported
to a binparam bundle, and an ``[offload]`` layer with ``library=fabric.so``
replaces them inside the Darknet network.  The resulting hybrid network
must produce the same outputs as the original, level for level.
"""

import numpy as np
import pytest

import repro.finn  # noqa: F401  (registers fabric.so)
from repro.core.tensor import FeatureMap
from repro.finn.mvtu import Folding
from repro.finn.offload_backend import FabricBackend, export_offload
from repro.nn.config import Section
from repro.nn.network import Network

FULL_CFG = """
[net]
width=24
height=24
channels=3

[convolutional]
batch_normalize=1
filters=8
size=3
stride=2
pad=1
activation=relu
activation_bits=3

[convolutional]
batch_normalize=1
filters=12
size=3
stride=1
pad=1
activation=relu
binary=1
activation_bits=3

[maxpool]
size=2
stride=2

[convolutional]
batch_normalize=1
filters=16
size=3
stride=1
pad=1
activation=relu
binary=1
activation_bits=3

[convolutional]
filters=10
size=1
stride=1
pad=0
activation=linear
"""

HYBRID_CFG_TEMPLATE = """
[net]
width=24
height=24
channels=3

[convolutional]
batch_normalize=1
filters=8
size=3
stride=2
pad=1
activation=relu
activation_bits=3

[offload]
library=fabric.so
network=hidden.cfg
weights={binparam}
height=6
width=6
channel=16

[convolutional]
filters=10
size=1
stride=1
pad=0
activation=linear
"""


def _trained(rng, cfg):
    net = Network.from_cfg(cfg)
    net.initialize(rng)
    for layer in net.layers:
        if layer.ltype != "convolutional":
            continue
        n = layer.filters
        layer.biases = rng.normal(size=n).astype(np.float32)
        if layer.batch_normalize:
            layer.scales = rng.uniform(0.5, 2.0, size=n).astype(np.float32)
            layer.rolling_mean = (rng.normal(size=n) * 0.5).astype(np.float32)
            layer.rolling_var = rng.uniform(0.5, 2.0, size=n).astype(np.float32)
    return net


class TestExportRoundtrip:
    def test_hybrid_network_matches_original(self, rng, tmp_path):
        full = _trained(rng, FULL_CFG)
        binparam = str(tmp_path / "binparam-mini")
        hidden = full.layers[1:4]  # conv/pool/conv W1A3 run
        export_offload(
            hidden,
            input_scale=full.layers[0].out_quant.scale,
            input_shape=full.layers[0].out_shape,
            directory=binparam,
            folding=Folding(4, 4),
        )

        hybrid = Network.from_cfg(HYBRID_CFG_TEMPLATE.format(binparam=binparam))
        # Copy the CPU layers' parameters into the hybrid network.
        for src_index, dst_index in ((0, 0), (4, 2)):
            src, dst = full.layers[src_index], hybrid.layers[dst_index]
            dst.weights = src.weights.copy()
            dst.biases = src.biases.copy()
            if src.batch_normalize:
                dst.scales = src.scales.copy()
                dst.rolling_mean = src.rolling_mean.copy()
                dst.rolling_var = src.rolling_var.copy()
        hybrid.layers[1].backend.load_weights()

        x = FeatureMap(rng.normal(size=(3, 24, 24)).astype(np.float32))
        expected = full.forward(x)
        got = hybrid.forward(x)
        assert np.allclose(got.data, expected.data, atol=1e-5)

    def test_backend_validates_input_shape(self, rng, tmp_path):
        full = _trained(rng, FULL_CFG)
        binparam = str(tmp_path / "binparam-mini")
        export_offload(
            full.layers[1:4],
            input_scale=full.layers[0].out_quant.scale,
            input_shape=full.layers[0].out_shape,
            directory=binparam,
        )
        backend = FabricBackend()
        section = Section("offload", {"library": "fabric.so", "weights": binparam})
        with pytest.raises(ValueError, match="exported for input"):
            backend.init(section, (3, 24, 24))

    def test_backend_validates_scale_and_dtype(self, rng, tmp_path):
        full = _trained(rng, FULL_CFG)
        binparam = str(tmp_path / "binparam-mini")
        export_offload(
            full.layers[1:4],
            input_scale=full.layers[0].out_quant.scale,
            input_shape=full.layers[0].out_shape,
            directory=binparam,
        )
        backend = FabricBackend()
        section = Section("offload", {"library": "fabric.so", "weights": binparam})
        backend.init(section, full.layers[0].out_shape)
        with pytest.raises(ValueError, match="scale"):
            backend.forward(
                FeatureMap(np.zeros(full.layers[0].out_shape, dtype=np.int32), 0.9)
            )
        with pytest.raises(ValueError, match="integer level codes"):
            backend.forward(
                FeatureMap(
                    np.zeros(full.layers[0].out_shape, dtype=np.float32),
                    full.layers[0].out_quant.scale,
                )
            )

    def test_missing_directory(self):
        backend = FabricBackend()
        section = Section("offload", {"library": "fabric.so", "weights": "/nope"})
        with pytest.raises(FileNotFoundError):
            backend.init(section, (1, 1, 1))

    def test_ops_per_frame_reaches_network_workload(self, rng, tmp_path):
        full = _trained(rng, FULL_CFG)
        binparam = str(tmp_path / "binparam-mini")
        export_offload(
            full.layers[1:4],
            input_scale=full.layers[0].out_quant.scale,
            input_shape=full.layers[0].out_shape,
            directory=binparam,
        )
        hybrid = Network.from_cfg(HYBRID_CFG_TEMPLATE.format(binparam=binparam))
        offload_ops = hybrid.layers[1].workload().ops
        hidden_conv_ops = sum(
            l.workload().ops for l in full.layers[1:4] if l.ltype == "convolutional"
        )
        assert offload_ops == hidden_conv_ops

    def test_lifecycle_destroy(self, rng, tmp_path):
        full = _trained(rng, FULL_CFG)
        binparam = str(tmp_path / "binparam-mini")
        export_offload(
            full.layers[1:4],
            input_scale=full.layers[0].out_quant.scale,
            input_shape=full.layers[0].out_shape,
            directory=binparam,
        )
        hybrid = Network.from_cfg(HYBRID_CFG_TEMPLATE.format(binparam=binparam))
        backend = hybrid.layers[1].backend
        hybrid.destroy()
        assert backend.accelerator is None


class TestExportVerification:
    def test_verify_passes_for_healthy_export(self, rng, tmp_path):
        full = _trained(rng, FULL_CFG)
        export_offload(
            full.layers[1:4],
            input_scale=full.layers[0].out_quant.scale,
            input_shape=full.layers[0].out_shape,
            directory=str(tmp_path / "ok"),
            verify=True,
        )

    def test_verify_catches_corrupted_thresholds(self, rng, tmp_path):
        """Sabotage the compiled stage before verification: must fail."""
        from repro.finn.accelerator import compile_stages
        from repro.finn.offload_backend import verify_stages

        full = _trained(rng, FULL_CFG)
        hidden = full.layers[1:4]
        scale = full.layers[0].out_quant.scale
        shape = full.layers[0].out_shape
        stages = compile_stages(hidden, scale, shape)
        stages[0].conv.mvtu.thresholds.thresholds[:, :] += 50  # sabotage
        with pytest.raises(AssertionError, match="verification failed"):
            verify_stages(stages, hidden, scale, shape)
