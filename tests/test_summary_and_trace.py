"""Network summary and pipeline-trace tests."""

import pytest

from repro.nn.network import Network
from repro.nn.summary import network_summary, summary_rows
from repro.nn.zoo import tincy_yolo_config
from repro.pipeline.scheduler import FABRIC, StageDescriptor
from repro.pipeline.simulate import PipelineSimulator
from repro.pipeline.trace import TracingSimulator


class TestSummary:
    def test_tincy_summary_rows(self):
        network = Network(tincy_yolo_config())
        rows = summary_rows(network)
        assert len(rows) == len(network.layers)
        # first row: stride-2 input conv, float/A3 regime
        assert rows[0][1] == "convolutional"
        assert "16 x 3x3/2" in rows[0][2]
        assert rows[0][5] == "A3"
        # hidden rows carry the W1A3 regime (row 1 = the first hidden conv;
        # modification (d) removed the pool that used to sit between them)
        assert rows[1][5] == "W1A3"

    def test_summary_text_contains_total(self):
        network = Network(tincy_yolo_config())
        text = network_summary(network, title="Tincy YOLO")
        assert "Tincy YOLO" in text
        assert "4,445,001,496" in text

    def test_offload_layer_summarized(self, rng, tmp_path):
        import repro.finn  # noqa: F401
        from repro.finn.offload_backend import export_offload
        from tests.test_finn_offload import FULL_CFG, HYBRID_CFG_TEMPLATE, _trained

        full = _trained(rng, FULL_CFG)
        binparam = str(tmp_path / "binparam")
        export_offload(
            full.layers[1:4],
            input_scale=full.layers[0].out_quant.scale,
            input_shape=full.layers[0].out_shape,
            directory=binparam,
        )
        hybrid = Network.from_cfg(HYBRID_CFG_TEMPLATE.format(binparam=binparam))
        rows = summary_rows(hybrid)
        offload_row = rows[1]
        assert offload_row[1] == "offload"
        assert "fabric.so" in offload_row[2]
        assert offload_row[6] > 0  # ops reported by the backend


def _stages(durations, fabric_index=None):
    return [
        StageDescriptor(
            name=f"s{i}",
            duration_s=d,
            resource=FABRIC if i == fabric_index else "cpu",
        )
        for i, d in enumerate(durations)
    ]


class TestTrace:
    def test_trace_agrees_with_fast_simulator(self):
        stages = _stages([0.01, 0.02, 0.015, 0.02], fabric_index=2)
        fast = PipelineSimulator(stages, workers=3, job_overhead_s=0.002).run(40)
        trace = TracingSimulator(stages, workers=3, job_overhead_s=0.002).run(40)
        assert trace.total_time_s == pytest.approx(fast.total_time_s, rel=1e-9)

    def test_every_frame_passes_every_stage(self):
        stages = _stages([0.01, 0.01, 0.01])
        trace = TracingSimulator(stages, workers=2, job_overhead_s=0.0).run(10)
        for frame in range(10):
            visited = sorted(
                e.stage for e in trace.entries if e.frame == frame
            )
            assert visited == [0, 1, 2]

    def test_no_worker_runs_two_jobs_at_once(self):
        stages = _stages([0.01, 0.02, 0.015])
        trace = TracingSimulator(stages, workers=4, job_overhead_s=0.001).run(30)
        for worker in range(4):
            entries = trace.worker_entries(worker)
            for earlier, later in zip(entries, entries[1:]):
                assert later.start_s >= earlier.end_s - 1e-12

    def test_fabric_jobs_never_overlap(self):
        stages = _stages([0.01, 0.02, 0.01], fabric_index=1)
        trace = TracingSimulator(stages, workers=4, job_overhead_s=0.0).run(30)
        fabric_jobs = sorted(
            (e for e in trace.entries if e.stage == 1), key=lambda e: e.start_s
        )
        for earlier, later in zip(fabric_jobs, fabric_jobs[1:]):
            assert later.start_s >= earlier.end_s - 1e-12

    def test_busy_fractions_bounded(self):
        stages = _stages([0.01] * 4)
        trace = TracingSimulator(stages, workers=2, job_overhead_s=0.0).run(20)
        for worker in range(2):
            assert 0.0 < trace.busy_fraction(worker) <= 1.0

    def test_gantt_renders(self):
        stages = _stages([0.01, 0.02, 0.015])
        trace = TracingSimulator(stages, workers=2, job_overhead_s=0.0).run(10)
        text = trace.render_gantt(width=40)
        lines = text.splitlines()
        assert len(lines) == 2
        assert all(line.startswith("worker") for line in lines)
        assert "0" in text and "1" in text  # stage glyphs appear

    def test_stage_occupancy_sums_below_one(self):
        stages = _stages([0.01, 0.02])
        trace = TracingSimulator(stages, workers=4, job_overhead_s=0.0).run(20)
        total = sum(trace.stage_occupancy().values())
        assert 0.0 < total <= 1.0 + 1e-9
