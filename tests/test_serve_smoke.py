"""Fast serving smoke test — the tier-1 CI gate for ``repro.serve``.

A few seconds end to end: full queue → batcher → worker-pool path on the
small MLP-4 network plus one ``repro serve-bench`` CLI invocation.  The
exhaustive behavioral coverage lives in test_serve_server.py; this file
is the canary that CI runs explicitly (`make serve-smoke`).
"""

import json

import numpy as np

from repro.cli import main
from repro.core.tensor import FeatureMap, FeatureMapBatch
from repro.nn import zoo
from repro.nn.network import Network
from repro.serve import InferenceServer, ServeConfig


def test_serve_round_trip_smoke(rng):
    network = Network(zoo.mlp4_config())
    network.initialize(rng)
    frames = [
        FeatureMap(rng.normal(size=network.input_shape).astype(np.float32))
        for _ in range(10)
    ]
    direct = network.forward_batch(FeatureMapBatch.from_maps(frames))
    config = ServeConfig(max_batch=4, max_delay_s=0.002, cpu_workers=2)
    with InferenceServer(network, config) as server:
        served = server.infer_many(frames, timeout_s=30)
        snapshot = server.metrics.snapshot()
    for expected, got in zip(direct.frames(), served):
        assert np.array_equal(got.data, expected.data)
    assert snapshot["completed"] == 10
    assert snapshot["shed"] == 0
    assert sum(snapshot["flush_causes"].values()) >= 2  # batched, not 1:1
    json.dumps(snapshot)  # the export path must stay JSON-safe


def test_serve_bench_cli_smoke(tmp_path, capsys):
    out = tmp_path / "BENCH_serve.json"
    code = main([
        "serve-bench", "--network", "mlp4", "--requests", "12",
        "--max-batch", "4", "--output", str(out),
    ])
    assert code == 0
    report = json.loads(out.read_text())
    assert report["scenario"] == "serve"
    assert report["network"] == "mlp4"
    assert report["serve"]["requests"] == 12
    assert report["serve"]["metrics"]["completed"] == 12
    assert "serving 12 requests" in capsys.readouterr().out
