"""Plan dataflow verifier: clean zoo plans plus a seeded-fault matrix.

Each fault class from the analyzer's contract gets one deliberately
corrupted artifact — a plan edited behind the compiler's back, a cfg
with a broken quantization chain, an offload bundle with a scrambled
threshold table — and the test asserts the verifier reports the
expected rule id (and nothing worse on the clean baseline).
"""

from dataclasses import replace

import numpy as np
import pytest

import repro.finn  # noqa: F401  (registers fabric.so)
from repro.analyze.dataflow import check_requantizer, verify_plan
from repro.analyze.findings import ERROR, WARNING
from repro.core.gemm import RequantizeParams
from repro.engine.plan import compile_plan
from repro.finn.mvtu import Folding
from repro.finn.offload_backend import export_offload
from repro.nn.network import Network
from repro.nn.zoo import cnv6_config, mlp4_config, tincy_yolo_config


def _network(config, seed=0):
    network = Network(config)
    network.initialize(np.random.default_rng(seed))
    return network


def _errors(findings):
    return [f for f in findings if f.severity == ERROR]


class TestCleanPlans:
    @pytest.mark.parametrize(
        "factory", [tincy_yolo_config, mlp4_config, cnv6_config]
    )
    def test_zoo_plans_verify_without_errors(self, factory):
        plan = compile_plan(_network(factory()))
        findings = verify_plan(plan)
        assert not _errors(findings), findings


class TestSeededFaults:
    def test_corrupted_out_shape_is_df_shape_error(self):
        plan = compile_plan(_network(mlp4_config()))
        step = plan.steps[0]
        plan.steps[0] = replace(step, out_shape=(step.out_shape[0] + 7, 1, 1))
        findings = verify_plan(plan)
        hits = [f for f in _errors(findings) if f.rule == "DF-SHAPE"]
        assert hits and step.name in hits[0].where

    def test_edge_to_missing_buffer_is_df_shape_error(self):
        plan = compile_plan(_network(mlp4_config()))
        step = plan.steps[1]
        plan.steps[1] = replace(step, inputs=(42,))
        findings = verify_plan(plan)
        assert any(
            f.rule == "DF-SHAPE" and "unknown buffer" in f.message
            for f in _errors(findings)
        )

    def test_binary_layer_on_float_map_is_flagged(self):
        network = Network.from_cfg(
            "[net]\nwidth=16\nheight=16\nchannels=3\n"
            "[convolutional]\nbatch_normalize=1\nfilters=8\nsize=3\n"
            "stride=1\npad=1\nactivation=relu\n"  # no activation_bits!
            "[convolutional]\nbatch_normalize=1\nfilters=8\nsize=3\n"
            "stride=1\npad=1\nactivation=relu\nbinary=1\n"
            "activation_bits=3\n"
        )
        network.initialize(np.random.default_rng(0))
        findings = verify_plan(compile_plan(network))
        hits = [f for f in findings if f.rule == "DF-UNQUANT-BINARY"]
        assert hits and hits[0].severity == WARNING


class TestRequantizer:
    def test_well_scaled_requantizer_is_clean(self):
        params = RequantizeParams.from_real_scale(1.0 / 64.0)
        assert check_requantizer(params, 0, 10_000) == []

    def test_escaping_interval_is_df_requant_clip(self):
        params = RequantizeParams.from_real_scale(0.1)
        findings = check_requantizer(params, 0, 10_000, where="layer 0")
        assert [f.rule for f in findings] == ["DF-REQUANT-CLIP"]
        assert findings[0].severity == WARNING
        assert findings[0].where == "layer 0"


OFFLOAD_FULL_CFG = """
[net]
width=24
height=24
channels=3

[convolutional]
batch_normalize=1
filters=8
size=3
stride=2
pad=1
activation=relu
activation_bits=3

[convolutional]
batch_normalize=1
filters=12
size=3
stride=1
pad=1
activation=relu
binary=1
activation_bits=3

[maxpool]
size=2
stride=2

[convolutional]
batch_normalize=1
filters=16
size=3
stride=1
pad=1
activation=relu
binary=1
activation_bits=3

[convolutional]
filters=10
size=1
stride=1
pad=0
activation=linear
"""

OFFLOAD_HYBRID_CFG = """
[net]
width=24
height=24
channels=3

[convolutional]
batch_normalize=1
filters=8
size=3
stride=2
pad=1
activation=relu
activation_bits=3

[offload]
library=fabric.so
network=hidden.cfg
weights={binparam}
height=6
width=6
channel=16

[convolutional]
filters=10
size=1
stride=1
pad=0
activation=linear
"""


def _hybrid_network(rng, tmp_path):
    full = Network.from_cfg(OFFLOAD_FULL_CFG)
    full.initialize(rng)
    for layer in full.layers:
        if layer.ltype != "convolutional":
            continue
        n = layer.filters
        layer.biases = rng.normal(size=n).astype(np.float32)
        if layer.batch_normalize:
            layer.scales = rng.uniform(0.5, 2.0, size=n).astype(np.float32)
            layer.rolling_mean = (rng.normal(size=n) * 0.5).astype(np.float32)
            layer.rolling_var = rng.uniform(0.5, 2.0, size=n).astype(np.float32)
    binparam = str(tmp_path / "binparam-analyze")
    export_offload(
        full.layers[1:4],
        input_scale=full.layers[0].out_quant.scale,
        input_shape=full.layers[0].out_shape,
        directory=binparam,
        folding=Folding(4, 4),
    )
    hybrid = Network.from_cfg(OFFLOAD_HYBRID_CFG.format(binparam=binparam))
    hybrid.initialize(np.random.default_rng(7))
    return hybrid


class TestOffloadDataflow:
    def test_exported_bundle_verifies_clean(self, rng, tmp_path):
        hybrid = _hybrid_network(rng, tmp_path)
        findings = verify_plan(compile_plan(hybrid))
        assert not _errors(findings), findings

    def test_scrambled_threshold_table_is_monotone_error(self, rng, tmp_path):
        hybrid = _hybrid_network(rng, tmp_path)
        offload = next(l for l in hybrid.layers if l.ltype == "offload")
        table = offload.backend.accelerator.stages[0].conv.mvtu.thresholds
        spans = table.thresholds.max(axis=1) - table.thresholds.min(axis=1)
        channel = int(np.argmax(spans))  # a channel whose values vary
        first = table.thresholds[channel, 0].copy()
        table.thresholds[channel, 0] = table.thresholds[channel, -1]
        table.thresholds[channel, -1] = first
        findings = verify_plan(compile_plan(hybrid))
        hits = [f for f in _errors(findings) if f.rule == "DF-THRESH-MONOTONE"]
        assert hits, findings

    def test_mismatched_export_scale_is_scale_chain_error(self, rng, tmp_path):
        hybrid = _hybrid_network(rng, tmp_path)
        offload = next(l for l in hybrid.layers if l.ltype == "offload")
        offload.backend._meta["input_scale"] *= 2.0
        findings = verify_plan(compile_plan(hybrid))
        assert any(
            f.rule == "DF-SCALE-CHAIN" for f in _errors(findings)
        ), findings
