"""Failure-injection tests: corrupted artifacts and misuse must fail loudly.

"Errors should never pass silently" — these tests poke corrupted weight
files, mangled binparam bundles, mismatched offload declarations and
mid-pipeline crashes, asserting that every one surfaces as a clear error
rather than silently wrong numbers.
"""

import json
import os

import numpy as np
import pytest

import repro.finn  # noqa: F401
from repro.core.tensor import FeatureMap
from repro.finn.offload_backend import FabricBackend, export_offload
from repro.nn.config import Section
from repro.nn.network import Network
from repro.nn.weights import load_binparam, load_weights, save_binparam, save_weights

SMALL_CFG = """
[net]
width=16
height=16
channels=3

[convolutional]
batch_normalize=1
filters=8
size=3
stride=2
pad=1
activation=relu
activation_bits=3

[convolutional]
batch_normalize=1
filters=8
size=3
stride=1
pad=1
activation=relu
binary=1
activation_bits=3
"""


@pytest.fixture
def exported_bundle(rng, tmp_path):
    network = Network.from_cfg(SMALL_CFG)
    network.initialize(rng)
    for layer in network.layers:
        layer.scales = rng.uniform(0.5, 2.0, size=8).astype(np.float32)
        layer.rolling_var = rng.uniform(0.5, 2.0, size=8).astype(np.float32)
    directory = str(tmp_path / "binparam")
    export_offload(
        network.layers[1:2],
        input_scale=network.layers[0].out_quant.scale,
        input_shape=network.layers[0].out_shape,
        directory=directory,
    )
    return network, directory


class TestCorruptedWeights:
    def test_truncated_payload(self, rng, tmp_path):
        network = Network.from_cfg(SMALL_CFG)
        network.initialize(rng)
        path = str(tmp_path / "net.weights")
        save_weights(network, path)
        blob = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(blob[: len(blob) // 2])
        # Depending on where the cut lands this is either a stream underrun
        # or a misaligned payload — both must be loud.
        with pytest.raises((EOFError, ValueError), match="exhausted|aligned"):
            load_weights(Network.from_cfg(SMALL_CFG), path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.weights"
        path.write_bytes(b"")
        with pytest.raises(ValueError, match="truncated"):
            load_weights(Network.from_cfg(SMALL_CFG), str(path))


class TestCorruptedBinparam:
    def test_missing_manifest(self, exported_bundle):
        _, directory = exported_bundle
        os.remove(os.path.join(directory, "manifest.json"))
        with pytest.raises(FileNotFoundError):
            load_binparam(directory)

    def test_wrong_format_marker(self, exported_bundle):
        _, directory = exported_bundle
        manifest_path = os.path.join(directory, "manifest.json")
        manifest = json.load(open(manifest_path))
        manifest["format"] = "something-else"
        json.dump(manifest, open(manifest_path, "w"))
        with pytest.raises(ValueError, match="binparam"):
            load_binparam(directory)

    def test_missing_array_file(self, exported_bundle):
        _, directory = exported_bundle
        victims = [f for f in os.listdir(directory) if f.endswith("-weights.npy")]
        os.remove(os.path.join(directory, victims[0]))
        with pytest.raises(FileNotFoundError):
            load_binparam(directory)

    def test_tampered_threshold_shape_detected(self, exported_bundle):
        network, directory = exported_bundle
        # Replace thresholds with a wrong-width array: ThresholdActivation
        # validation must reject it at backend build time.
        path = os.path.join(directory, "stage00-thresholds.npy")
        np.save(path, np.zeros((8, 3), dtype=np.int64))  # 3 != 7 for 3 bits
        backend = FabricBackend()
        section = Section("offload", {"library": "fabric.so", "weights": directory})
        with pytest.raises(ValueError, match="thresholds"):
            backend.init(section, network.layers[0].out_shape)

    def test_tampered_weights_detected(self, exported_bundle):
        network, directory = exported_bundle
        path = os.path.join(directory, "stage00-weights.npy")
        corrupt = np.load(path)
        corrupt[0, 0] = 3  # not a {-1,+1} weight
        np.save(path, corrupt)
        backend = FabricBackend()
        section = Section("offload", {"library": "fabric.so", "weights": directory})
        with pytest.raises(ValueError, match="binary"):
            backend.init(section, network.layers[0].out_shape)


class TestPipelineCrashes:
    def test_crash_in_middle_stage_propagates(self):
        from repro.pipeline.scheduler import StageDescriptor
        from repro.pipeline.workers import ThreadedPipeline

        def boom(payload):
            if payload == 3:
                raise ValueError("frame 3 is cursed")
            return payload

        stages = [
            StageDescriptor("pass", work=lambda x: x),
            StageDescriptor("boom", work=boom),
            StageDescriptor("pass2", work=lambda x: x),
        ]
        with pytest.raises(ValueError, match="cursed"):
            ThreadedPipeline(stages, workers=4).process(range(8))

    def test_crash_does_not_hang_workers(self):
        """The pool must terminate (join) even when a stage dies early."""
        import time

        from repro.pipeline.scheduler import StageDescriptor
        from repro.pipeline.workers import ThreadedPipeline

        def boom(payload):
            raise RuntimeError("immediate")

        stages = [StageDescriptor("boom", work=boom)]
        start = time.time()
        with pytest.raises(RuntimeError):
            ThreadedPipeline(stages, workers=4).process(range(100))
        assert time.time() - start < 10.0


class TestMisuse:
    def test_network_with_offload_but_no_finn_import(self, tmp_path):
        """A helpful LookupError, not an AttributeError, for unknown libs."""
        cfg = (
            "[net]\nwidth=8\nheight=8\nchannels=1\n"
            "[offload]\nlibrary=not-registered.so\nnetwork=x\nweights=x\n"
            "height=8\nwidth=8\nchannel=1\n"
        )
        with pytest.raises(LookupError, match="not-registered.so"):
            Network.from_cfg(cfg)

    def test_feature_map_must_be_3d(self):
        with pytest.raises(ValueError, match=r"\(C, H, W\)"):
            FeatureMap(np.zeros((4, 4)))

    def test_save_binparam_roundtrip_meta(self, tmp_path):
        directory = str(tmp_path / "bundle")
        save_binparam(directory, {"a": np.arange(4)}, meta={"k": 1})
        arrays, meta = load_binparam(directory)
        assert np.array_equal(arrays["a"], np.arange(4))
        assert meta == {"k": 1}
