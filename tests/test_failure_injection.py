"""Failure-injection tests: corrupted artifacts and misuse must fail loudly.

"Errors should never pass silently" — these tests poke corrupted weight
files, mangled binparam bundles, mismatched offload declarations and
mid-pipeline crashes, asserting that every one surfaces as a clear error
rather than silently wrong numbers.

*Runtime* failures are injected through the production seams of
:mod:`repro.faults` (never by monkeypatching internals): the same
``FaultPlan``/``install`` machinery the fault matrix and ``repro
serve-bench --faults`` use, exercised here against the raw network,
engine and demo paths below the serving stack.
"""

import json
import os

import numpy as np
import pytest

import repro.finn  # noqa: F401
from repro import faults
from repro.core.tensor import FeatureMap, FeatureMapBatch
from repro.engine import Executor
from repro.finn.offload_backend import FabricBackend, export_offload
from repro.nn.config import Section
from repro.nn.network import Network
from repro.nn.weights import load_binparam, load_weights, save_binparam, save_weights
from repro.pipeline.demo import run_demo
from repro.video.sink import CollectingSink
from repro.video.source import SyntheticCamera

SMALL_CFG = """
[net]
width=16
height=16
channels=3

[convolutional]
batch_normalize=1
filters=8
size=3
stride=2
pad=1
activation=relu
activation_bits=3

[convolutional]
batch_normalize=1
filters=8
size=3
stride=1
pad=1
activation=relu
binary=1
activation_bits=3
"""


@pytest.fixture
def exported_bundle(rng, tmp_path):
    network = Network.from_cfg(SMALL_CFG)
    network.initialize(rng)
    for layer in network.layers:
        layer.scales = rng.uniform(0.5, 2.0, size=8).astype(np.float32)
        layer.rolling_var = rng.uniform(0.5, 2.0, size=8).astype(np.float32)
    directory = str(tmp_path / "binparam")
    export_offload(
        network.layers[1:2],
        input_scale=network.layers[0].out_quant.scale,
        input_shape=network.layers[0].out_shape,
        directory=directory,
    )
    return network, directory


HYBRID_DEMO_CFG = """
[net]
width=16
height=16
channels=3

[convolutional]
batch_normalize=1
filters=8
size=3
stride=2
pad=1
activation=relu
activation_bits=3

[offload]
library=fabric.so
network=hidden.cfg
weights={binparam}
height=8
width=8
channel=8

[convolutional]
filters=125
size=1
stride=1
pad=0
activation=linear

[region]
classes=20
num=5
"""


@pytest.fixture
def small_hybrid(exported_bundle, rng):
    """CPU -> fabric -> CPU -> region mini network over the exported bundle."""
    network, directory = exported_bundle
    hybrid = Network.from_cfg(HYBRID_DEMO_CFG.format(binparam=directory))
    hybrid.initialize(rng)
    src, dst = network.layers[0], hybrid.layers[0]
    dst.weights = src.weights.copy()
    dst.biases = src.biases.copy()
    dst.scales = src.scales.copy()
    dst.rolling_mean = src.rolling_mean.copy()
    dst.rolling_var = src.rolling_var.copy()
    hybrid.layers[1].backend.load_weights()
    return hybrid


class TestCorruptedWeights:
    def test_truncated_payload(self, rng, tmp_path):
        network = Network.from_cfg(SMALL_CFG)
        network.initialize(rng)
        path = str(tmp_path / "net.weights")
        save_weights(network, path)
        blob = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(blob[: len(blob) // 2])
        # Depending on where the cut lands this is either a stream underrun
        # or a misaligned payload — both must be loud.
        with pytest.raises((EOFError, ValueError), match="exhausted|aligned"):
            load_weights(Network.from_cfg(SMALL_CFG), path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.weights"
        path.write_bytes(b"")
        with pytest.raises(ValueError, match="truncated"):
            load_weights(Network.from_cfg(SMALL_CFG), str(path))


class TestCorruptedBinparam:
    def test_missing_manifest(self, exported_bundle):
        _, directory = exported_bundle
        os.remove(os.path.join(directory, "manifest.json"))
        with pytest.raises(FileNotFoundError):
            load_binparam(directory)

    def test_wrong_format_marker(self, exported_bundle):
        _, directory = exported_bundle
        manifest_path = os.path.join(directory, "manifest.json")
        manifest = json.load(open(manifest_path))
        manifest["format"] = "something-else"
        json.dump(manifest, open(manifest_path, "w"))
        with pytest.raises(ValueError, match="binparam"):
            load_binparam(directory)

    def test_missing_array_file(self, exported_bundle):
        _, directory = exported_bundle
        victims = [f for f in os.listdir(directory) if f.endswith("-weights.npy")]
        os.remove(os.path.join(directory, victims[0]))
        with pytest.raises(FileNotFoundError):
            load_binparam(directory)

    def test_tampered_threshold_shape_detected(self, exported_bundle):
        network, directory = exported_bundle
        # Replace thresholds with a wrong-width array: ThresholdActivation
        # validation must reject it at backend build time.
        path = os.path.join(directory, "stage00-thresholds.npy")
        np.save(path, np.zeros((8, 3), dtype=np.int64))  # 3 != 7 for 3 bits
        backend = FabricBackend()
        section = Section("offload", {"library": "fabric.so", "weights": directory})
        with pytest.raises(ValueError, match="thresholds"):
            backend.init(section, network.layers[0].out_shape)

    def test_tampered_weights_detected(self, exported_bundle):
        network, directory = exported_bundle
        path = os.path.join(directory, "stage00-weights.npy")
        corrupt = np.load(path)
        corrupt[0, 0] = 3  # not a {-1,+1} weight
        np.save(path, corrupt)
        backend = FabricBackend()
        section = Section("offload", {"library": "fabric.so", "weights": directory})
        with pytest.raises(ValueError, match="binary"):
            backend.init(section, network.layers[0].out_shape)


class TestPipelineCrashes:
    def test_crash_in_middle_stage_propagates(self):
        from repro.pipeline.scheduler import StageDescriptor
        from repro.pipeline.workers import ThreadedPipeline

        def boom(payload):
            if payload == 3:
                raise ValueError("frame 3 is cursed")
            return payload

        stages = [
            StageDescriptor("pass", work=lambda x: x),
            StageDescriptor("boom", work=boom),
            StageDescriptor("pass2", work=lambda x: x),
        ]
        with pytest.raises(ValueError, match="cursed"):
            ThreadedPipeline(stages, workers=4).process(range(8))

    def test_crash_does_not_hang_workers(self):
        """The pool must terminate (join) even when a stage dies early."""
        import time

        from repro.pipeline.scheduler import StageDescriptor
        from repro.pipeline.workers import ThreadedPipeline

        def boom(payload):
            raise RuntimeError("immediate")

        stages = [StageDescriptor("boom", work=boom)]
        start = time.time()
        with pytest.raises(RuntimeError):
            ThreadedPipeline(stages, workers=4).process(range(100))
        assert time.time() - start < 10.0


class TestMisuse:
    def test_network_with_offload_but_no_finn_import(self, tmp_path):
        """A helpful LookupError, not an AttributeError, for unknown libs."""
        cfg = (
            "[net]\nwidth=8\nheight=8\nchannels=1\n"
            "[offload]\nlibrary=not-registered.so\nnetwork=x\nweights=x\n"
            "height=8\nwidth=8\nchannel=1\n"
        )
        with pytest.raises(LookupError, match="not-registered.so"):
            Network.from_cfg(cfg)

    def test_feature_map_must_be_3d(self):
        with pytest.raises(ValueError, match=r"\(C, H, W\)"):
            FeatureMap(np.zeros((4, 4)))

    def test_save_binparam_roundtrip_meta(self, tmp_path):
        directory = str(tmp_path / "bundle")
        save_binparam(directory, {"a": np.arange(4)}, meta={"k": 1})
        arrays, meta = load_binparam(directory)
        assert np.array_equal(arrays["a"], np.arange(4))
        assert meta == {"k": 1}


class TestInjectedRuntimeFaults:
    """Runtime faults, routed through the ``repro.faults`` seams."""

    def test_injected_backend_fault_fails_loudly(self, small_hybrid, rng):
        frame = FeatureMap(
            rng.uniform(0, 1, size=(3, 16, 16)).astype(np.float32)
        )
        plan = faults.FaultPlan.parse("fabric-raise/fabric.backend@0")
        with faults.install(plan) as injector:
            with pytest.raises(faults.FabricFault):
                small_hybrid.forward(frame)
            assert injector.events() == [
                (faults.FABRIC_BACKEND, faults.FABRIC_RAISE, 0, "")
            ]
        # With the plan gone the same call succeeds untouched.
        assert small_hybrid.forward(frame).shape == (125, 8, 8)

    def test_scrub_catches_injected_corruption(self, small_hybrid, rng):
        batch = FeatureMapBatch.from_maps(
            [
                FeatureMap(rng.uniform(0, 1, size=(3, 16, 16)).astype(np.float32))
                for _ in range(2)
            ]
        )
        executor = Executor(small_hybrid.plan())
        plan = faults.FaultPlan.parse("fabric-corrupt@0", seed=5)
        with faults.install(plan):
            with pytest.raises(faults.FabricCorruption):
                executor.run(batch, fabric_mode="scrub")
        # Without the scrub cross-check the corruption *would* be silent:
        # that is exactly why the serving stack can opt into scrub mode.
        with faults.install(plan):
            corrupted = executor.run(batch, fabric_mode="fabric")
        clean = executor.run(batch, fabric_mode="fabric")
        assert not np.array_equal(corrupted.data, clean.data)

    def test_reference_path_bypasses_fault_seams(self, small_hybrid, rng):
        batch = FeatureMapBatch.from_maps(
            [FeatureMap(rng.uniform(0, 1, size=(3, 16, 16)).astype(np.float32))]
        )
        clean = small_hybrid.forward_batch(batch)
        executor = Executor(small_hybrid.plan())
        # Every fabric invocation would fail — the reference path must not
        # even consult the seams (it is the degraded route of last resort).
        plan = faults.FaultPlan.parse(
            "fabric-raise%1.0;fabric-raise/fabric.backend%1.0", seed=1
        )
        with faults.install(plan) as injector:
            out = executor.run(batch, fabric_mode="reference")
            assert injector.events() == []
        assert out.scale == clean.scale
        assert np.array_equal(out.data, clean.data)

    def test_demo_degrades_and_banners_on_injected_fault(self, small_hybrid):
        def run(plan_spec):
            camera = SyntheticCamera(seed=5, height=24, width=32)
            sink = CollectingSink()
            if plan_spec is None:
                return run_demo(
                    small_hybrid, camera, sink, n_frames=2, workers=1,
                    detection_threshold=0.0,
                )
            with faults.install(faults.FaultPlan.parse(plan_spec)):
                return run_demo(
                    small_hybrid, camera, sink, n_frames=2, workers=1,
                    detection_threshold=0.0,
                )

        clean = run(None)
        faulted = run("fabric-raise/fabric.backend@0")
        # Frame 0 hit the injected fault and fell back; frame 1 did not.
        assert faulted[0].degraded and not faulted[1].degraded
        # Degraded output is bit-identical — only the banner differs.
        for got, want in zip(faulted, clean):
            assert np.array_equal(got.fm.data, want.fm.data)
            assert got.detections == want.detections
        banner = faulted[0].annotated
        assert np.all(banner[0, 0, :] == 1.0)  # top row: pure red
        assert np.all(banner[1:, 0, :] == 0.0)
        assert np.array_equal(faulted[1].annotated, clean[1].annotated)
