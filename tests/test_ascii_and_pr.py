"""ASCII renderer and PR-curve tests."""

import numpy as np
import pytest

from repro.eval.boxes import Box, Detection, GroundTruth
from repro.eval.metrics import ImageEval, evaluate_map
from repro.eval.pr import pr_curves, render_pr_table
from repro.video.ascii_art import RAMP, frame_to_ascii


class TestAsciiRenderer:
    def test_geometry_and_aspect(self):
        image = np.zeros((3, 60, 120), dtype=np.float32)
        text = frame_to_ascii(image, width=40)
        lines = text.splitlines()
        assert all(len(line) == 40 for line in lines)
        assert len(lines) == 10  # 40 * (60/120) / 2

    def test_dark_frame_is_spaces_bright_is_dense(self):
        dark = frame_to_ascii(np.zeros((3, 8, 16), dtype=np.float32), width=16)
        assert set(dark) <= {" ", "\n"}
        bright = frame_to_ascii(np.ones((3, 8, 16), dtype=np.float32), width=16)
        assert RAMP[-1] in bright
        assert " " not in bright.replace("\n", "")

    def test_gradient_uses_ramp_order(self):
        image = np.tile(
            np.linspace(0, 1, 64, dtype=np.float32), (3, 8, 1)
        )
        text = frame_to_ascii(image, width=64).splitlines()[0]
        first, last = text[0], text[-1]
        assert RAMP.index(first) < RAMP.index(last)

    def test_detection_box_drawn(self):
        image = np.full((3, 32, 64), 0.2, dtype=np.float32)
        det = Detection(Box(0.5, 0.5, 0.5, 0.5), class_id=7, score=0.9)
        text = frame_to_ascii(image, width=64, detections=[det])
        assert "+" in text
        assert "|" in text and "-" in text
        assert "7" in text  # class label on the top edge

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError, match="3, H, W"):
            frame_to_ascii(np.zeros((1, 8, 8)))


def _image(dets, truths):
    return ImageEval(detections=dets, truths=truths)


class TestPRCurves:
    def _make_images(self):
        box = Box(0.5, 0.5, 0.2, 0.2)
        far = Box(0.1, 0.1, 0.08, 0.08)
        return [
            _image(
                [Detection(box, 0, 0.9), Detection(far, 0, 0.4)],
                [GroundTruth(0, box), GroundTruth(0, far)],
            ),
            _image(
                [Detection(box, 0, 0.8)],
                [GroundTruth(0, box)],
            ),
        ]

    def test_curve_shape_and_ap_consistency(self):
        images = self._make_images()
        curves = pr_curves(images, n_classes=2)
        assert list(curves) == [0]
        curve = curves[0]
        assert curve.n_truth == 3
        assert curve.recall.size == 3  # three detections
        # perfect detector here: AP matches evaluate_map
        result = evaluate_map(images, n_classes=2)
        assert curve.ap_11pt * 100 == pytest.approx(result.map_percent)

    def test_max_recall_reflects_misses(self):
        box = Box(0.5, 0.5, 0.2, 0.2)
        images = [
            _image([Detection(box, 0, 0.9)], [GroundTruth(0, box)]),
            _image([], [GroundTruth(0, box)]),
        ]
        curve = pr_curves(images, n_classes=1)[0]
        assert curve.max_recall == pytest.approx(0.5)

    def test_precision_at_recall(self):
        box = Box(0.5, 0.5, 0.2, 0.2)
        far = Box(0.1, 0.1, 0.08, 0.08)
        images = [
            _image(
                [Detection(box, 0, 0.9), Detection(far, 0, 0.8)],
                [GroundTruth(0, box)],
            )
        ]
        curve = pr_curves(images, n_classes=1)[0]
        assert curve.precision_at_recall(1.0) == pytest.approx(1.0)
        assert curve.precision_at_recall(0.0) == pytest.approx(1.0)

    def test_render_table(self):
        curves = pr_curves(self._make_images(), n_classes=2)
        rows = render_pr_table(curves, class_names=["red-square", "other"])
        assert rows[0][0] == "red-square"
        assert rows[0][5] == 3
