"""Boxes / NMS / mAP tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.shapes import GroundTruth
from repro.eval.boxes import Box, Detection, iou, nms
from repro.eval.metrics import (
    ImageEval,
    average_precision_11pt,
    average_precision_area,
    evaluate_map,
)


class TestIoU:
    def test_identical_boxes(self):
        box = Box(0.5, 0.5, 0.2, 0.2)
        assert iou(box, box) == pytest.approx(1.0)

    def test_disjoint_boxes(self):
        assert iou(Box(0.1, 0.1, 0.1, 0.1), Box(0.9, 0.9, 0.1, 0.1)) == 0.0

    def test_half_overlap(self):
        a = Box(0.25, 0.5, 0.5, 0.5)
        b = Box(0.5, 0.5, 0.5, 0.5)
        # intersection .25 x .5 = .125; union .5 - .125 = .375
        assert iou(a, b) == pytest.approx(0.125 / 0.375)

    def test_symmetry(self, rng):
        for _ in range(20):
            a = Box(*rng.uniform(0.1, 0.9, size=2), *rng.uniform(0.05, 0.5, size=2))
            b = Box(*rng.uniform(0.1, 0.9, size=2), *rng.uniform(0.05, 0.5, size=2))
            assert iou(a, b) == pytest.approx(iou(b, a))

    @given(
        x=st.floats(0.2, 0.8), y=st.floats(0.2, 0.8),
        w=st.floats(0.05, 0.4), h=st.floats(0.05, 0.4),
    )
    @settings(max_examples=50, deadline=None)
    def test_bounded(self, x, y, w, h):
        a = Box(x, y, w, h)
        b = Box(0.5, 0.5, 0.3, 0.3)
        assert 0.0 <= iou(a, b) <= 1.0


class TestNMS:
    def test_suppresses_overlapping_same_class(self):
        dets = [
            Detection(Box(0.5, 0.5, 0.3, 0.3), 0, 0.9),
            Detection(Box(0.51, 0.5, 0.3, 0.3), 0, 0.8),
            Detection(Box(0.9, 0.9, 0.1, 0.1), 0, 0.7),
        ]
        kept = nms(dets, iou_threshold=0.45)
        assert len(kept) == 2
        assert kept[0].score == 0.9

    def test_keeps_overlapping_different_classes(self):
        dets = [
            Detection(Box(0.5, 0.5, 0.3, 0.3), 0, 0.9),
            Detection(Box(0.5, 0.5, 0.3, 0.3), 1, 0.8),
        ]
        assert len(nms(dets)) == 2

    def test_sorted_output(self):
        dets = [
            Detection(Box(0.2, 0.2, 0.1, 0.1), 0, 0.5),
            Detection(Box(0.8, 0.8, 0.1, 0.1), 1, 0.9),
        ]
        kept = nms(dets)
        assert [d.score for d in kept] == [0.9, 0.5]

    def test_empty(self):
        assert nms([]) == []


class TestAveragePrecision:
    def test_perfect_detector(self):
        precision = np.array([1.0, 1.0, 1.0])
        recall = np.array([1 / 3, 2 / 3, 1.0])
        assert average_precision_11pt(precision, recall) == pytest.approx(1.0)
        assert average_precision_area(precision, recall) == pytest.approx(1.0)

    def test_empty_inputs(self):
        assert average_precision_11pt(np.array([]), np.array([])) == 0.0
        assert average_precision_area(np.array([]), np.array([])) == 0.0

    def test_half_recall(self):
        precision = np.array([1.0])
        recall = np.array([0.5])
        # 11pt: points 0.0 .. 0.5 see precision 1, the rest 0 -> 6/11
        assert average_precision_11pt(precision, recall) == pytest.approx(6 / 11)
        assert average_precision_area(precision, recall) == pytest.approx(0.5)


def _image(dets, truths):
    return ImageEval(detections=dets, truths=truths)


class TestEvaluateMap:
    def test_perfect_detections(self):
        truth_box = Box(0.5, 0.5, 0.2, 0.2)
        images = [
            _image(
                [Detection(truth_box, 0, 0.9)],
                [GroundTruth(0, truth_box)],
            )
        ]
        result = evaluate_map(images, n_classes=2)
        assert result.map_percent == pytest.approx(100.0)

    def test_misses_halve_map(self):
        box = Box(0.5, 0.5, 0.2, 0.2)
        images = [
            _image([Detection(box, 0, 0.9)], [GroundTruth(0, box)]),
            _image([], [GroundTruth(0, box)]),
        ]
        result = evaluate_map(images, n_classes=1)
        assert 40.0 < result.map_percent < 60.0

    def test_duplicates_are_false_positives(self):
        box = Box(0.5, 0.5, 0.2, 0.2)
        images = [
            _image(
                [Detection(box, 0, 0.9), Detection(box, 0, 0.8)],
                [GroundTruth(0, box)],
            )
        ]
        result = evaluate_map(images, n_classes=1, method="area")
        assert result.map_percent == pytest.approx(100.0)
        # ... but precision drops, visible at lower score threshold in 11pt:
        result_11 = evaluate_map(images, n_classes=1)
        assert result_11.map_percent == pytest.approx(100.0)

    def test_wrong_class_scores_zero(self):
        box = Box(0.5, 0.5, 0.2, 0.2)
        images = [_image([Detection(box, 1, 0.9)], [GroundTruth(0, box)])]
        result = evaluate_map(images, n_classes=2)
        assert result.map_percent == 0.0

    def test_low_iou_rejected(self):
        images = [
            _image(
                [Detection(Box(0.2, 0.2, 0.1, 0.1), 0, 0.9)],
                [GroundTruth(0, Box(0.7, 0.7, 0.1, 0.1))],
            )
        ]
        assert evaluate_map(images, n_classes=1).map_percent == 0.0

    def test_absent_classes_skipped(self):
        box = Box(0.5, 0.5, 0.2, 0.2)
        images = [_image([Detection(box, 0, 0.9)], [GroundTruth(0, box)])]
        result = evaluate_map(images, n_classes=20)
        assert list(result.per_class_ap) == [0]
        assert result.map_percent == pytest.approx(100.0)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="method"):
            evaluate_map([], n_classes=1, method="fancy")

    def test_score_ordering_matters(self):
        """A high-scoring FP before the TP lowers 11pt AP."""
        box = Box(0.5, 0.5, 0.2, 0.2)
        far = Box(0.1, 0.1, 0.05, 0.05)
        good_first = [_image(
            [Detection(box, 0, 0.9), Detection(far, 0, 0.3)],
            [GroundTruth(0, box)],
        )]
        bad_first = [_image(
            [Detection(box, 0, 0.3), Detection(far, 0, 0.9)],
            [GroundTruth(0, box)],
        )]
        ap_good = evaluate_map(good_first, n_classes=1).map_percent
        ap_bad = evaluate_map(bad_first, n_classes=1).map_percent
        assert ap_good > ap_bad
