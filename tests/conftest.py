"""Shared fixtures for the test suite."""

import numpy as np
import pytest


@pytest.fixture(autouse=True)
def strict_float_errors():
    """Escalate silent numpy float anomalies to errors for every test.

    Overflow, invalid operations and divide-by-zero in the emulation are
    bugs, not noise — the quantized kernels are supposed to stay inside
    their integer ranges by construction.  Note ``np.errstate`` is
    thread-local: worker threads spawned by serve/pipeline tests run with
    numpy defaults, which is fine — their results flow back to the
    asserting (main) thread.
    """
    with np.errstate(over="raise", invalid="raise", divide="raise"):
        yield


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(20180621)  # arXiv submission date of the paper
