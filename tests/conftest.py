"""Shared fixtures for the test suite."""

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(20180621)  # arXiv submission date of the paper
