"""Shared fixtures and the test-tier harness (docs/TESTING.md).

Three tiers: ``unit`` (fast, wall-clock free — the default, auto-applied
to every test without an explicit tier), ``integration`` (multi-component
paths that may touch real time) and ``slow`` (full-scale smoke runs).
``make test-fast`` runs the unit tier only.

The unit tier is kept honest by the sleep guard below: any single
``time.sleep`` call above :data:`UNIT_SLEEP_BUDGET_S` fails the test at
teardown.  Timing-dependent code takes an injectable clock
(:class:`repro.util.clock.VirtualClock`) instead of really sleeping.
"""

import time

import numpy as np
import pytest

#: The unit tier's per-call sleep budget (seconds); see docs/TESTING.md.
UNIT_SLEEP_BUDGET_S = 0.05


def pytest_collection_modifyitems(config, items):
    """Every test without an explicit tier marker is a unit test."""
    for item in items:
        if not any(
            item.get_closest_marker(name) for name in ("integration", "slow")
        ):
            item.add_marker(pytest.mark.unit)


@pytest.fixture(autouse=True)
def strict_float_errors():
    """Escalate silent numpy float anomalies to errors for every test.

    Overflow, invalid operations and divide-by-zero in the emulation are
    bugs, not noise — the quantized kernels are supposed to stay inside
    their integer ranges by construction.  Note ``np.errstate`` is
    thread-local: worker threads spawned by serve/pipeline tests run with
    numpy defaults, which is fine — their results flow back to the
    asserting (main) thread.
    """
    with np.errstate(over="raise", invalid="raise", divide="raise"):
        yield


@pytest.fixture(autouse=True)
def unit_sleep_guard(request):
    """Fail any unit-tier test that really sleeps past the budget.

    ``time.sleep`` is wrapped for the duration of the test; a call above
    :data:`UNIT_SLEEP_BUDGET_S` is recorded (and skipped, so one bad call
    cannot stall the fast tier) and the test fails at teardown listing the
    offending durations.  Violations are recorded rather than raised
    because worker threads may sleep too — an exception on a worker
    thread would vanish instead of failing the test.  Integration/slow
    tests are exempt.
    """
    if request.node.get_closest_marker("unit") is None:
        yield
        return
    violations = []
    real_sleep = time.sleep

    def guarded_sleep(seconds):
        if seconds > UNIT_SLEEP_BUDGET_S:
            violations.append(float(seconds))
            return  # skipped: the fast tier never pays for the mistake
        real_sleep(seconds)

    time.sleep = guarded_sleep
    try:
        yield
    finally:
        time.sleep = real_sleep
    if violations:
        listed = ", ".join(f"{s:g}s" for s in violations)
        pytest.fail(
            f"unit-tier test called time.sleep beyond the "
            f"{UNIT_SLEEP_BUDGET_S:g}s budget: {listed} — inject a "
            f"VirtualClock (repro.util.clock) or mark the test "
            f"integration/slow",
            pytrace=False,
        )


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(20180621)  # arXiv submission date of the paper


@pytest.fixture
def virtual_clock():
    """A fresh :class:`~repro.util.clock.VirtualClock` starting at 0."""
    from repro.util.clock import VirtualClock

    return VirtualClock()
