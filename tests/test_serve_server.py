"""InferenceServer integration: correctness, overload, fabric serialization.

The acceptance invariants of the serving subsystem:

* every accepted request's result is bit-identical to calling
  ``Network.forward_batch`` directly (pinned on the Tincy YOLO zoo
  network);
* the bounded queue sheds beyond its limit with a typed ``Overloaded``
  error, the shed count lands in the metrics, and accepted requests still
  complete correctly;
* at most one FINN-offload execution is ever in flight (the fabric is a
  serialized resource).
"""

import threading

import numpy as np
import pytest

import repro.finn  # noqa: F401  (registers fabric.so for offload cfgs)
from repro.core.tensor import FeatureMap, FeatureMapBatch
from repro.finn.mvtu import Folding
from repro.finn.offload_backend import export_offload
from repro.nn import zoo
from repro.nn.network import Network
from repro.pipeline.scheduler import CPU, FABRIC
from repro.serve import (
    InferenceServer,
    Overloaded,
    RequestCancelled,
    RequestTimeout,
    ServeConfig,
    ServerClosed,
)


def _frames(rng, shape, count):
    return [
        FeatureMap(rng.normal(size=shape).astype(np.float32))
        for _ in range(count)
    ]


def _mlp4(rng):
    network = Network(zoo.mlp4_config())
    network.initialize(rng)
    return network


def _hybrid_offload_network(rng, tmp_path):
    """The mini CPU->fabric->CPU network of the Fig. 4 export tests."""
    from tests.test_finn_offload import FULL_CFG, HYBRID_CFG_TEMPLATE, _trained

    full = _trained(rng, FULL_CFG)
    binparam = str(tmp_path / "binparam-mini")
    export_offload(
        full.layers[1:4],
        input_scale=full.layers[0].out_quant.scale,
        input_shape=full.layers[0].out_shape,
        directory=binparam,
        folding=Folding(4, 4),
    )
    hybrid = Network.from_cfg(HYBRID_CFG_TEMPLATE.format(binparam=binparam))
    for src_index, dst_index in ((0, 0), (4, 2)):
        src, dst = full.layers[src_index], hybrid.layers[dst_index]
        dst.weights = src.weights.copy()
        dst.biases = src.biases.copy()
        if src.batch_normalize:
            dst.scales = src.scales.copy()
            dst.rolling_mean = src.rolling_mean.copy()
            dst.rolling_var = src.rolling_var.copy()
    hybrid.layers[1].backend.load_weights()
    return hybrid


def _assert_served_matches_direct(network, frames, config):
    direct = network.forward_batch(FeatureMapBatch.from_maps(frames))
    with InferenceServer(network, config) as server:
        served = server.infer_many(frames, timeout_s=60)
    assert len(served) == len(frames)
    for expected, got in zip(direct.frames(), served):
        assert got.scale == expected.scale
        assert np.array_equal(got.data, expected.data)


class TestServedResultsBitIdentical:
    def test_mlp4_served_matches_direct(self, rng):
        network = _mlp4(rng)
        _assert_served_matches_direct(
            network,
            _frames(rng, network.input_shape, 11),
            ServeConfig(max_batch=4, max_delay_s=0.002, cpu_workers=3),
        )

    def test_results_keep_submission_order(self, rng):
        network = _mlp4(rng)
        frames = _frames(rng, network.input_shape, 9)
        expected = [network.forward(fm) for fm in frames]
        with InferenceServer(network, ServeConfig(max_batch=2)) as server:
            got = server.infer_many(frames, timeout_s=60)
        for e, g in zip(expected, got):
            assert np.array_equal(g.data, e.data)

    @pytest.mark.slow
    def test_tincy_served_matches_direct(self, rng):
        # The acceptance pin: serving the Tincy YOLO zoo network is
        # bit-identical to direct forward_batch execution per request.
        network = Network(zoo.tincy_yolo_config())
        network.initialize(rng)
        _assert_served_matches_direct(
            network,
            _frames(rng, network.input_shape, 4),
            ServeConfig(max_batch=2, max_delay_s=0.01, cpu_workers=2),
        )


class TestOverloadBehavior:
    def test_sheds_beyond_limit_and_reports_metrics(self, rng):
        network = _mlp4(rng)
        config = ServeConfig(
            max_queue_depth=4, max_batch=4, max_delay_s=0.005, warmup=False
        )
        frames = _frames(rng, network.input_shape, 32)
        server = InferenceServer(network, config)
        # Stall admission by submitting before start(): the batcher thread
        # is not pulling yet, so the queue must absorb or shed everything.
        accepted, shed = [], 0
        server._started = True  # allow submit() pre-start (test-only poke)
        for frame in frames:
            try:
                accepted.append(server.submit(frame))
            except Overloaded as exc:
                shed += 1
                assert exc.limit == 4
        assert len(accepted) == 4
        assert shed == 28
        server._started = False
        server.start()
        try:
            results = [future.result(timeout=60) for future in accepted]
        finally:
            server.stop(timeout=10)
        # Accepted requests still complete correctly despite the shedding.
        direct = network.forward_batch(
            FeatureMapBatch.from_maps(frames[: len(accepted)])
        )
        for expected, got in zip(direct.frames(), results):
            assert np.array_equal(got.data, expected.data)
        snapshot = server.metrics.snapshot()
        assert snapshot["shed"] == 28
        assert snapshot["accepted"] == 4
        assert snapshot["completed"] == 4
        assert snapshot["queue_depth_max"] == 4

    def test_overloaded_error_carries_depth_and_limit(self, rng):
        network = _mlp4(rng)
        server = InferenceServer(
            network, ServeConfig(max_queue_depth=1, max_batch=1, warmup=False)
        )
        server._started = True
        server.submit(_frames(rng, network.input_shape, 1)[0])
        with pytest.raises(Overloaded) as excinfo:
            server.submit(_frames(rng, network.input_shape, 1)[0])
        assert excinfo.value.depth == 1
        assert excinfo.value.limit == 1
        server._started = False
        server.start()
        server.stop(timeout=10)

    def test_submit_to_stopped_server_rejected(self, rng):
        network = _mlp4(rng)
        server = InferenceServer(network, ServeConfig(warmup=False))
        server.start()
        server.stop(timeout=10)
        with pytest.raises(ServerClosed):
            server.submit(_frames(rng, network.input_shape, 1)[0])


class TestFabricSerialization:
    def test_only_one_offload_in_flight(self, rng, tmp_path):
        network = _hybrid_offload_network(rng, tmp_path)
        assert network.uses_fabric
        frames = _frames(rng, network.input_shape, 12)
        config = ServeConfig(max_batch=2, max_delay_s=0.001, cpu_workers=3)
        direct = network.forward_batch(FeatureMapBatch.from_maps(frames))
        with InferenceServer(network, config) as server:
            assert server.resource == FABRIC
            served = server.infer_many(frames, timeout_s=60)
            gate = server.fabric_gate
            snapshot = server.metrics.snapshot()
        # The serialization invariant: the fabric engine never ran two
        # offload executions concurrently, while still serving every batch.
        assert gate.max_in_flight == 1
        assert gate.in_flight == 0
        assert gate.acquisitions >= 1
        assert snapshot["fabric_dispatches"] == gate.acquisitions
        for expected, got in zip(direct.frames(), served):
            assert got.scale == expected.scale
            assert np.array_equal(got.data, expected.data)

    def test_cpu_network_never_touches_the_gate(self, rng):
        network = _mlp4(rng)
        assert not network.uses_fabric
        with InferenceServer(network, ServeConfig(max_batch=4)) as server:
            assert server.resource == CPU
            server.infer_many(_frames(rng, network.input_shape, 6), timeout_s=60)
            assert server.fabric_gate.acquisitions == 0
            assert server.metrics.snapshot()["fabric_dispatches"] == 0


class TestTimeoutsAndCancellation:
    def test_expired_request_fails_with_timeout(self, rng):
        network = _mlp4(rng)
        config = ServeConfig(max_batch=4, max_delay_s=0.005, warmup=False)
        with InferenceServer(network, config) as server:
            # timeout_s=0 expires at admission time — deterministically
            # before dispatch, with no sleeping in the test.
            future = server.submit(
                _frames(rng, network.input_shape, 1)[0], timeout_s=0.0
            )
            with pytest.raises(RequestTimeout):
                future.result(timeout=30)
            snapshot = server.metrics.snapshot()
        assert snapshot["timed_out"] == 1
        assert snapshot["completed"] == 0

    def test_cancelled_request_is_dropped(self, rng):
        network = _mlp4(rng)
        server = InferenceServer(
            network, ServeConfig(max_batch=2, warmup=False)
        )
        server._started = True  # submit before the batcher thread runs
        future = server.submit(_frames(rng, network.input_shape, 1)[0])
        assert future.cancel()
        server._started = False
        server.start()
        with pytest.raises(RequestCancelled):
            future.result(timeout=30)
        server.stop(timeout=10)
        assert server.metrics.snapshot()["cancelled"] == 1

    def test_result_timeout_is_plain_timeouterror(self, rng):
        network = _mlp4(rng)
        server = InferenceServer(network, ServeConfig(warmup=False))
        server._started = True
        future = server.submit(_frames(rng, network.input_shape, 1)[0])
        with pytest.raises(TimeoutError):
            future.result(timeout=0.01)
        future.cancel()
        server._started = False


class TestLifecycle:
    def test_stop_drains_accepted_requests(self, rng):
        network = _mlp4(rng)
        config = ServeConfig(
            max_batch=64, max_delay_s=30.0, max_queue_depth=64, warmup=False
        )
        # A huge deadline and batch size: nothing would flush on its own;
        # stop(drain=True) must force the pending batch out.
        frames = _frames(rng, network.input_shape, 5)
        server = InferenceServer(network, config).start()
        futures = [server.submit(frame) for frame in frames]
        assert server.stop(timeout=30, drain=True)
        direct = network.forward_batch(FeatureMapBatch.from_maps(frames))
        for expected, future in zip(direct.frames(), futures):
            assert np.array_equal(future.result(timeout=0).data, expected.data)
        assert server.metrics.snapshot()["flush_causes"].get("forced", 0) >= 1

    def test_stop_without_drain_fails_pending(self, rng):
        network = _mlp4(rng)
        config = ServeConfig(
            max_batch=64, max_delay_s=30.0, max_queue_depth=64, warmup=False
        )
        server = InferenceServer(network, config).start()
        futures = [
            server.submit(frame)
            for frame in _frames(rng, network.input_shape, 3)
        ]
        assert server.stop(timeout=30, drain=False)
        for future in futures:
            with pytest.raises(ServerClosed):
                future.result(timeout=5)

    def test_double_start_rejected(self, rng):
        server = InferenceServer(_mlp4(rng), ServeConfig(warmup=False))
        server.start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                server.start()
        finally:
            server.stop(timeout=10)

    def test_stop_before_start_is_noop(self, rng):
        assert InferenceServer(_mlp4(rng)).stop(timeout=1)

    def test_errors_propagate_to_futures_not_pool(self, rng):
        network = _mlp4(rng)
        with InferenceServer(
            network, ServeConfig(max_batch=1, warmup=False)
        ) as server:
            bad = FeatureMap(np.zeros((1, 28, 28), dtype=np.float32))
            bad.data = np.zeros((1, 28, 29), dtype=np.float32)  # poison shape
            future = server.submit(bad)
            with pytest.raises(ValueError, match="do not match network"):
                future.result(timeout=30)
            # The pool survived the poison batch and still serves traffic.
            good = _frames(rng, network.input_shape, 1)[0]
            out = server.infer(good, timeout_s=30)
            assert np.array_equal(out.data, network.forward(good).data)
            assert server.metrics.snapshot()["failed"] == 1

    def test_config_validation(self):
        with pytest.raises(ValueError, match="max_batch cannot exceed"):
            ServeConfig(max_queue_depth=2, max_batch=4)
        with pytest.raises(ValueError, match="cpu_workers"):
            ServeConfig(cpu_workers=0)
        with pytest.raises(ValueError, match="max_delay_s"):
            ServeConfig(max_delay_s=-0.1)


class TestConcurrentClients:
    def test_many_client_threads_all_served(self, rng):
        network = _mlp4(rng)
        frames = _frames(rng, network.input_shape, 24)
        expected = [network.forward(fm) for fm in frames]
        results = [None] * len(frames)
        errors = []
        with InferenceServer(
            network, ServeConfig(max_batch=4, max_delay_s=0.002, cpu_workers=3)
        ) as server:

            def client(index):
                try:
                    results[index] = server.infer(frames[index], timeout_s=60)
                except Exception as exc:  # noqa: BLE001 — collected for assert
                    errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(i,))
                for i in range(len(frames))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(60)
        assert not errors
        for e, g in zip(expected, results):
            assert g is not None
            assert np.array_equal(g.data, e.data)
