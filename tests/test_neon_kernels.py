"""Kernel-ladder tests: every §III-D variant agrees with the reference."""

import numpy as np
import pytest

from repro.core.ops import conv2d
from repro.neon.kernels import (
    conv_first_layer_custom,
    conv_fused_float,
    conv_gemmlowp,
    conv_generic_float,
)
from repro.neon.timing import (
    conv_time_generic,
    conv_time_neon,
    generic_efficiency,
    pool_time,
)


@pytest.fixture
def first_layer(rng):
    """A scaled-down first layer: 3 channels in, 16 filters, image in [0,1]."""
    x = rng.uniform(0.0, 1.0, size=(3, 32, 32)).astype(np.float32)
    weights = (rng.normal(size=(16, 3, 3, 3)) * 0.2).astype(np.float32)
    return x, weights


class TestGenericKernel:
    def test_matches_reference_conv(self, first_layer):
        x, w = first_layer
        out, stats = conv_generic_float(x, w, stride=1, pad=1)
        assert np.allclose(out, conv2d(x, w, None, 1, 1), atol=1e-5)
        assert stats.macs == 27 * 16 * 32 * 32
        assert stats.lanes == 1

    def test_peak_buffer_shows_k_squared_inflation(self, first_layer):
        x, w = first_layer
        _, stats = conv_generic_float(x, w, stride=1, pad=1)
        assert stats.peak_buffer_floats == 27 * 32 * 32  # K^2 * input size


class TestGemmlowpKernel:
    def test_close_to_float_reference(self, first_layer):
        x, w = first_layer
        out, stats = conv_gemmlowp(x, w, stride=1, pad=1)
        reference = conv2d(x, w, None, 1, 1)
        err = np.abs(out - reference)
        assert err.max() < 0.05  # 8-bit quantization noise only
        assert stats.quantized
        assert stats.lanes == 16

    def test_quantization_error_nonzero(self, first_layer):
        """It *is* quantized — bit-exact agreement would be a bug."""
        x, w = first_layer
        out, _ = conv_gemmlowp(x, w, stride=1, pad=1)
        assert not np.allclose(out, conv2d(x, w, None, 1, 1), atol=1e-7)


class TestFusedKernel:
    def test_bitwise_equal_to_generic(self, first_layer):
        """Fusion changes the schedule, not the math."""
        x, w = first_layer
        fused, _ = conv_fused_float(x, w, stride=1, pad=1)
        generic, _ = conv_generic_float(x, w, stride=1, pad=1)
        assert np.allclose(fused, generic, atol=1e-6)

    def test_slice_buffer_is_tiny(self, first_layer):
        x, w = first_layer
        _, fused_stats = conv_fused_float(x, w, stride=1, pad=1, slice_width=4)
        _, generic_stats = conv_generic_float(x, w, stride=1, pad=1)
        # The locality argument: the live multiplicand shrinks by ~N/4.
        assert fused_stats.peak_buffer_floats == 27 * 4
        assert fused_stats.peak_buffer_floats < generic_stats.peak_buffer_floats / 100


class TestCustomFirstLayer:
    def test_float_variant_equals_generic(self, first_layer):
        x, w = first_layer
        custom, stats = conv_first_layer_custom(x, w, variant="float")
        generic, _ = conv_generic_float(x, w)
        assert np.allclose(custom, generic, atol=1e-6)
        assert stats.path == "custom-16x27-float"

    def test_acc32_variant_close_to_float(self, first_layer):
        x, w = first_layer
        out, stats = conv_first_layer_custom(x, w, variant="i8_acc32")
        reference = conv2d(x, w, None, 1, 1)
        assert np.abs(out - reference).max() < 0.05
        assert stats.accumulator_bits == 32

    def test_acc16_variant_small_additional_loss(self, first_layer):
        """§III-D: the 16-bit accumulator 'introduces some small loss'."""
        x, w = first_layer
        reference = conv2d(x, w, None, 1, 1)
        out32, _ = conv_first_layer_custom(x, w, variant="i8_acc32")
        out16, stats16 = conv_first_layer_custom(x, w, variant="i8_acc16")
        drift = np.abs(out16 - out32)
        assert drift.max() > 0.0               # loss exists (not bit-equal)...
        assert drift.max() < 0.05              # ...but is small
        # and stays in the same error band as plain 8-bit quantization
        assert np.abs(out16 - reference).mean() < 2 * np.abs(
            out32 - reference
        ).mean() + 0.01
        assert stats16.accumulator_bits == 16
        assert stats16.lanes == 8     # twice the 32-bit lane count

    def test_acc16_never_overflows_with_preshift(self, first_layer):
        x, w = first_layer
        _, stats = conv_first_layer_custom(x, w, variant="i8_acc16")
        # 27 products of |p| <= 16384 >> 4 keeps the i16 accumulator safe.
        assert stats.overflow_events == 0

    def test_rejects_wrong_geometry(self, rng):
        x = rng.normal(size=(8, 16, 16)).astype(np.float32)
        w = rng.normal(size=(16, 8, 3, 3)).astype(np.float32)
        with pytest.raises(ValueError, match="16x27"):
            conv_first_layer_custom(x, w)

    def test_rejects_unknown_variant(self, first_layer):
        x, w = first_layer
        with pytest.raises(ValueError, match="variant"):
            conv_first_layer_custom(x, w, variant="i4")

    def test_stride_two_lean_conv(self, first_layer):
        """Modification (d)'s lean convolution: stride 2, same kernel."""
        x, w = first_layer
        out, stats = conv_first_layer_custom(x, w, stride=2, variant="i8_acc16")
        assert out.shape == (16, 16, 16)
        assert stats.macs == 27 * 16 * 16 * 16


FIRST_LAYER_MACS = 16 * 27 * 416 * 416  # Tiny YOLO layer 1 (stride 1)


class TestTimingModel:
    def test_generic_first_layer_is_620ms(self):
        t = conv_time_generic(FIRST_LAYER_MACS, k_inner=27, kernel_size=3)
        assert t.milliseconds == pytest.approx(620, rel=0.02)

    def test_neon_ladder_matches_paper(self):
        """§III-D: 280 (gemmlowp) / ~295 (fused) / 160 / 140 / 120 ms."""
        expected = {
            "gemmlowp-u8": 280,
            "fused-float": 295,
            "custom-16x27-float": 160,
            "custom-16x27-i8-acc32": 140,
            "custom-16x27-i8-acc16": 120,
        }
        for path, target_ms in expected.items():
            t = conv_time_neon(path, FIRST_LAYER_MACS)
            assert t.milliseconds == pytest.approx(target_ms, rel=0.02), path

    def test_speedup_factors(self):
        base = conv_time_generic(FIRST_LAYER_MACS, 27, 3).seconds
        assert base / conv_time_neon("gemmlowp-u8", FIRST_LAYER_MACS).seconds == (
            pytest.approx(2.2, abs=0.1)
        )
        assert base / conv_time_neon(
            "custom-16x27-float", FIRST_LAYER_MACS
        ).seconds == pytest.approx(3.8, abs=0.15)

    def test_lean_conv_time_near_35ms(self):
        """Modification (d): stride-2 custom conv 'needing just 35 ms'."""
        lean_macs = 16 * 27 * 208 * 208
        t = conv_time_neon("custom-16x27-i8-acc16", lean_macs)
        assert 0.025 <= t.seconds <= 0.040

    def test_first_maxpool_time_is_140ms(self):
        t = pool_time(416 * 416 * 16, 208 * 208 * 16)
        assert t == pytest.approx(0.140, rel=0.02)

    def test_efficiency_monotone_in_inner_dim(self):
        assert generic_efficiency(27, 3) < generic_efficiency(576, 3)
        assert generic_efficiency(576, 3) < generic_efficiency(4608, 3)

    def test_unknown_path_rejected(self):
        with pytest.raises(ValueError, match="unknown NEON path"):
            conv_time_neon("magic", 1000)

    def test_bad_inner_dim_rejected(self):
        with pytest.raises(ValueError):
            generic_efficiency(0, 3)


class TestConvInt8Generic:
    def test_acc32_close_to_float_any_geometry(self, rng):
        from repro.neon.kernels import conv_int8

        x = rng.uniform(0, 1, size=(8, 20, 20)).astype(np.float32)
        w = (rng.normal(size=(12, 8, 3, 3)) * 0.1).astype(np.float32)
        out, stats = conv_int8(x, w, stride=2, pad=1, accumulator_bits=32)
        reference = conv2d(x, w, None, 2, 1)
        assert out.shape == reference.shape
        assert np.abs(out - reference).max() < 0.1
        assert stats.path == "int8-acc32"

    def test_acc16_stays_close_to_acc32(self, rng):
        from repro.neon.kernels import conv_int8

        x = rng.uniform(0, 1, size=(4, 16, 16)).astype(np.float32)
        w = (rng.normal(size=(6, 4, 3, 3)) * 0.15).astype(np.float32)
        out32, _ = conv_int8(x, w, accumulator_bits=32)
        out16, stats16 = conv_int8(x, w, accumulator_bits=16)
        assert np.abs(out16 - out32).max() < 0.1
        assert stats16.accumulator_bits == 16

    def test_rejects_unknown_width(self, rng):
        from repro.neon.kernels import conv_int8

        x = rng.uniform(size=(1, 4, 4)).astype(np.float32)
        w = rng.normal(size=(1, 1, 3, 3)).astype(np.float32)
        with pytest.raises(ValueError, match="accumulator_bits"):
            conv_int8(x, w, accumulator_bits=24)
