"""Layer-level unit tests (life cycle, geometry, quantization semantics)."""

import numpy as np
import pytest

from repro.core.quantize import BinaryQuantizer
from repro.core.tensor import FeatureMap
from repro.nn.config import Section
from repro.nn.layers.base import ArraySink, ArraySource
from repro.nn.layers.connected import ConnectedLayer
from repro.nn.layers.convolutional import ConvolutionalLayer
from repro.nn.layers.maxpool import MaxpoolLayer
from repro.nn.layers.region import RegionLayer


def make_conv(**options):
    defaults = {
        "filters": "4",
        "size": "3",
        "stride": "1",
        "pad": "1",
        "activation": "leaky",
        "batch_normalize": "1",
    }
    defaults.update({k: str(v) for k, v in options.items()})
    return ConvolutionalLayer(Section("convolutional", defaults))


class TestConvLifecycle:
    def test_forward_before_init_fails(self, rng):
        layer = make_conv()
        with pytest.raises(RuntimeError, match="before init"):
            layer.forward(FeatureMap(rng.normal(size=(3, 8, 8)).astype(np.float32)))

    def test_geometry(self):
        layer = make_conv(filters=16, stride=2)
        layer.init((3, 416, 416))
        assert layer.out_shape == (16, 208, 208)

    def test_weight_roundtrip(self, rng):
        layer = make_conv()
        layer.init((3, 8, 8))
        layer.initialize(rng)
        layer.biases = rng.normal(size=4).astype(np.float32)
        sink = ArraySink()
        layer.save_weights(sink)
        clone = make_conv()
        clone.init((3, 8, 8))
        clone.load_weights(ArraySource(sink.concatenated()))
        assert np.array_equal(clone.weights, layer.weights)
        assert np.array_equal(clone.biases, layer.biases)

    def test_num_params_counts_bn(self):
        layer = make_conv(filters=8)
        layer.init((3, 8, 8))
        assert layer.num_params() == 8 * 3 * 9 + 8 + 3 * 8
        plain = make_conv(filters=8, batch_normalize=0)
        plain.init((3, 8, 8))
        assert plain.num_params() == 8 * 3 * 9 + 8


class TestConvForward:
    def test_linear_no_bn_matches_reference(self, rng):
        from repro.core.ops import conv2d

        layer = make_conv(activation="linear", batch_normalize=0)
        layer.init((3, 8, 8))
        layer.initialize(rng)
        layer.biases = rng.normal(size=4).astype(np.float32)
        x = rng.normal(size=(3, 8, 8)).astype(np.float32)
        got = layer.forward(FeatureMap(x)).data
        expected = conv2d(x, layer.weights, layer.biases, 1, 1)
        assert np.allclose(got, expected, atol=1e-5)

    def test_binary_flag_binarizes_weights(self, rng):
        layer = make_conv(binary=1, activation="linear", batch_normalize=0)
        layer.init((3, 6, 6))
        layer.initialize(rng)
        eff = layer.effective_weights()
        assert set(np.unique(eff)) <= {-1.0, 1.0}
        assert np.array_equal(eff, BinaryQuantizer().quantize(layer.weights))

    def test_activation_bits_yields_level_codes(self, rng):
        layer = make_conv(activation="relu", activation_bits=3)
        layer.init((3, 6, 6))
        layer.initialize(rng)
        out = layer.forward(FeatureMap(rng.normal(size=(3, 6, 6)).astype(np.float32)))
        assert out.scale == pytest.approx(1.0 / 7.0)
        assert out.data.min() >= 0 and out.data.max() <= 7
        assert np.issubdtype(out.data.dtype, np.integer)

    def test_batchnorm_beta_is_bias(self, rng):
        """Darknet stores BN beta in the bias slot; check the arithmetic."""
        layer = make_conv(activation="linear")
        layer.init((3, 5, 5))
        layer.initialize(rng)
        layer.scales = np.full(4, 2.0, dtype=np.float32)
        layer.biases = np.full(4, 1.5, dtype=np.float32)
        layer.rolling_mean = np.zeros(4, dtype=np.float32)
        layer.rolling_var = np.ones(4, dtype=np.float32)
        x = rng.normal(size=(3, 5, 5)).astype(np.float32)
        from repro.core.ops import conv2d

        raw = conv2d(x, layer.weights, None, 1, 1)
        got = layer.forward(FeatureMap(x)).data
        assert np.allclose(got, 2.0 * raw / np.sqrt(1 + 1e-6) + 1.5, atol=1e-4)

    def test_quantized_input_accepted_via_scale(self, rng):
        layer = make_conv(activation="linear", batch_normalize=0)
        layer.init((2, 4, 4))
        layer.initialize(rng)
        levels = rng.integers(0, 8, size=(2, 4, 4))
        out_scaled = layer.forward(FeatureMap(levels, scale=0.25)).data
        out_plain = layer.forward(
            FeatureMap((levels * 0.25).astype(np.float32))
        ).data
        assert np.allclose(out_scaled, out_plain, atol=1e-5)

    def test_unknown_activation_rejected(self):
        with pytest.raises(ValueError, match="activation"):
            make_conv(activation="swish")


class TestMaxpoolLayer:
    def test_tiny_yolo_geometries(self):
        pool = MaxpoolLayer(Section("maxpool", {"size": "2", "stride": "2"}))
        pool.init((16, 416, 416))
        assert pool.out_shape == (16, 208, 208)
        pool_s1 = MaxpoolLayer(Section("maxpool", {"size": "2", "stride": "1"}))
        pool_s1.init((512, 13, 13))
        assert pool_s1.out_shape == (512, 13, 13)

    def test_workload_is_positions_times_kernel(self):
        """Table I layer 2: 208*208*4 = 173,056 — channels NOT counted."""
        pool = MaxpoolLayer(Section("maxpool", {"size": "2", "stride": "2"}))
        pool.init((16, 416, 416))
        assert pool.workload().ops == 173_056

    def test_scale_passthrough(self, rng):
        pool = MaxpoolLayer(Section("maxpool", {"size": "2", "stride": "2"}))
        pool.init((2, 4, 4))
        fm = FeatureMap(rng.integers(0, 8, size=(2, 4, 4)), scale=1.0 / 7.0)
        out = pool.forward(fm)
        assert out.scale == fm.scale


class TestConnectedLayer:
    def test_forward_matches_matmul(self, rng):
        layer = ConnectedLayer(
            Section("connected", {"output": "5", "activation": "linear"})
        )
        layer.init((2, 3, 3))
        layer.initialize(rng)
        layer.biases = rng.normal(size=5).astype(np.float32)
        x = rng.normal(size=(2, 3, 3)).astype(np.float32)
        got = layer.forward(FeatureMap(x)).data.ravel()
        assert np.allclose(got, layer.weights @ x.ravel() + layer.biases, atol=1e-5)

    def test_workload(self):
        layer = ConnectedLayer(Section("connected", {"output": "1024"}))
        layer.init((1, 28, 28))
        assert layer.workload().ops == 2 * 784 * 1024

    def test_sign_activation(self, rng):
        layer = ConnectedLayer(
            Section("connected", {"output": "6", "activation": "sign", "binary": "1"})
        )
        layer.init((1, 2, 2))
        layer.initialize(rng)
        out = layer.forward(FeatureMap(rng.normal(size=(1, 2, 2)).astype(np.float32)))
        assert set(np.unique(out.data)) <= {-1.0, 1.0}


class TestRegionLayer:
    def _layer(self, h=13, w=13):
        layer = RegionLayer(Section("region", {"classes": "20", "num": "5"}))
        layer.init((125, h, w))
        return layer

    def test_channel_validation(self):
        layer = RegionLayer(Section("region", {"classes": "20", "num": "5"}))
        with pytest.raises(ValueError, match="channels"):
            layer.init((100, 13, 13))

    def test_forward_probability_structure(self, rng):
        layer = self._layer()
        fm = FeatureMap(rng.normal(size=(125, 13, 13)).astype(np.float32))
        out = layer.forward(fm).data.reshape(5, 25, 13, 13)
        # x, y, objectness squashed into (0, 1)
        assert np.all((out[:, 0] > 0) & (out[:, 0] < 1))
        assert np.all((out[:, 4] > 0) & (out[:, 4] < 1))
        # class scores are a distribution per anchor and cell
        assert np.allclose(out[:, 5:].sum(axis=1), 1.0, atol=1e-5)

    def test_detections_threshold_and_geometry(self, rng):
        layer = self._layer()
        raw = np.full((125, 13, 13), -10.0, dtype=np.float32)
        # One confident detection: anchor 0, cell (6, 6), class 7.
        raw[4, 6, 6] = 10.0   # objectness logit
        raw[5 + 7, 6, 6] = 10.0  # class logit
        raw[0, 6, 6] = 0.0    # tx -> sigmoid = .5
        raw[1, 6, 6] = 0.0
        raw[2, 6, 6] = 0.0    # tw -> exp = 1
        raw[3, 6, 6] = 0.0
        out = layer.forward(FeatureMap(raw))
        dets = layer.detections(out, threshold=0.5)
        assert len(dets) == 1
        det = dets[0]
        assert det.class_id == 7
        assert det.box.x == pytest.approx(6.5 / 13)
        assert det.box.w == pytest.approx(1.08 / 13)  # first anchor prior

    def test_anchor_count_validation(self):
        with pytest.raises(ValueError, match="anchor"):
            RegionLayer(
                Section("region", {"classes": "20", "num": "5", "anchors": "1,2"})
            )
