"""Instruction-level gemmlowp micro-GEMM tests.

These pin the equivalence chain: NEON instruction sequence ==
vectorized numpy kernels == plain integer arithmetic.
"""

import numpy as np
import pytest

from repro.core.gemm import gemm_i8_acc16, gemm_i8_acc32
from repro.neon.gemmlowp import dot27_acc16_neon, gemm_u8_neon


class TestGemmU8Neon:
    def test_matches_integer_reference(self, rng):
        a = rng.integers(0, 256, size=(3, 9), dtype=np.uint8)
        b = rng.integers(0, 256, size=(9, 16), dtype=np.uint8)
        got = gemm_u8_neon(a, b)
        expected = a.astype(np.int64) @ b.astype(np.int64)
        assert np.array_equal(got, expected)

    def test_unaligned_column_count(self, rng):
        """N not a multiple of the 16 u8 lanes: padding must not leak."""
        a = rng.integers(0, 256, size=(2, 5), dtype=np.uint8)
        b = rng.integers(0, 256, size=(5, 21), dtype=np.uint8)
        got = gemm_u8_neon(a, b)
        assert got.shape == (2, 21)
        assert np.array_equal(got, a.astype(np.int64) @ b.astype(np.int64))

    def test_matches_core_gemm_with_offsets(self, rng):
        """The gemmlowp decomposition: offsets applied outside the kernel."""
        a = rng.integers(0, 256, size=(2, 8), dtype=np.uint8)
        b = rng.integers(0, 256, size=(8, 16), dtype=np.uint8)
        a_off, b_off = -128, -100
        raw = gemm_u8_neon(a, b).astype(np.int64)
        # GemmWithOffsets: (A + ao)(B + bo) = AB + ao*colsum(B) + bo*rowsum(A)
        #                  + K*ao*bo
        k = a.shape[1]
        corrected = (
            raw
            + a_off * b.astype(np.int64).sum(axis=0)[None, :]
            + b_off * a.astype(np.int64).sum(axis=1)[:, None]
            + k * a_off * b_off
        )
        expected = gemm_i8_acc32(a, b, a_offset=a_off, b_offset=b_off)
        assert np.array_equal(corrected, expected)

    def test_shape_mismatch(self, rng):
        with pytest.raises(ValueError, match="inner dimensions"):
            gemm_u8_neon(np.zeros((2, 3), np.uint8), np.zeros((4, 5), np.uint8))


class TestDot27Acc16:
    def test_matches_vectorized_acc16_path(self, rng):
        weights = rng.integers(-127, 128, size=27).astype(np.int8)
        columns = rng.integers(-127, 128, size=(27, 8)).astype(np.int8)
        lanes, _ = dot27_acc16_neon(weights, columns, pre_shift=4)
        expected, _ = gemm_i8_acc16(
            weights.reshape(1, 27).astype(np.int64),
            columns.astype(np.int64),
            pre_shift=4,
        )
        assert lanes.tolist() == expected[0].tolist()

    def test_saturation_semantics(self):
        """Without the pre-shift, all-max inputs saturate the i16 lanes —
        the 'destructive numeric overflow' the paper engineered around."""
        weights = np.full(27, 127, dtype=np.int8)
        columns = np.full((27, 8), 127, dtype=np.int8)
        lanes, _ = dot27_acc16_neon(weights, columns, pre_shift=1)
        assert np.all(lanes == np.iinfo(np.int16).max)
        # With the paper's shift of 4 the sum stays representable.
        safe, _ = dot27_acc16_neon(weights, columns, pre_shift=4)
        assert np.all(safe < np.iinfo(np.int16).max)

    def test_geometry_validation(self, rng):
        with pytest.raises(ValueError, match="dot27"):
            dot27_acc16_neon(np.zeros(20, np.int8), np.zeros((27, 8), np.int8))
