"""Folding-space search tests."""

import pytest

from repro.finn.device import XCZU3EG, XCZU9EG, FPGAFabric
from repro.finn.mvtu import Folding
from repro.finn.schedule import (
    enumerate_foldings,
    optimize_folding,
    schedule_summary,
)
from repro.nn.network import Network
from repro.nn.zoo import tincy_yolo_config


@pytest.fixture(scope="module")
def tincy_hidden():
    network = Network(tincy_yolo_config())
    return (
        network.layers[1:-2],
        network.layers[0].out_quant.scale,
        network.layers[0].out_shape,
    )


class TestEnumerate:
    def test_budget_respected(self):
        foldings = enumerate_foldings(max_macs_per_cycle=256)
        assert all(f.macs_per_cycle <= 256 for f in foldings)
        assert Folding(16, 16) in foldings
        assert Folding(32, 32) not in foldings

    def test_powers_of_two(self):
        for folding in enumerate_foldings(64):
            assert folding.pe & (folding.pe - 1) == 0
            assert folding.simd & (folding.simd - 1) == 0


class TestOptimize:
    def test_best_fits_and_is_fastest_fitting(self, tincy_hidden):
        layers, scale, shape = tincy_hidden
        best, evaluated = optimize_folding(layers, scale, shape, XCZU3EG)
        assert best is not None
        assert best.fits
        fitting = [c for c in evaluated if c.fits]
        assert best.time_per_frame_s == min(c.time_per_frame_s for c in fitting)

    def test_target_time_prefers_smaller_engine(self, tincy_hidden):
        layers, scale, shape = tincy_hidden
        # 16 fps needs <= 62.5 ms of fabric; a modest engine suffices.
        best, _ = optimize_folding(
            layers, scale, shape, XCZU3EG, target_time_s=0.0625
        )
        fastest, _ = optimize_folding(layers, scale, shape, XCZU3EG)
        assert best.time_per_frame_s <= 0.0625
        assert best.folding.macs_per_cycle <= fastest.folding.macs_per_cycle

    def test_paper_operating_point_is_in_the_fitting_set(self, tincy_hidden):
        layers, scale, shape = tincy_hidden
        _, evaluated = optimize_folding(layers, scale, shape, XCZU3EG)
        point = next(
            c for c in evaluated
            if (c.folding.pe, c.folding.simd) == (32, 32)
        )
        assert point.fits
        assert point.time_per_frame_s == pytest.approx(0.029, rel=0.05)

    def test_nothing_fits_a_tiny_fabric(self, tincy_hidden):
        layers, scale, shape = tincy_hidden
        toy = FPGAFabric(name="toy", luts=2_000, flipflops=4_000, bram36=8, dsp=0)
        best, evaluated = optimize_folding(layers, scale, shape, toy)
        assert best is None
        assert all(not c.fits for c in evaluated)

    def test_bigger_device_unlocks_faster_points(self, tincy_hidden):
        layers, scale, shape = tincy_hidden
        best_small, _ = optimize_folding(layers, scale, shape, XCZU3EG)
        best_big, _ = optimize_folding(layers, scale, shape, XCZU9EG)
        assert best_big.time_per_frame_s <= best_small.time_per_frame_s


class TestSummary:
    def test_rows_sorted_by_speed(self, tincy_hidden):
        layers, scale, shape = tincy_hidden
        _, evaluated = optimize_folding(layers, scale, shape, XCZU3EG)
        rows = schedule_summary(evaluated, top=5)
        assert len(rows) == 5
        times = [float(r[1].split()[0]) for r in rows]
        assert times == sorted(times)
