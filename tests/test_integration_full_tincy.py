"""Full-scale integration: the real Tincy YOLO topology, end to end.

This is the heavyweight smoke test of the whole stack at the paper's
actual geometry (416x416 input, 125x13x13 output): the first convolution
on the CPU path, all hidden layers exported to and executed on the
simulated FINN fabric, the output convolution and region decode on the
CPU — one frame, bit-faithful, asserting agreement between the hybrid
fabric network and the plain fake-quantized network.
"""

import numpy as np
import pytest

import repro.finn  # noqa: F401
from repro.core.tensor import FeatureMap
from repro.finn.offload_backend import export_offload
from repro.nn.config import Section
from repro.nn.network import Network
from repro.nn.zoo import tincy_yolo_config


@pytest.fixture(scope="module")
def tincy(rng_module):
    network = Network(tincy_yolo_config())
    network.initialize(rng_module)
    for layer in network.layers:
        if layer.ltype != "convolutional":
            continue
        n = layer.filters
        layer.biases = (rng_module.normal(size=n) * 0.1).astype(np.float32)
        if layer.batch_normalize:
            layer.scales = rng_module.uniform(0.5, 1.5, size=n).astype(np.float32)
            layer.rolling_mean = (rng_module.normal(size=n) * 0.2).astype(
                np.float32
            )
            layer.rolling_var = rng_module.uniform(0.5, 1.5, size=n).astype(
                np.float32
            )
    return network


@pytest.fixture(scope="module")
def rng_module():
    return np.random.default_rng(20180621)


class TestFullScaleTincy:
    def test_full_frame_hybrid_equals_reference(self, tincy, rng_module, tmp_path_factory):
        binparam = str(tmp_path_factory.mktemp("binparam-tincy"))
        hidden = tincy.layers[1:-2]
        export_offload(
            hidden,
            input_scale=tincy.layers[0].out_quant.scale,
            input_shape=tincy.layers[0].out_shape,
            directory=binparam,
        )

        # Build the hybrid cfg: conv1 + [offload] + conv15 + region.
        sections = [tincy.config.sections[0], tincy.config.layers[0]]
        sections.append(
            Section(
                "offload",
                {
                    "library": "fabric.so",
                    "network": "tincy-yolo-offload.json",
                    "weights": binparam,
                    "height": "13",
                    "width": "13",
                    "channel": "512",
                },
            )
        )
        sections.extend(tincy.config.layers[-2:])
        from repro.nn.config import NetworkConfig

        hybrid = Network(NetworkConfig(sections))
        # Copy the CPU layers' parameters.
        for src, dst in ((tincy.layers[0], hybrid.layers[0]),
                         (tincy.layers[-2], hybrid.layers[2])):
            dst.weights = src.weights.copy()
            dst.biases = src.biases.copy()
            if src.batch_normalize:
                dst.scales = src.scales.copy()
                dst.rolling_mean = src.rolling_mean.copy()
                dst.rolling_var = src.rolling_var.copy()
        hybrid.layers[1].backend.load_weights()

        x = FeatureMap(
            rng_module.uniform(0, 1, size=(3, 416, 416)).astype(np.float32)
        )
        reference = tincy.forward(x)
        got = hybrid.forward(x)
        assert got.shape == (125, 13, 13) == tuple(reference.shape)
        assert np.allclose(got.data, reference.data, atol=1e-4)

        backend = hybrid.layers[1].backend
        assert backend.ops_per_frame() == 4_385_931_264  # Table II reduced ops
        assert backend.time_per_frame() == pytest.approx(0.029, rel=0.05)

    def test_full_frame_detections_decode(self, tincy, rng_module):
        x = FeatureMap(
            rng_module.uniform(0, 1, size=(3, 416, 416)).astype(np.float32)
        )
        out = tincy.forward(x)
        region = tincy.layers[-1]
        detections = region.detections(out, threshold=0.0)
        assert len(detections) > 0
        for det in detections[:20]:
            assert 0 <= det.class_id < 20
            assert 0.0 <= det.objectness <= 1.0
