"""Program-level overflow proving: FUSED, split halves, unknown ops."""

from dataclasses import replace

import numpy as np

from repro.analyze.overflow import (
    PROVED_SAFE,
    UNKNOWN,
    prove_plan,
    prove_program,
    verdict_findings,
)
from repro.isa import compile_network, frontend
from repro.isa.ops import PACK, PART_ACC
from repro.nn import zoo
from repro.nn.network import Network

ZOO = {
    "tiny": zoo.tiny_yolo_config,
    "tincy": zoo.tincy_yolo_config,
    "mlp4": zoo.mlp4_config,
    "cnv6": zoo.cnv6_config,
}


def _network(name: str):
    network = Network(ZOO[name]())
    network.initialize(np.random.default_rng(0))
    return network


class TestProgramCoverage:
    def test_split_halves_are_proved_on_the_frontend_stream(self):
        network = _network("tincy")
        program = frontend(network, name="tincy")
        assert any(
            i.part == PART_ACC for i in program.compute_instructions()
        )  # tincy's conv tower splits statically
        verdicts = prove_program(program, network)
        acc_names = [v.name for v in verdicts if v.name.endswith(".acc")]
        assert acc_names, "split .acc halves must appear as verdicts"
        # Both halves of each split are covered: the matmul half with a
        # real bound, the threshold half vacuously.
        assert len(verdicts) == len(program.compute_instructions())
        assert all(v.verdict != UNKNOWN for v in verdicts)

    def test_fused_chains_are_proved_constituent_by_constituent(self):
        network = _network("tiny")
        program, _stats = compile_network(
            network, name="tiny", level=2, validate=False
        )
        verdicts = prove_program(program, network)
        fused = [v for v in verdicts if "(fused)" in v.name]
        assert fused, "tiny's conv+maxpool chains must be proved fused"
        # The fused conv constituents carry real accumulator bounds.
        assert any(v.bound > 0 for v in fused)
        assert all(v.verdict != UNKNOWN for v in verdicts)

    def test_optimized_stream_matches_plan_bounds(self):
        # On a network the optimizer does not fuse or split, program- and
        # plan-level proofs must produce the same matmul bounds.
        network = _network("mlp4")
        plan_bounds = {
            (v.step_index, v.bound)
            for v in prove_plan(network.plan())
            if v.path != "none"
        }
        program = frontend(network, name="mlp4")
        program_bounds = {
            (v.step_index, v.bound)
            for v in prove_program(program, network)
            if v.path != "none"
        }
        assert plan_bounds == program_bounds

    def test_whole_zoo_is_proved_at_every_level(self):
        import repro.finn  # noqa: F401  (registers fabric.so)

        for name in sorted(ZOO):
            network = _network(name)
            for level in (0, 1, 2):
                program, _stats = compile_network(
                    network, name=name, level=level, validate=False
                )
                verdicts = prove_program(program, network)
                assert verdicts
                assert all(v.verdict != UNKNOWN for v in verdicts), name


class TestUnknownOps:
    def test_unmodeled_opcode_yields_explicit_unknown(self):
        network = _network("mlp4")
        program = frontend(network, name="mlp4")
        instrs = list(program.instructions)
        # Splice in a PACK (reserved, no accumulator model) mid-stream.
        instrs.insert(
            2,
            replace(
                instrs[1], opcode=PACK, dest=99, srcs=(instrs[1].dest,),
                layer=-1, name="packed",
            ),
        )
        doctored = replace(program, instructions=tuple(instrs))
        verdicts = prove_program(doctored, network)
        unknown = [v for v in verdicts if v.verdict == UNKNOWN]
        assert len(unknown) == 1
        findings = verdict_findings(verdicts)
        assert any(f.rule == "OVF-UNKNOWN-OP" for f in findings)
        assert all(
            f.severity == "warning"
            for f in findings
            if f.rule == "OVF-UNKNOWN-OP"
        )


class TestLabels:
    def test_label_distinguishes_program_level_findings(self):
        network = _network("mlp4")
        verdicts = [
            v
            for v in prove_plan(network.plan())
            if v.verdict != PROVED_SAFE
        ]
        if not verdicts:  # force one rendering either way
            from repro.analyze.overflow import StepVerdict

            verdicts = [
                StepVerdict(0, "synthetic", "pack", 0, 0, UNKNOWN)
            ]
        plain = verdict_findings(verdicts)
        labeled = verdict_findings(verdicts, label="-O2 ")
        assert all(f.where.startswith("step ") for f in plain)
        assert all(f.where.startswith("-O2 step ") for f in labeled)
