"""Data-augmentation tests (geometry transforms must track the boxes)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.boxes import Box, GroundTruth
from repro.train.augment import (
    AugmentConfig,
    augment_sample,
    flip_horizontal,
    jitter_colors,
    shift_image,
)


def _sample(rng, size=32):
    image = rng.uniform(size=(3, size, size)).astype(np.float32)
    truths = [GroundTruth(2, Box(0.3, 0.6, 0.2, 0.25))]
    return image, truths


class TestFlip:
    def test_involution(self, rng):
        image, truths = _sample(rng)
        flipped, flipped_truths = flip_horizontal(image, truths)
        back, back_truths = flip_horizontal(flipped, flipped_truths)
        assert np.array_equal(back, image)
        assert back_truths[0].box.x == pytest.approx(truths[0].box.x)

    def test_box_mirrors(self, rng):
        image, truths = _sample(rng)
        _, flipped_truths = flip_horizontal(image, truths)
        assert flipped_truths[0].box.x == pytest.approx(0.7)
        assert flipped_truths[0].box.y == pytest.approx(0.6)

    def test_pixels_actually_flip(self, rng):
        image, truths = _sample(rng)
        flipped, _ = flip_horizontal(image, truths)
        assert np.array_equal(flipped[:, :, 0], image[:, :, -1])

    @given(x=st.floats(0.1, 0.9), w=st.floats(0.05, 0.2))
    @settings(max_examples=30, deadline=None)
    def test_flip_preserves_area(self, x, w):
        truths = [GroundTruth(0, Box(x, 0.5, w, 0.1))]
        _, flipped = flip_horizontal(np.zeros((3, 8, 8), np.float32), truths)
        assert flipped[0].box.area == pytest.approx(truths[0].box.area)


class TestJitter:
    def test_output_in_range(self, rng):
        image, _ = _sample(rng)
        out = jitter_colors(image, rng, AugmentConfig())
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_zero_amplitude_is_identity(self, rng):
        image, _ = _sample(rng)
        config = AugmentConfig(brightness=0.0, contrast=0.0, channel_jitter=0.0)
        out = jitter_colors(image, rng, config)
        assert np.allclose(out, image, atol=1e-6)


class TestShift:
    def test_pixels_move(self, rng):
        image, truths = _sample(rng)
        shifted, _ = shift_image(image, truths, dy=2, dx=-3)
        assert np.array_equal(shifted[:, 2:, :-3], image[:, :-2, 3:])

    def test_fill_value_where_vacated(self, rng):
        image, truths = _sample(rng)
        shifted, _ = shift_image(image, truths, dy=4, dx=0, fill=0.5)
        assert np.allclose(shifted[:, :4, :], 0.5)

    def test_boxes_translate(self, rng):
        image, truths = _sample(rng, size=32)
        _, new_truths = shift_image(image, truths, dy=0, dx=8)
        assert new_truths[0].box.x == pytest.approx(0.3 + 8 / 32)

    def test_box_leaving_frame_dropped(self, rng):
        image = rng.uniform(size=(3, 32, 32)).astype(np.float32)
        truths = [GroundTruth(0, Box(0.05, 0.5, 0.08, 0.1))]
        _, new_truths = shift_image(image, truths, dy=0, dx=-10)
        assert new_truths == []

    def test_box_clips_at_edge(self, rng):
        image = rng.uniform(size=(3, 32, 32)).astype(np.float32)
        truths = [GroundTruth(0, Box(0.2, 0.5, 0.3, 0.3))]
        _, new_truths = shift_image(image, truths, dy=0, dx=-4)
        assert new_truths[0].box.left >= 0.0
        assert new_truths[0].box.w < 0.3 + 1e-9


class TestAugmentSample:
    def test_deterministic_given_rng(self, rng):
        image, truths = _sample(rng)
        a = augment_sample(image, truths, np.random.default_rng(1))
        b = augment_sample(image, truths, np.random.default_rng(1))
        assert np.array_equal(a[0], b[0])
        assert a[1] == b[1]

    def test_boxes_stay_normalized(self, rng):
        for seed in range(10):
            image, truths = _sample(np.random.default_rng(seed))
            out_image, out_truths = augment_sample(
                image, truths, np.random.default_rng(seed)
            )
            assert out_image.shape == image.shape
            for t in out_truths:
                assert -1e-9 <= t.box.left and t.box.right <= 1.0 + 1e-9
                assert -1e-9 <= t.box.top and t.box.bottom <= 1.0 + 1e-9


class TestTrainerIntegration:
    def test_augmented_training_runs_and_learns(self):
        from repro.data.shapes import ShapesDetectionDataset
        from repro.train.models import mini_yolo
        from repro.train.trainer import TrainConfig, train_detector

        dataset = ShapesDetectionDataset(image_size=48, seed=3, max_objects=2)
        model = mini_yolo("mini-tiny", n_classes=20, seed=3)
        result = train_detector(
            model, dataset,
            TrainConfig(steps=25, batch_size=4, eval_samples=8, augment=True),
        )
        assert np.mean(result.losses[-5:]) < np.mean(result.losses[:5])
