"""Video path tests: PPM I/O, resize, letterbox, drawing, camera."""

import numpy as np
import pytest

from repro.eval.boxes import Box, Detection
from repro.video.draw import class_color, draw_box, draw_detections
from repro.video.image import read_ppm, resize_bilinear, resize_nearest, write_ppm
from repro.video.letterbox import letterbox
from repro.video.sink import CollectingSink, NullSink
from repro.video.source import SyntheticCamera


class TestPPM:
    def test_roundtrip(self, rng, tmp_path):
        image = rng.uniform(0, 1, size=(3, 20, 30)).astype(np.float32)
        path = str(tmp_path / "frame.ppm")
        write_ppm(path, image)
        back = read_ppm(path)
        assert back.shape == image.shape
        assert np.abs(back - image).max() <= 1.0 / 255 + 1e-6

    def test_rejects_bad_shape(self, tmp_path):
        with pytest.raises(ValueError, match="3, H, W"):
            write_ppm(str(tmp_path / "x.ppm"), np.zeros((1, 4, 4)))

    def test_rejects_non_p6(self, tmp_path):
        path = tmp_path / "bad.ppm"
        path.write_bytes(b"P3\n1 1\n255\n0 0 0\n")
        with pytest.raises(ValueError, match="P6"):
            read_ppm(str(path))


class TestResize:
    def test_nearest_identity(self, rng):
        image = rng.uniform(size=(3, 8, 8)).astype(np.float32)
        assert np.array_equal(resize_nearest(image, 8, 8), image)

    def test_nearest_upscale_repeats(self):
        image = np.arange(4, dtype=np.float32).reshape(1, 2, 2)
        up = resize_nearest(image, 4, 4)
        assert up[0, 0, 0] == up[0, 1, 1] == 0

    def test_bilinear_preserves_constant(self):
        image = np.full((3, 5, 7), 0.25, dtype=np.float32)
        out = resize_bilinear(image, 13, 11)
        assert np.allclose(out, 0.25, atol=1e-6)

    def test_bilinear_range_bounded(self, rng):
        image = rng.uniform(size=(3, 9, 9)).astype(np.float32)
        out = resize_bilinear(image, 33, 17)
        assert out.min() >= image.min() - 1e-6
        assert out.max() <= image.max() + 1e-6


class TestLetterbox:
    def test_wide_frame_pads_top_bottom(self, rng):
        image = rng.uniform(size=(3, 240, 320)).astype(np.float32)
        boxed, geometry = letterbox(image, 416)
        assert boxed.shape == (3, 416, 416)
        assert geometry.scaled_w == 416
        assert geometry.offset_y > 0 and geometry.offset_x == 0
        # gray bars above and below
        assert np.allclose(boxed[:, 0, :], 0.5)
        assert np.allclose(boxed[:, -1, :], 0.5)

    def test_box_mapping_roundtrip(self, rng):
        image = rng.uniform(size=(3, 240, 320)).astype(np.float32)
        _, geometry = letterbox(image, 416)
        box = Box(0.5, 0.4, 0.3, 0.2)
        mapped = geometry.net_box_to_frame(geometry.frame_box_to_net(box))
        assert mapped.x == pytest.approx(box.x, abs=1e-6)
        assert mapped.y == pytest.approx(box.y, abs=1e-6)
        assert mapped.w == pytest.approx(box.w, abs=1e-6)
        assert mapped.h == pytest.approx(box.h, abs=1e-6)

    def test_square_input_fills_canvas(self, rng):
        image = rng.uniform(size=(3, 100, 100)).astype(np.float32)
        boxed, geometry = letterbox(image, 96)
        assert geometry.offset_x == 0 and geometry.offset_y == 0
        assert boxed.shape == (3, 96, 96)


class TestDrawing:
    def test_draw_box_marks_edges(self):
        image = np.zeros((3, 40, 40), dtype=np.float32)
        det = Detection(Box(0.5, 0.5, 0.5, 0.5), class_id=3, score=0.9)
        draw_box(image, det, thickness=1)
        assert image[:, 10, 10:31].max() > 0  # top edge drawn

    def test_draw_detections_copies(self):
        image = np.zeros((3, 20, 20), dtype=np.float32)
        out = draw_detections(
            image, [Detection(Box(0.5, 0.5, 0.4, 0.4), 0, 1.0)]
        )
        assert image.max() == 0.0
        assert out.max() > 0.0

    def test_class_colors_distinct(self):
        colors = {class_color(c) for c in range(20)}
        assert len(colors) >= 15  # distinct hues

    def test_degenerate_box_ignored(self):
        image = np.zeros((3, 20, 20), dtype=np.float32)
        draw_box(image, Detection(Box(0.5, 0.5, 0.0, 0.0), 0, 1.0))
        assert image.max() == 0.0


class TestCamera:
    def test_deterministic_stream(self):
        a = SyntheticCamera(seed=5)
        b = SyntheticCamera(seed=5)
        fa, fb = a.capture(), b.capture()
        assert np.array_equal(fa.image, fb.image)
        assert fa.index == 0

    def test_frames_differ_over_time(self):
        camera = SyntheticCamera(seed=5)
        first = camera.capture()
        second = camera.capture()
        assert not np.array_equal(first.image, second.image)
        assert second.index == 1

    def test_aspect_ratio(self):
        camera = SyntheticCamera(height=240, width=320, seed=1)
        frame = camera.capture()
        assert frame.image.shape == (3, 240, 320)

    def test_truths_within_frame(self):
        camera = SyntheticCamera(seed=2)
        for frame in camera.stream(5):
            for truth in frame.truths:
                assert 0.0 <= truth.box.x <= 1.0
                assert 0.0 <= truth.box.y <= 1.0
                assert truth.box.w > 0 and truth.box.h > 0


class TestSinks:
    def test_collecting_sink(self, rng, tmp_path):
        sink = CollectingSink(directory=str(tmp_path / "frames"))
        sink.emit(rng.uniform(size=(3, 10, 10)).astype(np.float32))
        sink.emit(rng.uniform(size=(3, 10, 10)).astype(np.float32))
        assert len(sink) == 2
        assert (tmp_path / "frames" / "frame00001.ppm").exists()

    def test_null_sink_counts(self, rng):
        sink = NullSink()
        sink.emit(rng.uniform(size=(3, 4, 4)))
        assert sink.count == 1


class TestMotionCamera:
    def test_temporal_coherence(self):
        from repro.video.source import MotionCamera

        camera = MotionCamera(seed=3, n_objects=2, speed=0.02)
        frames = list(camera.stream(5))
        # Object identity persists: same classes every frame...
        classes = [sorted(t.class_id for t in f.truths) for f in frames]
        assert all(c == classes[0] for c in classes)
        # ...and positions move by roughly the configured speed.
        for earlier, later in zip(frames, frames[1:]):
            for a, b in zip(earlier.truths, later.truths):
                dx = abs(b.box.x - a.box.x)
                dy = abs(b.box.y - a.box.y)
                assert dx + dy < 0.1  # small per-frame motion
        # across 5 frames the objects actually moved
        total = sum(
            abs(frames[-1].truths[i].box.x - frames[0].truths[i].box.x)
            + abs(frames[-1].truths[i].box.y - frames[0].truths[i].box.y)
            for i in range(len(frames[0].truths))
        )
        assert total > 0.01

    def test_objects_bounce_off_borders(self):
        from repro.video.source import MotionCamera

        camera = MotionCamera(seed=3, n_objects=1, speed=0.08)
        for frame in camera.stream(100):
            for truth in frame.truths:
                assert -1e-9 <= truth.box.left
                assert truth.box.right <= 1.0 + 1e-9

    def test_deterministic(self):
        from repro.video.source import MotionCamera

        a = list(MotionCamera(seed=9).stream(3))
        b = list(MotionCamera(seed=9).stream(3))
        for fa, fb in zip(a, b):
            assert np.array_equal(fa.image, fb.image)

    def test_frames_are_valid_images(self):
        from repro.video.source import MotionCamera

        camera = MotionCamera(seed=5, height=64, width=96)
        frame = camera.capture()
        assert frame.image.shape == (3, 64, 96)
        assert 0.0 <= frame.image.min() and frame.image.max() <= 1.0
