"""MVTU functional and cycle-model tests."""

import numpy as np
import pytest

from repro.core.thresholds import ThresholdActivation, derive_thresholds
from repro.finn.mvtu import MVTU, Folding, MVTUConvLayer


def _random_mvtu(rng, rows=16, cols=144, bits=3, folding=Folding(4, 8), **kwargs):
    weights = rng.choice([-1, 1], size=(rows, cols))
    thresholds = derive_thresholds(
        gamma=rng.uniform(0.5, 2.0, size=rows) * rng.choice([-1, 1], size=rows),
        beta=rng.normal(size=rows),
        mean=rng.normal(size=rows) * 5,
        var=rng.uniform(0.5, 2.0, size=rows),
        in_scale=1.0 / 7.0,
        out_scale=1.0 / 7.0,
        bits=bits,
    )
    return MVTU(weights, thresholds, folding, **kwargs), weights


class TestFolding:
    def test_fold_exact_division(self):
        assert Folding(32, 32).fold(512, 4608) == 16 * 144

    def test_fold_ceil(self):
        assert Folding(32, 32).fold(64, 144) == 2 * 5

    def test_macs_per_cycle(self):
        assert Folding(32, 32).macs_per_cycle == 1024

    def test_positive_validation(self):
        with pytest.raises(ValueError):
            Folding(0, 4)


class TestMVTUFunctional:
    def test_matvec_matches_reference(self, rng):
        mvtu, weights = _random_mvtu(rng)
        levels = rng.integers(0, 8, size=144)
        got = mvtu.matvec(levels)
        acc = weights @ levels
        expected = mvtu.thresholds.apply(acc[:, None])[:, 0]
        assert np.array_equal(got, expected)

    def test_matmat_equals_per_column_matvec(self, rng):
        mvtu, _ = _random_mvtu(rng)
        columns = rng.integers(0, 8, size=(144, 10))
        got = mvtu.matmat(columns)
        expected = np.stack(
            [mvtu.matvec(columns[:, i]) for i in range(10)], axis=1
        )
        assert np.array_equal(got, expected)

    def test_bitserial_and_matmul_paths_agree(self, rng):
        """The packed XNOR-popcount datapath is exactly the int matmul."""
        fast, weights = _random_mvtu(rng)
        slow = MVTU(weights, fast.thresholds, fast.folding, bitserial=True)
        columns = rng.integers(0, 8, size=(144, 25))
        assert np.array_equal(fast.matmat(columns), slow.matmat(columns))
        acc = slow.matmat_accumulate_bitserial(columns)
        assert np.array_equal(acc, weights @ columns)

    def test_rejects_non_binary_weights(self, rng):
        thresholds = ThresholdActivation(
            np.zeros((4, 7), dtype=np.int64), np.ones(4, dtype=np.int8), bits=3
        )
        with pytest.raises(ValueError, match="binary"):
            MVTU(rng.normal(size=(4, 9)), thresholds, Folding(1, 1))

    def test_rejects_channel_mismatch(self, rng):
        thresholds = ThresholdActivation(
            np.zeros((5, 7), dtype=np.int64), np.ones(5, dtype=np.int8), bits=3
        )
        with pytest.raises(ValueError, match="threshold channels"):
            MVTU(rng.choice([-1, 1], size=(4, 9)), thresholds, Folding(1, 1))

    def test_matvec_input_length_checked(self, rng):
        mvtu, _ = _random_mvtu(rng)
        with pytest.raises(ValueError, match="elements"):
            mvtu.matvec(np.zeros(10, dtype=np.int64))


class TestMVTUCycles:
    def test_cycles_per_vector_is_fold(self, rng):
        mvtu, _ = _random_mvtu(rng, rows=64, cols=144, folding=Folding(32, 32))
        assert mvtu.cycles_per_vector() == 10

    def test_layer13_cycle_count(self, rng):
        """Tincy layer 13: 512x4608 matrix, 13x13 pixels, 32x32 folding."""
        mvtu, _ = _random_mvtu(rng, rows=32, cols=64, folding=Folding(32, 32))
        # Scale-free check of the formula on the real geometry:
        fold = Folding(32, 32).fold(512, 4608)
        assert fold * 169 == 389_376


class TestMVTUConvLayer:
    def test_matches_quantized_conv_reference(self, rng):
        """MVTU conv on level codes == float conv + BN + ReLU + 3-bit quant."""
        from repro.core.ops import batchnorm_inference, conv2d, relu
        from repro.core.quantize import UnsignedUniformQuantizer
        from repro.core.tensor import FeatureMap

        c_in, c_out, k = 8, 12, 3
        in_scale, out_scale = 1.0 / 7.0, 0.2
        weights = rng.choice([-1.0, 1.0], size=(c_out, c_in, k, k))
        gamma = rng.uniform(0.5, 2.0, size=c_out)
        beta = rng.normal(size=c_out)
        mean = rng.normal(size=c_out) * 3
        var = rng.uniform(0.5, 2.0, size=c_out)
        thresholds = derive_thresholds(
            gamma, beta, mean, var, in_scale, out_scale, bits=3, eps=1e-6
        )
        mvtu = MVTU(weights.reshape(c_out, -1), thresholds, Folding(4, 8))
        layer = MVTUConvLayer(
            mvtu, in_channels=c_in, ksize=k, stride=1, pad=1, out_scale=out_scale
        )
        levels = rng.integers(0, 8, size=(c_in, 9, 9))
        got = layer.forward(FeatureMap(levels, scale=in_scale))
        assert got.scale == out_scale

        # Float reference in double precision.
        z = conv2d(levels.astype(np.float64) * in_scale, weights, None, 1, 1)
        z = batchnorm_inference(z, gamma, beta, mean, var, eps=1e-6)
        quant = UnsignedUniformQuantizer(bits=3, scale=out_scale)
        expected = quant.to_levels(relu(z))
        assert np.array_equal(got.data, expected)

    def test_stride_two_geometry(self, rng):
        mvtu, _ = _random_mvtu(rng, rows=16, cols=27)
        layer = MVTUConvLayer(
            mvtu, in_channels=3, ksize=3, stride=2, pad=1, out_scale=1.0
        )
        assert layer.out_shape((3, 416, 416)) == (16, 208, 208)

    def test_geometry_mismatch_rejected(self, rng):
        mvtu, _ = _random_mvtu(rng, rows=16, cols=144)
        with pytest.raises(ValueError, match="columns"):
            MVTUConvLayer(mvtu, in_channels=3, ksize=3, stride=1, pad=1, out_scale=1.0)

    def test_ops_follow_table1_convention(self, rng):
        mvtu, _ = _random_mvtu(rng, rows=16, cols=27)
        layer = MVTUConvLayer(
            mvtu, in_channels=3, ksize=3, stride=2, pad=1, out_scale=1.0
        )
        # Tincy layer 1 geometry: 2*27*16*208*208
        assert layer.ops((3, 416, 416)) == 37_380_096
