"""Cost-model tests: Table III rows and the §III speedup ladder."""

import pytest

from repro.perf.cost_model import (
    PAPER_TABLE3_MS,
    fabric_hidden_accelerator,
    fabric_hidden_time,
    input_layer_neon_time,
    lean_input_time,
    output_layer_time,
    table3_rows,
    table3_total,
)
from repro.perf.ladder import (
    ladder_steps,
    total_speedup,
)


class TestTable3:
    def test_every_row_within_five_percent_of_paper(self):
        rows = {row.name: row.milliseconds for row in table3_rows()}
        for name, paper_ms in PAPER_TABLE3_MS.items():
            if name == "Total":
                continue
            assert rows[name] == pytest.approx(paper_ms, rel=0.05), name

    def test_total_within_two_percent(self):
        assert table3_total() * 1e3 == pytest.approx(
            PAPER_TABLE3_MS["Total"], rel=0.02
        )

    def test_baseline_frame_rate_is_about_a_tenth_fps(self):
        fps = 1.0 / table3_total()
        assert 0.09 <= fps <= 0.11

    def test_hidden_layers_dominate(self):
        """§III-C: "it is the inference in the hidden network layers which
        contributes the highest processing costs"."""
        rows = {row.name: row.seconds for row in table3_rows()}
        hidden = rows.pop("Hidden Layers")
        assert hidden > sum(rows.values())


class TestFabricTiming:
    def test_hidden_offload_takes_about_30ms(self):
        assert fabric_hidden_time() == pytest.approx(0.030, rel=0.2)

    def test_hidden_stage_speedup_over_300x(self):
        """§III-C: "a speedup of more than 300x for this particular
        processing stage"."""
        rows = {row.name: row.seconds for row in table3_rows()}
        assert rows["Hidden Layers"] / fabric_hidden_time() > 300

    def test_accelerator_serves_seven_stages(self):
        accel = fabric_hidden_accelerator()
        assert len(accel.stages) == 7  # Tincy's hidden convolutions


class TestNeonStageTimes:
    def test_input_layer_120ms(self):
        assert input_layer_neon_time() * 1e3 == pytest.approx(120, rel=0.05)

    def test_lean_conv_near_35ms(self):
        """§III-E: "a lean convolution needing just 35 ms" (we model 30)."""
        assert 0.025 <= lean_input_time() <= 0.040

    def test_output_layer_30ms(self):
        assert output_layer_time() * 1e3 == pytest.approx(30, rel=0.05)


class TestLadder:
    @pytest.fixture(scope="class")
    def steps(self):
        return ladder_steps()

    def test_five_rungs(self, steps):
        assert [s.name for s in steps] == [
            "generic", "+offload", "+neon", "+algorithmic", "+pipeline",
        ]

    def test_fps_monotonically_increases(self, steps):
        fps = [s.fps for s in steps]
        assert fps == sorted(fps)

    def test_offload_gives_11x(self, steps):
        """§III-C: "the net effect reduces to a 11x speedup allowing a frame
        rate of just above 1 fps"."""
        ratio = steps[1].fps / steps[0].fps
        assert ratio == pytest.approx(11, rel=0.1)
        assert 1.0 <= steps[1].fps <= 1.3

    def test_neon_reaches_2_5_fps(self, steps):
        assert steps[2].fps == pytest.approx(2.5, rel=0.05)

    def test_algorithmic_exceeds_5_fps(self, steps):
        assert steps[3].fps > 5.0

    def test_pipeline_lands_near_16_fps(self, steps):
        """§III-F: "a frame rate of 16 fps"."""
        assert 14.0 <= steps[4].fps <= 18.5

    def test_pipeline_speedup_is_almost_threefold(self, steps):
        ratio = steps[4].fps / steps[3].fps
        assert 2.3 <= ratio <= 3.2

    def test_total_speedup_about_160x(self, steps):
        """The paper's headline: "an overall speedup of 160x"."""
        speedup = total_speedup(steps)
        assert 140 <= speedup <= 190

    def test_frame_times_sum_to_fps_for_sequential_rungs(self, steps):
        for step in steps[:4]:
            assert step.fps == pytest.approx(1.0 / step.frame_time_s, rel=1e-6)
