"""Shard process lifecycle + ShardedServer request-path tests.

The chaos matrix (``test_serve_chaos``) certifies the tier under
injected faults; this file covers the sunny-day contracts: the wire
protocol and handshake of one :class:`Shard`, warm plan-cache cold
starts, the result cache / coalescing / quota layers on the submit
path, the ``create_server`` factory, and the
:class:`HeartbeatMonitor` bookkeeping — plus bit-identity of the whole
tier against ``Network.forward_batch``.
"""

import numpy as np
import pytest

from repro.core.tensor import FeatureMap, FeatureMapBatch
from repro.nn import zoo
from repro.nn.network import Network
from repro.serve import (
    ConsistentHashRing,
    InferenceServer,
    QuotaExceeded,
    ServeConfig,
    ShardedServer,
    ShardTierConfig,
    create_server,
    frame_digest,
)
from repro.serve.queue import ServerClosed
from repro.serve.resilience import HeartbeatMonitor
from repro.serve.shard import Shard, fork_available

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="shard tier needs the fork start method"
)


@pytest.fixture(scope="module")
def network():
    rng = np.random.default_rng(20180621)
    net = Network(zoo.mlp4_config())
    net.initialize(rng)
    return net


@pytest.fixture(scope="module")
def frames(network):
    rng = np.random.default_rng(20180623)
    return [
        FeatureMap(
            rng.uniform(0, 1, size=network.input_shape).astype(np.float32)
        )
        for _ in range(8)
    ]


@pytest.mark.integration
@needs_fork
class TestShardProcess:
    def test_handshake_protocol_and_shutdown(self, network, frames):
        shard = Shard(0, network, plan_cache_dir=None)
        try:
            shard.start(ready_timeout_s=60)
            assert shard.name == "shard0"
            assert shard.alive and shard.pid is not None
            assert shard.cold_start_ms is not None and shard.cold_start_ms >= 0
            assert shard.plan_cache_hit is None  # no cache dir -> compiled

            batch = FeatureMapBatch.from_maps([frames[0]])
            shard.send_request(7, batch)
            assert shard.conn.poll(30)
            tag, rid, out = shard.conn.recv()
            assert (tag, rid) == ("res", 7)
            expected = network.forward_batch(batch)
            got = next(iter(out.frames()))
            assert np.array_equal(got.data, expected.frame(0).data)

            seq = shard.send_ping()
            assert shard.conn.poll(30)
            pong = shard.conn.recv()
            assert pong == ("pong", seq, 1, 0)  # served one, not slowed

            shard.request_stop()
            assert shard.join(30)
            assert not shard.alive
            shard.kill()  # idempotent on a corpse
        finally:
            shard.kill()
            shard.join(10)

    def test_double_start_rejected(self, network):
        shard = Shard(1, network, plan_cache_dir=None)
        try:
            shard.start(ready_timeout_s=60)
            with pytest.raises(RuntimeError):
                shard.start()
        finally:
            shard.kill()
            shard.join(10)


@pytest.mark.integration
@needs_fork
class TestShardedServerPath:
    def test_tier_is_bit_identical_to_forward_batch(self, network, frames):
        expected = network.forward_batch(FeatureMapBatch.from_maps(frames))
        with ShardedServer(network, ShardTierConfig(shards=2)) as server:
            results = server.infer_many(frames, timeout_s=60)
            snapshot = server.snapshot()
        for index, got in enumerate(results):
            want = expected.frame(index)
            assert got.scale == want.scale
            assert np.array_equal(got.data, want.data)
        assert snapshot["completed"] == len(frames)
        assert snapshot["failed"] == 0
        tier = snapshot["shard_tier"]
        assert sum(tier["dispatches"].values()) == len(frames)
        assert tier["shard_deaths"] == 0

    def test_duplicate_frames_hit_the_result_cache(self, network, frames):
        with ShardedServer(network, ShardTierConfig(shards=2)) as server:
            first = server.infer(frames[0], timeout_s=60)
            second = server.infer(frames[0], timeout_s=60)
            tier = server.snapshot()["shard_tier"]
        assert np.array_equal(first.data, second.data)
        assert tier["result_cache_hits"] == 1
        assert sum(tier["dispatches"].values()) == 1  # one compute only

    def test_concurrent_duplicates_coalesce_onto_one_dispatch(
        self, network, frames
    ):
        # The cache answers *resolved* duplicates; coalescing answers
        # *in-flight* ones.  Slow the owning shard so the first dispatch
        # is provably still in flight when the duplicate arrives.
        config = ShardTierConfig(shards=2, result_cache=0)
        with ShardedServer(network, config) as server:
            ring = ConsistentHashRing(config.vnodes)
            for name in server.live_shard_names():
                ring.add(name)
            digest = frame_digest(frames[0])
            owner = ring.lookup(digest)
            server._shards[owner].send_slow(0.4, 1)
            primary = server.submit(frames[0])
            follower = server.submit(frames[0])
            first = primary.result(60)
            second = follower.result(60)
            tier = server.snapshot()["shard_tier"]
        assert np.array_equal(first.data, second.data)
        assert tier["coalesced"] == 1
        assert sum(tier["dispatches"].values()) == 1
        # The follower got a private copy, not the primary's buffer.
        assert second.data is not first.data

    def test_quota_rejection_on_the_submit_path(self, network, frames):
        config = ShardTierConfig(
            shards=1, quota_rps=0.001, quota_burst=1.0
        )
        with ShardedServer(network, config) as server:
            server.infer(frames[0], timeout_s=60)
            with pytest.raises(QuotaExceeded):
                server.submit(frames[1], tenant="default")
            snapshot = server.snapshot()
        assert snapshot["shard_tier"]["quota_rejections"] == {"default": 1}
        assert snapshot["admission"]["quota_rejections"] == {"default": 1}

    def test_submit_outside_lifecycle_is_refused(self, network, frames):
        server = ShardedServer(network, ShardTierConfig(shards=1))
        with pytest.raises(ServerClosed):
            server.submit(frames[0])  # never started
        server.start()
        try:
            server.infer(frames[0], timeout_s=60)
        finally:
            server.stop()
        with pytest.raises(ServerClosed):
            server.submit(frames[0])  # stopped

    def test_warmed_plan_cache_makes_every_cold_start_a_hit(
        self, network, frames, tmp_path
    ):
        config = ShardTierConfig(
            shards=2, plan_cache_dir=str(tmp_path / "plans")
        )
        with ShardedServer(network, config) as server:
            result = server.infer(frames[0], timeout_s=60)
            tier = server.snapshot()["shard_tier"]
        expected = network.forward_batch(FeatureMapBatch.from_maps([frames[0]]))
        assert np.array_equal(result.data, expected.frame(0).data)
        assert len(tier["cold_starts"]) == 2
        for info in tier["cold_starts"].values():
            # The parent warmed the artifact before forking: every
            # shard's cold start is a cache *hit*, never a compile.
            assert info["plan_cache_hit"] is True


class TestPlanCacheWarm:
    def test_warm_compiles_once_then_hits(self, network, tmp_path):
        import os

        from repro.isa.cache import PlanCache

        cache = PlanCache(str(tmp_path / "plans"))
        path, hit = cache.warm(network, name="warmup")
        assert os.path.exists(path) and not hit
        path_again, hit_again = cache.warm(network, name="warmup")
        assert path_again == path and hit_again


class TestCreateServerFactory:
    def test_shard_config_selects_the_sharded_server(self, network):
        server = create_server(network, ShardTierConfig(shards=2))
        assert isinstance(server, ShardedServer)
        assert server.shard_count == 0  # not started yet

    def test_default_and_serve_config_select_the_single_process_server(
        self, network
    ):
        assert isinstance(create_server(network), InferenceServer)
        assert isinstance(
            create_server(network, ServeConfig(max_batch=2)), InferenceServer
        )


class TestHeartbeatMonitor:
    def test_expiry_is_strictly_past_the_timeout(self):
        monitor = HeartbeatMonitor(timeout_s=2.0)
        monitor.beat("shard0", 10.0)
        monitor.beat("shard1", 11.0)
        assert monitor.expired(12.0) == []  # exactly at the edge for s0
        assert monitor.expired(12.5) == ["shard0"]
        assert monitor.expired(13.5) == ["shard0", "shard1"]  # sorted

    def test_beat_resets_and_forget_removes(self):
        monitor = HeartbeatMonitor(timeout_s=1.0)
        monitor.beat("shard0", 0.0)
        monitor.beat("shard0", 5.0)
        assert monitor.expired(5.5) == []
        assert monitor.last("shard0") == 5.0
        monitor.forget("shard0")
        assert monitor.expired(100.0) == []
        assert monitor.last("shard0") is None
