"""Model-based randomized testing of the shard tier's :class:`Router`.

The router is a process-free state machine (docs/SERVING.md), which makes
it replayable the same way the batcher is: this test drives it with
seeded random operation sequences — submits, completions, shard joins,
graceful leaves, deaths, router splits and heals — and checks every step
against ``ModelRouter``, a naive reimplementation of the routing policy
(an O(members x vnodes) ring rebuilt per lookup, plain dicts for
liveness and load) kept deliberately simple enough to audit by eye.

Invariants, checked after every operation:

* **agreement** — ``route()`` returns exactly the (shard, fallback) pair
  the model predicts, and ``mark_dead``/``leave`` hand back exactly the
  in-flight request ids the model says were assigned there;
* **never route to the dead or hidden** — a routed shard is always
  alive, visible, and under the depth cap at decision time;
* **exactly-once** — every accepted request is answered exactly once by
  the end: completed normally, or re-routed off a dead shard and then
  completed (never dropped, never answered twice);
* **bookkeeping** — loads, liveness and the in-flight count in
  ``snapshot()`` match the model after every step.

Separately, ``TestRingRebalance`` pins consistent hashing's *minimal
disruption* property: when a member joins, keys move only **to** it;
when one leaves, keys move only **from** it; and the moved fraction
stays near the ideal 1/N (asserted at a deterministic 3/N bound — the
hash is seeded and platform-free, so there is no flake margin to leave).

On failure the test *shrinks by seed-prefix replay* exactly like
``test_serve_batcher_model``: re-run the same seed with ever-shorter
operation prefixes to find the minimal failing prefix, then report the
seed and the exact operation list for paste-into-``_run_case`` replay.
"""

from typing import Dict, List, Optional, Set, Tuple

import numpy as np
import pytest

from repro.serve.router import ConsistentHashRing, Router, _hash_point

#: Number of seeded cases; each is an independent random op schedule.
CASES = 30

#: (op, detail) rows; detail is an index the op interprets at run time.
Op = Tuple[str, int]


class ModelRouter:
    """The routing policy, written the naive way: dicts and a linear scan."""

    def __init__(self, shard_depth: Optional[int], vnodes: int) -> None:
        self.shard_depth = shard_depth
        self.vnodes = vnodes
        self.members: Set[str] = set()  # on the ring
        self.alive: Dict[str, bool] = {}
        self.visible: Dict[str, bool] = {}
        self.load: Dict[str, int] = {}
        self.assignments: Dict[int, str] = {}  # rid -> shard (insert order)

    def owner(self, key: str) -> Optional[str]:
        """Ring lookup, rebuilt from scratch: first point at/after the key."""
        points = sorted(
            (_hash_point(f"{member}#{vnode}"), member)
            for member in self.members
            for vnode in range(self.vnodes)
        )
        if not points:
            return None
        key_point = _hash_point(key)
        for point, member in points:
            if point >= key_point:
                return member
        return points[0][1]  # wrapped

    def usable(self, name: str) -> bool:
        if not (self.alive.get(name) and self.visible.get(name)):
            return False
        return self.shard_depth is None or self.load[name] < self.shard_depth

    def route(self, key: str) -> Optional[Tuple[str, bool]]:
        preferred = self.owner(key)
        if preferred is not None and self.usable(preferred):
            return preferred, False
        candidates = [name for name in self.alive if self.usable(name)]
        if not candidates:
            return None
        return min(candidates, key=lambda n: (self.load[n], n)), True

    def join(self, name: str) -> None:
        self.members.add(name)
        self.alive[name] = True
        self.visible[name] = True
        self.load.setdefault(name, 0)

    def assign(self, name: str, rid: int) -> None:
        self.load[name] += 1
        self.assignments[rid] = name

    def complete(self, rid: int) -> Optional[str]:
        name = self.assignments.pop(rid, None)
        if name is not None and self.load.get(name, 0) > 0:
            self.load[name] -= 1
        return name

    def take_assignments(self, name: str) -> List[int]:
        rids = [r for r, owner in self.assignments.items() if owner == name]
        for rid in rids:
            del self.assignments[rid]
        if name in self.load:
            self.load[name] = 0
        return rids

    def mark_dead(self, name: str) -> List[int]:
        if name in self.alive:
            self.alive[name] = False
            self.visible[name] = False
        self.members.discard(name)
        return self.take_assignments(name)

    def leave(self, name: str) -> List[int]:
        self.members.discard(name)
        self.alive.pop(name, None)
        self.visible.pop(name, None)
        rids = self.take_assignments(name)
        self.load.pop(name, None)
        return rids

    def split(self, hidden: Set[str]) -> None:
        for name in self.alive:
            if self.alive[name]:
                self.visible[name] = name not in hidden

    def heal(self) -> None:
        for name in self.alive:
            if self.alive[name]:
                self.visible[name] = True

    def alive_sorted(self) -> List[str]:
        return sorted(n for n in self.alive if self.alive[n])


def _generate(seed: int):
    """One random case: knobs plus an operation schedule."""
    rng = np.random.default_rng((20180621, seed))
    shard_depth = [None, None, 2, 4][int(rng.integers(4))]
    vnodes = int(rng.choice([1, 8, 32]))
    initial = int(rng.integers(2, 6))
    ops: List[Op] = []
    for _ in range(int(rng.integers(30, 120))):
        kind = rng.choice(
            ["submit", "submit", "submit", "complete", "complete",
             "kill", "join", "leave", "split", "heal"],
        )
        ops.append((str(kind), int(rng.integers(0, 1 << 16))))
    return shard_depth, vnodes, initial, ops


def _run_case(
    shard_depth: Optional[int], vnodes: int, initial: int, ops: List[Op]
) -> Optional[str]:
    """Replay one schedule; returns a failure description or None."""
    real = Router(shard_depth=shard_depth, vnodes=vnodes)
    model = ModelRouter(shard_depth, vnodes)
    joined = 0
    for _ in range(initial):
        real.join(f"s{joined}")
        model.join(f"s{joined}")
        joined += 1
    next_rid = 0
    in_flight: List[int] = []
    answered: Dict[int, int] = {}  # rid -> times resolved
    accepted: List[int] = []

    def check_state(step: int) -> Optional[str]:
        snap = real.snapshot()
        want_shards = {
            name: {
                "alive": model.alive[name],
                "visible": model.visible[name],
                "load": model.load[name],
            }
            for name in model.alive
        }
        if snap["shards"] != want_shards:
            return (
                f"step {step}: snapshot shards {snap['shards']} != "
                f"model {want_shards}"
            )
        if snap["ring_members"] != sorted(model.members):
            return (
                f"step {step}: ring members {snap['ring_members']} != "
                f"model {sorted(model.members)}"
            )
        if snap["in_flight"] != len(model.assignments):
            return (
                f"step {step}: in_flight {snap['in_flight']} != "
                f"model {len(model.assignments)}"
            )
        return None

    def submit_one(step: int, rid: int, rerouted: bool) -> Optional[str]:
        """Route + assign *rid* on both router and model, or resolve it."""
        key = f"req{rid}"
        got = real.route(key)
        want = model.route(key)
        if got != want:
            return f"step {step}: route({key!r}) == {got}, model says {want}"
        if got is None:
            # No shard usable: the server would serve this inline.
            answered[rid] = answered.get(rid, 0) + 1
            return None
        name, _fallback = got
        if not model.usable(name):
            return f"step {step}: routed to unusable shard {name!r}"
        if not model.alive.get(name) or not model.visible.get(name):
            return f"step {step}: routed to dead/hidden shard {name!r}"
        real.assign(name, rid)
        model.assign(name, rid)
        if not rerouted:
            in_flight.append(rid)
        return None

    for step, (op, detail) in enumerate(ops):
        error: Optional[str] = None
        if op == "submit":
            rid = next_rid
            next_rid += 1
            accepted.append(rid)
            error = submit_one(step, rid, rerouted=False)
        elif op == "complete":
            if in_flight:
                rid = in_flight.pop(0)
                if model.assignments.get(rid) is None:
                    # Already resolved by a no-shard fallback or reroute
                    # bookkeeping; nothing to complete.
                    pass
                got_owner = real.complete(rid)
                want_owner = model.complete(rid)
                if got_owner != want_owner:
                    error = (
                        f"step {step}: complete({rid}) == {got_owner!r}, "
                        f"model says {want_owner!r}"
                    )
                elif want_owner is not None:
                    answered[rid] = answered.get(rid, 0) + 1
        elif op in ("kill", "leave"):
            names = model.alive_sorted() if op == "kill" else sorted(model.members)
            if names:
                victim = names[detail % len(names)]
                if op == "kill":
                    got_rids = real.mark_dead(victim)
                    want_rids = model.mark_dead(victim)
                else:
                    got_rids = real.leave(victim)
                    want_rids = model.leave(victim)
                if got_rids != want_rids:
                    error = (
                        f"step {step}: {op}({victim!r}) returned {got_rids}, "
                        f"model says {want_rids}"
                    )
                else:
                    # Re-route the orphans, exactly like the server does.
                    for rid in got_rids:
                        in_flight.remove(rid)
                        in_flight.append(rid)
                        error = submit_one(step, rid, rerouted=True)
                        if error:
                            break
                        if rid not in model.assignments:
                            in_flight.remove(rid)  # resolved inline
        elif op == "join":
            name = f"s{joined}"
            joined += 1
            real.join(name)
            model.join(name)
        elif op == "split":
            alive = model.alive_sorted()
            if len(alive) >= 2:
                start = detail % len(alive)
                hidden = {
                    alive[(start + off) % len(alive)]
                    for off in range(len(alive) // 2)
                }
                real.split(sorted(hidden))
                model.split(hidden)
        elif op == "heal":
            real.heal()
            model.heal()
        error = error or check_state(step)
        if error:
            return error

    # Drain: complete everything still in flight, then audit exactly-once.
    for rid in list(in_flight):
        got_owner = real.complete(rid)
        want_owner = model.complete(rid)
        if got_owner != want_owner:
            return (
                f"final drain: complete({rid}) == {got_owner!r}, "
                f"model says {want_owner!r}"
            )
        if want_owner is not None:
            answered[rid] = answered.get(rid, 0) + 1
    never = [rid for rid in accepted if answered.get(rid, 0) == 0]
    twice = [rid for rid in accepted if answered.get(rid, 0) > 1]
    if never or twice:
        return (
            f"exactly-once violated: unanswered={never} "
            f"multi-answered={twice}"
        )
    if real.in_flight() != 0:
        return f"router still tracks {real.in_flight()} in-flight after drain"
    return None


def _shrink(seed: int) -> str:
    """Find the minimal failing op prefix of *seed*'s schedule."""
    shard_depth, vnodes, initial, ops = _generate(seed)
    shortest = ops
    for length in range(1, len(ops) + 1):
        if _run_case(shard_depth, vnodes, initial, ops[:length]) is not None:
            shortest = ops[:length]
            break
    error = _run_case(shard_depth, vnodes, initial, shortest)
    return (
        f"seed={seed} shard_depth={shard_depth} vnodes={vnodes} "
        f"initial={initial} minimal prefix "
        f"({len(shortest)}/{len(ops)} ops): {shortest!r}\n{error}"
    )


class TestRouterAgainstModel:
    @pytest.mark.parametrize("seed", range(CASES))
    def test_random_schedule_matches_model(self, seed):
        shard_depth, vnodes, initial, ops = _generate(seed)
        if _run_case(shard_depth, vnodes, initial, ops) is not None:
            pytest.fail(_shrink(seed), pytrace=False)

    def test_schedules_exercise_every_path(self):
        # Meta-check: across the seeds, the generator really reaches
        # fallback routing, deaths with in-flight work, and no-shard
        # rejection — otherwise the model agreement would be vacuous.
        saw_fallback = saw_orphans = saw_none = False
        for seed in range(CASES):
            shard_depth, vnodes, initial, ops = _generate(seed)
            router = Router(shard_depth=shard_depth, vnodes=vnodes)
            model = ModelRouter(shard_depth, vnodes)
            joined = 0
            for _ in range(initial):
                router.join(f"s{joined}")
                model.join(f"s{joined}")
                joined += 1
            rid = 0
            pending: List[int] = []
            for op, detail in ops:
                if op == "submit":
                    routed = router.route(f"req{rid}")
                    model_routed = model.route(f"req{rid}")
                    if routed is None:
                        saw_none = True
                    else:
                        if routed[1]:
                            saw_fallback = True
                        router.assign(routed[0], rid)
                        model.assign(routed[0], rid)
                        pending.append(rid)
                    rid += 1
                elif op == "complete" and pending:
                    done = pending.pop(0)
                    router.complete(done)
                    model.complete(done)
                elif op == "kill":
                    names = model.alive_sorted()
                    if names:
                        victim = names[detail % len(names)]
                        orphans = router.mark_dead(victim)
                        model.mark_dead(victim)
                        if orphans:
                            saw_orphans = True
                        for orphan in orphans:
                            pending.remove(orphan)
                elif op == "join":
                    router.join(f"s{joined}")
                    model.join(f"s{joined}")
                    joined += 1
                elif op == "split":
                    alive = model.alive_sorted()
                    if len(alive) >= 2:
                        start = detail % len(alive)
                        hidden = {
                            alive[(start + off) % len(alive)]
                            for off in range(len(alive) // 2)
                        }
                        router.split(sorted(hidden))
                        model.split(hidden)
                elif op == "heal":
                    router.heal()
                    model.heal()
        assert saw_fallback and saw_orphans and saw_none

    def test_shrinker_reports_minimal_prefix(self, monkeypatch):
        shard_depth, vnodes, initial, ops = _generate(0)
        assert _run_case(shard_depth, vnodes, initial, ops) is None  # sanity

        def broken_run(depth, vn, init, prefix):
            return "injected" if len(prefix) >= 5 else None

        monkeypatch.setattr(
            "tests.test_serve_router_model._run_case", broken_run
        )
        message = _shrink(seed=0)
        assert f"5/{len(ops)} ops" in message
        assert "injected" in message


class TestRingRebalance:
    """Consistent hashing's minimal-disruption contract, pinned exactly."""

    KEYS = [f"key-{i}" for i in range(600)]

    @staticmethod
    def _owners(ring: ConsistentHashRing) -> Dict[str, str]:
        return {key: ring.lookup(key) for key in TestRingRebalance.KEYS}

    @pytest.mark.parametrize("count", [2, 3, 5, 8])
    def test_join_moves_keys_only_to_the_new_member(self, count):
        ring = ConsistentHashRing(vnodes=64)
        for i in range(count):
            ring.add(f"s{i}")
        before = self._owners(ring)
        ring.add("snew")
        after = self._owners(ring)
        moved = {k for k in self.KEYS if before[k] != after[k]}
        assert all(after[k] == "snew" for k in moved)
        # Ideal move fraction is 1/(N+1); 3/(N+1) is the deterministic
        # bound these seeds actually satisfy with head-room.
        assert len(moved) / len(self.KEYS) <= 3.0 / (count + 1)
        assert moved, "a join that moves nothing means the ring is inert"

    @pytest.mark.parametrize("count", [3, 5, 8])
    def test_leave_moves_keys_only_from_the_departed(self, count):
        ring = ConsistentHashRing(vnodes=64)
        for i in range(count):
            ring.add(f"s{i}")
        before = self._owners(ring)
        departed = "s1"
        ring.remove(departed)
        after = self._owners(ring)
        moved = {k for k in self.KEYS if before[k] != after[k]}
        assert all(before[k] == departed for k in moved)
        assert all(after[k] != departed for k in self.KEYS)
        assert len(moved) / len(self.KEYS) <= 3.0 / count

    def test_lookup_is_stable_and_total(self):
        ring = ConsistentHashRing(vnodes=32)
        for i in range(4):
            ring.add(f"s{i}")
        owners = self._owners(ring)
        assert self._owners(ring) == owners  # pure function of membership
        assert set(owners.values()) == {f"s{i}" for i in range(4)}
        assert ConsistentHashRing().lookup("anything") is None

    def test_vnodes_validated(self):
        with pytest.raises(ValueError):
            ConsistentHashRing(vnodes=0)
