"""Unit tests for the shard tier's front door (repro.serve.admission).

Everything here runs on explicit ``now`` values — the token buckets and
the admission controller never read a wall clock — so every refill,
rejection and eviction path is driven deterministically.
"""

import numpy as np
import pytest

from repro.core.tensor import FeatureMap
from repro.serve.admission import (
    AdmissionController,
    QuotaExceeded,
    ResultCache,
    TokenBucket,
    frame_digest,
)
from repro.serve.queue import Overloaded


def _frame(value: float = 0.5, scale: float = 1.0) -> FeatureMap:
    return FeatureMap(
        np.full((2, 3, 3), value, dtype=np.float32), scale=scale
    )


class TestFrameDigest:
    def test_equal_frames_collide(self):
        assert frame_digest(_frame()) == frame_digest(_frame())

    def test_every_component_matters(self):
        base = frame_digest(_frame())
        assert frame_digest(_frame(value=0.6)) != base  # bytes
        assert frame_digest(_frame(scale=2.0)) != base  # scale
        other_shape = FeatureMap(
            np.full((3, 2, 3), 0.5, dtype=np.float32), scale=1.0
        )
        assert frame_digest(other_shape) != base  # shape
        other_dtype = FeatureMap(
            np.full((2, 3, 3), 0.5, dtype=np.float64), scale=1.0
        )
        assert frame_digest(other_dtype) != base  # dtype

    def test_non_contiguous_input_is_canonicalized(self):
        data = np.arange(36, dtype=np.float32).reshape(2, 3, 6)[:, :, ::2]
        assert not data.flags["C_CONTIGUOUS"]
        strided = FeatureMap(np.asarray(data), scale=1.0)
        compact = FeatureMap(np.ascontiguousarray(data), scale=1.0)
        assert frame_digest(strided) == frame_digest(compact)


class TestTokenBucket:
    def test_unmetered_always_admits(self):
        bucket = TokenBucket(rate=None)
        assert all(bucket.try_acquire(0.0) for _ in range(100))

    def test_burst_then_dry_then_refill(self):
        bucket = TokenBucket(rate=1.0, burst=2.0)
        assert bucket.try_acquire(0.0)
        assert bucket.try_acquire(0.0)
        assert not bucket.try_acquire(0.0)  # burst exhausted
        assert not bucket.try_acquire(0.5)  # half a token is not a token
        assert bucket.try_acquire(1.5)  # 1.5 tokens refilled
        assert not bucket.try_acquire(1.5)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=3.0)
        assert bucket.try_acquire(0.0)
        # A long quiet period refills to the cap, not beyond it.
        for _ in range(3):
            assert bucket.try_acquire(1000.0)
        assert not bucket.try_acquire(1000.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.5)


class TestAdmissionController:
    def test_quota_rejection_is_typed_and_counted(self):
        controller = AdmissionController(
            max_in_flight=8, quota_rps=1.0, quota_burst=2.0
        )
        controller.admit("cam-a", 0.0)
        controller.admit("cam-a", 0.0)
        with pytest.raises(QuotaExceeded) as info:
            controller.admit("cam-a", 0.0)
        assert info.value.tenant == "cam-a"
        # QuotaExceeded IS an Overloaded: shedding-aware clients that
        # predate quotas keep working unchanged.
        assert isinstance(info.value, Overloaded)
        snapshot = controller.snapshot()
        assert snapshot["quota_rejections"] == {"cam-a": 1}
        assert snapshot["admitted"] == 2

    def test_tenants_are_isolated(self):
        controller = AdmissionController(
            max_in_flight=8, quota_rps=1.0, quota_burst=1.0
        )
        controller.admit("cam-a", 0.0)
        with pytest.raises(QuotaExceeded):
            controller.admit("cam-a", 0.0)
        controller.admit("cam-b", 0.0)  # a's dry bucket is not b's problem

    def test_tenant_overrides_beat_the_default(self):
        controller = AdmissionController(
            max_in_flight=8,
            quota_rps=1.0,
            quota_burst=1.0,
            tenant_quotas={"vip": (100.0, 4.0)},
        )
        for _ in range(4):
            controller.admit("vip", 0.0)
        with pytest.raises(QuotaExceeded):
            controller.admit("vip", 0.0)

    def test_in_flight_cap_sheds_with_plain_overloaded(self):
        controller = AdmissionController(max_in_flight=2)
        controller.admit("default", 0.0)
        controller.admit("default", 0.0)
        with pytest.raises(Overloaded) as info:
            controller.admit("default", 0.0)
        assert not isinstance(info.value, QuotaExceeded)
        assert controller.snapshot()["shed"] == 1
        controller.release()
        controller.admit("default", 0.0)  # release freed a slot
        assert controller.in_flight == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_in_flight=0)


class TestResultCache:
    def test_hit_returns_a_private_copy(self):
        cache = ResultCache(capacity=4)
        cache.put("d", _frame(0.5))
        first = cache.get("d")
        first.data[0, 0, 0] = 99.0
        second = cache.get("d")
        assert second.data[0, 0, 0] == np.float32(0.5)  # mutation contained
        assert cache.snapshot()["hits"] == 2

    def test_lru_evicts_the_coldest_entry(self):
        cache = ResultCache(capacity=2)
        cache.put("a", _frame(1.0))
        cache.put("b", _frame(2.0))
        assert cache.get("a") is not None  # touch: a is now the warmest
        cache.put("c", _frame(3.0))  # evicts b, not a
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.get("c") is not None
        assert cache.snapshot()["evictions"] == 1

    def test_capacity_zero_disables(self):
        cache = ResultCache(capacity=0)
        cache.put("d", _frame())
        assert cache.get("d") is None
        assert len(cache) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=-1)
