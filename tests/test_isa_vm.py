"""PlanVM equivalence: the decoded artifact executes bit-identically."""

import numpy as np
import pytest

from repro.core.tensor import FeatureMap, FeatureMapBatch
from repro.engine import Executor
from repro.isa import (
    BindError,
    PlanVM,
    decode,
    encode,
    lower_network,
)
from repro.isa.ops import Program
from repro.nn import zoo
from repro.nn.network import Network


def _initialized(config, rng):
    network = Network(config)
    network.initialize(rng)
    return network


def _frames(rng, shape, count):
    return [
        FeatureMap(rng.normal(size=shape).astype(np.float32))
        for _ in range(count)
    ]


def _vm_for(network, name="net"):
    return PlanVM(decode(encode(lower_network(network, name=name))), network)


class TestBitIdentity:
    @pytest.mark.parametrize("config_name", ["mlp4", "cnv6"])
    def test_vm_matches_executor_through_serialization(
        self, config_name, rng
    ):
        network = _initialized(getattr(zoo, f"{config_name}_config")(), rng)
        fmb = FeatureMapBatch.from_maps(
            _frames(rng, network.input_shape, 3)
        )
        engine_out = Executor(network.plan()).run(fmb)
        vm_out = _vm_for(network).run(fmb)
        assert vm_out.data.tobytes() == engine_out.data.tobytes()
        assert vm_out.scale == engine_out.scale

    def test_singleton_batch(self, rng):
        network = _initialized(zoo.mlp4_config(), rng)
        fmb = FeatureMapBatch.from_maps(_frames(rng, network.input_shape, 1))
        assert np.array_equal(
            _vm_for(network).run(fmb).data,
            Executor(network.plan()).run(fmb).data,
        )

    def test_empty_batch_short_circuits(self, rng):
        network = _initialized(zoo.mlp4_config(), rng)
        vm = _vm_for(network)
        out = vm.run(
            FeatureMapBatch(
                np.zeros((0,) + tuple(network.input_shape), dtype=np.float32)
            )
        )
        assert out.batch == 0
        assert out.data.shape[1:] == tuple(
            vm.program.output_shape
        )
        assert vm.last_report.batch == 0

    def test_vm_is_repeatable(self, rng):
        network = _initialized(zoo.mlp4_config(), rng)
        vm = _vm_for(network)
        fmb = FeatureMapBatch.from_maps(_frames(rng, network.input_shape, 2))
        first = vm.run(fmb)
        second = vm.run(fmb)
        assert np.array_equal(first.data, second.data)


class TestInstrumentationParity:
    def test_step_stats_mirror_the_executor(self, rng):
        network = _initialized(zoo.cnv6_config(), rng)
        fmb = FeatureMapBatch.from_maps(_frames(rng, network.input_shape, 2))
        executor = Executor(network.plan())
        executor.run(fmb)
        vm = _vm_for(network)
        vm.run(fmb)
        engine, artifact = executor.last_report, vm.last_report
        assert [s.name for s in artifact.steps] == [
            s.name for s in engine.steps
        ]
        assert [s.index for s in artifact.steps] == [
            s.index for s in engine.steps
        ]
        assert [s.ops for s in artifact.steps] == [s.ops for s in engine.steps]
        assert artifact.peak_live_bytes == engine.peak_live_bytes
        assert artifact.arena is not None

    def test_on_step_hook_fires_in_plan_order(self, rng):
        network = _initialized(zoo.mlp4_config(), rng)
        seen = []
        program = decode(encode(lower_network(network)))
        vm = PlanVM(program, network, on_step=lambda s: seen.append(s.name))
        vm.run(FeatureMapBatch.from_maps(_frames(rng, network.input_shape, 1)))
        assert seen == [step.name for step in network.plan().steps]


class TestValidation:
    def test_wrong_frame_shape_is_rejected(self, rng):
        network = _initialized(zoo.mlp4_config(), rng)
        vm = _vm_for(network)
        bad = FeatureMapBatch(np.zeros((1, 2, 3, 4), dtype=np.float32))
        with pytest.raises(ValueError, match="do not match"):
            vm.run(bad)

    def test_unknown_fabric_mode_is_rejected(self, rng):
        network = _initialized(zoo.mlp4_config(), rng)
        vm = _vm_for(network)
        fmb = FeatureMapBatch.from_maps(_frames(rng, network.input_shape, 1))
        with pytest.raises(ValueError, match="fabric_mode"):
            vm.run(fmb, fabric_mode="turbo")

    def test_weights_mutation_breaks_the_bind(self, rng):
        network = _initialized(zoo.mlp4_config(), rng)
        program = lower_network(network)
        network.layers[0].weights[0, 0] += 1.0
        with pytest.raises(BindError, match="weights hash mismatch"):
            PlanVM(program, network)
        # Opting out of verification still binds (structural checks only).
        PlanVM(program, network, check_hashes=False)

    def test_cross_network_bind_is_refused(self, rng):
        mlp = _initialized(zoo.mlp4_config(), rng)
        cnv = _initialized(zoo.cnv6_config(), rng)
        with pytest.raises(BindError):
            PlanVM(lower_network(mlp), cnv)

    def test_program_without_output_is_refused(self, rng):
        network = _initialized(zoo.mlp4_config(), rng)
        program = lower_network(network)
        headless = Program(
            network_name=program.network_name,
            weights_sha256=program.weights_sha256,
            cfg_sha256=program.cfg_sha256,
            input_shape=program.input_shape,
            output_shape=program.output_shape,
            instructions=tuple(
                i for i in program.instructions if i.mnemonic != "STORE_OUTPUT"
            ),
        )
        with pytest.raises(BindError, match="STORE_OUTPUT"):
            PlanVM(headless, network)

    def test_shape_mismatch_breaks_the_bind(self, rng):
        from dataclasses import replace

        network = _initialized(zoo.mlp4_config(), rng)
        program = lower_network(network)
        doctored = list(program.instructions)
        first_compute = next(
            i for i, instr in enumerate(doctored) if instr.is_compute
        )
        doctored[first_compute] = replace(
            doctored[first_compute], shape=(9, 9, 9)
        )
        bad = replace(program, instructions=tuple(doctored))
        with pytest.raises(BindError, match="shape"):
            PlanVM(bad, network)


@pytest.mark.integration
class TestFabricPrograms:
    """The serialized form of a hybrid CPU->fabric->CPU network."""

    @pytest.fixture()
    def hybrid(self, rng, tmp_path):
        from tests.test_serve_server import _hybrid_offload_network

        return _hybrid_offload_network(rng, tmp_path)

    def test_offload_lowering_and_bit_identity(self, hybrid, rng):
        program = decode(encode(lower_network(hybrid, name="mini-hybrid")))
        assert program.uses_fabric
        mnemonics = [i.mnemonic for i in program.compute_instructions()]
        assert "OFFLOAD" in mnemonics
        fmb = FeatureMapBatch.from_maps(_frames(rng, hybrid.input_shape, 2))
        engine_out = Executor(hybrid.plan()).run(fmb)
        vm_out = PlanVM(program, hybrid).run(fmb)
        assert vm_out.data.tobytes() == engine_out.data.tobytes()

    def test_reference_mode_matches_fabric_mode(self, hybrid, rng):
        vm = PlanVM(decode(encode(lower_network(hybrid))), hybrid)
        fmb = FeatureMapBatch.from_maps(_frames(rng, hybrid.input_shape, 2))
        fabric = vm.run(fmb, fabric_mode="fabric")
        reference = vm.run(fmb, fabric_mode="reference")
        # The export contract: the fabric backend and the CPU reference
        # path are bit-identical, so the VM's mode routing must be too.
        assert np.array_equal(fabric.data, reference.data)

    def test_fault_seam_is_shared_with_the_executor(self, hybrid, rng):
        from repro import faults

        vm = PlanVM(decode(encode(lower_network(hybrid))), hybrid)
        fmb = FeatureMapBatch.from_maps(_frames(rng, hybrid.input_shape, 1))
        plan = faults.FaultPlan.parse("fabric-raise@0")
        with faults.install(plan):
            with pytest.raises(faults.FabricError):
                vm.run(fmb)
            # The next attempt (occurrence 1) is past the plan: it works.
            out = vm.run(fmb)
        assert out.batch == 1

    def test_fabric_steps_respect_the_offload_guard(self, hybrid, rng):
        from repro.serve.workers import FabricGate

        gate = FabricGate()
        vm = PlanVM(
            decode(encode(lower_network(hybrid))), hybrid, offload_guard=gate
        )
        fmb = FeatureMapBatch.from_maps(_frames(rng, hybrid.input_shape, 1))
        vm.run(fmb)
        assert gate.acquisitions == 1
        assert gate.in_flight == 0
