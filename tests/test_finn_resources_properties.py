"""Property tests on the fabric resource model (sanity of the cost space)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.finn.device import XC7Z020, XCZU3EG, XCZU7EV, XCZU9EG
from repro.finn.mvtu import Folding, MVTUGeometry
from repro.finn.resources import (
    BRAM36_BITS,
    ResourceEstimate,
    mvtu_compute_resources,
    pool_resources,
    swu_resources,
    weight_storage_resources,
)

_pow2 = st.sampled_from([1, 2, 4, 8, 16, 32, 64])


class TestComputeResources:
    @given(pe=_pow2, simd=_pow2, bits=st.integers(1, 8))
    @settings(max_examples=50, deadline=None)
    def test_luts_monotone_in_parallelism(self, pe, simd, bits):
        base = mvtu_compute_resources(Folding(pe, simd), bits).luts
        wider = mvtu_compute_resources(Folding(pe * 2, simd), bits).luts
        deeper = mvtu_compute_resources(Folding(pe, simd * 2), bits).luts
        assert wider > base
        assert deeper > base

    @given(pe=_pow2, simd=_pow2)
    @settings(max_examples=30, deadline=None)
    def test_wider_activations_cost_more(self, pe, simd):
        one_bit = mvtu_compute_resources(Folding(pe, simd), 1).luts
        three_bit = mvtu_compute_resources(Folding(pe, simd), 3).luts
        assert three_bit > one_bit


class TestWeightStorage:
    @given(
        rows=st.integers(8, 1024),
        cols=st.integers(8, 4608),
        pe=_pow2,
    )
    @settings(max_examples=50, deadline=None)
    def test_bram_covers_the_bits(self, rows, cols, pe):
        geometry = MVTUGeometry(rows, cols, 1, 3)
        estimate = weight_storage_resources([geometry], Folding(pe, 8))
        assert estimate.bram36 * BRAM36_BITS >= geometry.weight_storage_bits

    @given(rows=st.integers(8, 512), cols=st.integers(8, 1024))
    @settings(max_examples=30, deadline=None)
    def test_at_least_one_bank_per_pe(self, rows, cols):
        geometry = MVTUGeometry(rows, cols, 1, 3)
        for pe in (1, 8, 32):
            estimate = weight_storage_resources([geometry], Folding(pe, 8))
            assert estimate.bram36 >= pe

    def test_many_matrices_share_banks(self):
        """The iterated engine stores all layers in shared PE banks, so the
        total is driven by total bits, not per-matrix minimums."""
        small = [MVTUGeometry(16, 144, 1, 3)] * 7
        shared = weight_storage_resources(small, Folding(32, 32))
        separate = sum(
            (weight_storage_resources([g], Folding(32, 32)) for g in small),
            ResourceEstimate(0, 0),
        )
        assert shared.bram36 < separate.bram36


class TestFitMonotonicity:
    def test_fit_monotone_across_device_sizes(self):
        """Anything that fits a smaller fabric fits every larger one."""
        devices = [XC7Z020, XCZU3EG, XCZU7EV, XCZU9EG]
        estimates = [
            ResourceEstimate(luts=l, bram36=b)
            for l in (1_000, 40_000, 150_000)
            for b in (10, 100, 400)
        ]
        for estimate in estimates:
            fits = [estimate.fits(d) for d in devices]
            # once it fits device i, it fits all bigger ones
            for smaller, larger in zip(fits, fits[1:]):
                if smaller:
                    assert larger

    def test_shell_reservation_reduces_capacity(self):
        assert XCZU3EG.usable_luts < XCZU3EG.luts
        assert XCZU3EG.usable_bram36 < XCZU3EG.bram36


class TestSWU:
    @given(
        ksize=st.sampled_from([1, 3, 5]),
        width=st.integers(13, 416),
        channels=st.sampled_from([3, 16, 64, 512]),
        bits=st.integers(1, 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_line_buffer_covers_k_rows(self, ksize, width, channels, bits):
        estimate = swu_resources(ksize, width, channels, bits, Folding(8, 8))
        assert estimate.bram36 * BRAM36_BITS >= ksize * width * channels * bits

    def test_pool_stage_is_cheap(self):
        pool = pool_resources()
        assert pool.luts < 1_000
        assert pool.bram36 <= 1
