"""cfg linter tests."""

import pytest

from repro.nn.config import parse_config
from repro.nn.lint import ERROR, WARNING, lint_config
from repro.nn.zoo import (
    cnv6_config,
    mlp4_config,
    tincy_yolo_config,
    tiny_yolo_config,
    yolov2_config,
)


class TestZooIsClean:
    @pytest.mark.parametrize(
        "factory",
        [tiny_yolo_config, tincy_yolo_config, mlp4_config, cnv6_config,
         yolov2_config],
    )
    def test_zoo_configs_have_no_errors(self, factory):
        findings = lint_config(factory())
        assert not [f for f in findings if f.severity == ERROR], findings

    def test_tincy_has_no_findings_at_all(self):
        assert lint_config(tincy_yolo_config()) == []


class TestDetectsMistakes:
    def test_binary_layer_with_float_input(self):
        config = parse_config(
            "[net]\nwidth=16\nheight=16\nchannels=3\n"
            "[convolutional]\nfilters=8\nsize=3\nstride=1\npad=1\n"
            "activation=relu\n"                      # no activation_bits!
            "[convolutional]\nfilters=8\nsize=3\nstride=1\npad=1\n"
            "activation=relu\nbinary=1\nactivation_bits=3\n"
        )
        findings = lint_config(config)
        assert any("unquantized feature" in f.message for f in findings)
        assert all(f.severity == WARNING for f in findings)

    def test_binary_and_ternary_error(self):
        config = parse_config(
            "[net]\nwidth=8\nheight=8\nchannels=3\n"
            "[convolutional]\nfilters=4\nsize=3\nstride=1\npad=1\n"
            "activation=relu\nbinary=1\nternary=1\n"
        )
        findings = lint_config(config)
        assert any(f.severity == ERROR for f in findings)

    def test_region_channel_mismatch(self):
        config = parse_config(
            "[net]\nwidth=16\nheight=16\nchannels=3\n"
            "[convolutional]\nfilters=100\nsize=1\nstride=1\npad=0\n"
            "activation=linear\n"
            "[region]\nclasses=20\nnum=5\n"
        )
        findings = lint_config(config)
        assert any(
            f.severity == ERROR and "region expects 125" in f.message
            for f in findings
        )

    def test_quantized_region_input_warned(self):
        config = parse_config(
            "[net]\nwidth=16\nheight=16\nchannels=3\n"
            "[convolutional]\nfilters=125\nsize=1\nstride=1\npad=0\n"
            "activation=relu\nactivation_bits=3\n"
            "[region]\nclasses=20\nnum=5\n"
        )
        findings = lint_config(config)
        assert any("quantization sensitive" in f.message for f in findings)

    def test_unknown_section_warned(self):
        config = parse_config(
            "[net]\nwidth=8\nheight=8\nchannels=1\n[frobnicate]\nx=1\n"
        )
        findings = lint_config(config)
        assert any("unknown section" in f.message for f in findings)

    def test_bad_geometry(self):
        config = parse_config("[net]\nwidth=0\nheight=8\nchannels=1\n[softmax]\n")
        findings = lint_config(config)
        assert any("geometry" in f.message for f in findings)


class TestCLILint:
    def test_clean_zoo(self, capsys):
        from repro.cli import main

        assert main(["lint", "tincy"]) == 0
        assert "looks consistent" in capsys.readouterr().out

    def test_broken_cfg_file(self, tmp_path, capsys):
        from repro.cli import main

        cfg = tmp_path / "bad.cfg"
        cfg.write_text(
            "[net]\nwidth=16\nheight=16\nchannels=3\n"
            "[convolutional]\nfilters=100\nsize=1\nstride=1\npad=0\n"
            "activation=linear\n"
            "[region]\nclasses=20\nnum=5\n"
        )
        assert main(["lint", str(cfg)]) == 1
        assert "region expects 125" in capsys.readouterr().out
