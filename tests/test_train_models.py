"""Mini Tiny/Tincy YOLO model-family and trainer tests."""

import numpy as np
import pytest

from repro.data.shapes import ShapesDetectionDataset
from repro.train.layers import MaxPool2d, QConv2d
from repro.train.models import VARIANTS, mini_yolo
from repro.train.trainer import TrainConfig, train_detector


class TestMiniYoloVariants:
    def test_all_variants_build_and_run(self, rng):
        x = rng.uniform(size=(1, 3, 48, 48)).astype(np.float32)
        for variant in VARIANTS:
            model = mini_yolo(variant, n_classes=20, seed=0)
            preds = model.forward(x, training=False)
            assert preds.shape == (1, 25, 6, 6)

    def test_quantized_variants_binarize_hidden_only(self):
        model = mini_yolo("mini-tiny+a", n_classes=20, seed=0)
        convs = [m for m in model.network.modules if isinstance(m, QConv2d)]
        assert not convs[0].binary      # input layer: quantization sensitive
        assert not convs[-1].binary     # output head
        assert all(c.binary for c in convs[1:-1])

    def test_float_variant_has_no_quantization(self):
        model = mini_yolo("mini-tiny", n_classes=20, seed=0)
        from repro.train.layers import ActQuant

        assert not any(isinstance(m, ActQuant) for m in model.network.modules)

    def test_modification_d_removes_pool_adds_stride(self):
        tincy = mini_yolo("mini-tincy", n_classes=20, seed=0)
        tiny = mini_yolo("mini-tiny+abc", n_classes=20, seed=0)
        tincy_pools = sum(
            isinstance(m, MaxPool2d) for m in tincy.network.modules
        )
        tiny_pools = sum(isinstance(m, MaxPool2d) for m in tiny.network.modules)
        assert tincy_pools == tiny_pools - 1
        first_conv = next(
            m for m in tincy.network.modules if isinstance(m, QConv2d)
        )
        assert first_conv.stride == 2

    def test_modifications_b_c_change_widths(self):
        base = mini_yolo("mini-tiny+a", n_classes=20, seed=0)
        modified = mini_yolo("mini-tiny+abc", n_classes=20, seed=0)
        base_convs = [m for m in base.network.modules if isinstance(m, QConv2d)]
        mod_convs = [m for m in modified.network.modules if isinstance(m, QConv2d)]
        assert mod_convs[1].weight.value.shape[0] == 2 * base_convs[1].weight.value.shape[0]
        assert mod_convs[3].weight.value.shape[0] < base_convs[3].weight.value.shape[0]

    def test_unknown_variant(self):
        with pytest.raises(ValueError, match="variant"):
            mini_yolo("mini-huge", n_classes=20)

    def test_detect_returns_detections(self, rng):
        model = mini_yolo("mini-tiny", n_classes=20, seed=0)
        dets = model.detect(
            rng.uniform(size=(3, 48, 48)).astype(np.float32), threshold=0.0
        )
        assert all(0 <= d.class_id < 20 for d in dets)


class TestTrainer:
    def test_short_training_reduces_loss(self):
        dataset = ShapesDetectionDataset(image_size=48, seed=3, max_objects=2)
        model = mini_yolo("mini-tiny", n_classes=20, seed=3)
        result = train_detector(
            model, dataset, TrainConfig(steps=25, batch_size=4, eval_samples=8)
        )
        early = np.mean(result.losses[:5])
        late = np.mean(result.losses[-5:])
        assert late < early

    def test_training_is_deterministic(self):
        def run():
            dataset = ShapesDetectionDataset(image_size=48, seed=3, max_objects=2)
            model = mini_yolo("mini-tiny", n_classes=20, seed=3)
            return train_detector(
                model, dataset, TrainConfig(steps=5, batch_size=4, eval_samples=4)
            ).losses

        assert run() == run()

    def test_quantized_variant_trains(self):
        dataset = ShapesDetectionDataset(image_size=48, seed=3, max_objects=2)
        model = mini_yolo("mini-tincy", n_classes=20, seed=3)
        result = train_detector(
            model, dataset, TrainConfig(steps=25, batch_size=4, eval_samples=8)
        )
        assert np.mean(result.losses[-5:]) < np.mean(result.losses[:5])

    def test_eval_uses_heldout_indices(self):
        """Evaluation must come from samples the training stream never saw."""
        dataset = ShapesDetectionDataset(image_size=48, seed=3)
        model = mini_yolo("mini-tiny", n_classes=20, seed=3)
        config = TrainConfig(steps=2, batch_size=2, eval_samples=2)
        result = train_detector(model, dataset, config)
        assert result.final_map.map_percent >= 0.0
        # Training consumed indices [0, 4); eval starts at 4 — distinct data:
        train_img, _ = dataset.sample(0)
        eval_img, _ = dataset.sample(4)
        assert not np.array_equal(train_img, eval_img)
