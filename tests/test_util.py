"""Utility-module tests: RNG handling and table formatting."""

import numpy as np
import pytest

from repro.util.rng import derive_rng, new_rng
from repro.util.tables import format_table


class TestNewRng:
    def test_none_is_reproducible(self):
        a = new_rng(None).integers(0, 1000, size=5)
        b = new_rng(None).integers(0, 1000, size=5)
        assert np.array_equal(a, b)

    def test_int_seed(self):
        a = new_rng(7).integers(0, 1000, size=5)
        b = new_rng(7).integers(0, 1000, size=5)
        c = new_rng(8).integers(0, 1000, size=5)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert new_rng(gen) is gen

    def test_derive_rng_streams_differ(self):
        parent = np.random.default_rng(1)
        child_a = derive_rng(parent, 0)
        parent2 = np.random.default_rng(1)
        child_b = derive_rng(parent2, 1)
        assert not np.array_equal(
            child_a.integers(0, 1000, 8), child_b.integers(0, 1000, 8)
        )


class TestFormatTable:
    def test_alignment_and_separator(self):
        text = format_table(["A", "BBB"], [["x", 1], ["yyyy", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("A")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_title(self):
        text = format_table(["A"], [["x"]], title="My Table")
        assert text.splitlines()[0] == "My Table"
        assert text.splitlines()[1] == "========"

    def test_thousands_separators(self):
        text = format_table(["N"], [[6_971_272_984]])
        assert "6,971,272,984" in text

    def test_float_formatting(self):
        text = format_table(["F"], [[1234.5678]])
        assert "1,234.6" in text

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["A", "B"], [["only-one"]])

    def test_empty_rows(self):
        text = format_table(["A", "B"], [])
        assert len(text.splitlines()) == 2
