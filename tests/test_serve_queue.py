"""Bounded admission queue, request futures, and the metrics registry."""

import threading

import numpy as np
import pytest

from repro.core.tensor import FeatureMap
from repro.serve.metrics import MetricsRegistry, percentile
from repro.serve.queue import (
    BoundedRequestQueue,
    Overloaded,
    RequestCancelled,
    RequestFuture,
    ServerClosed,
)


def _frame(rng):
    return FeatureMap(rng.normal(size=(1, 2, 2)).astype(np.float32))


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


class TestBoundedRequestQueue:
    def test_admits_up_to_limit_then_sheds(self, rng):
        queue = BoundedRequestQueue(limit=3)
        for _ in range(3):
            queue.submit(_frame(rng))
        with pytest.raises(Overloaded) as excinfo:
            queue.submit(_frame(rng))
        assert excinfo.value.limit == 3
        assert excinfo.value.depth == 3
        assert queue.accepted == 3
        assert queue.shed == 1

    def test_pop_after_shed_readmits(self, rng):
        queue = BoundedRequestQueue(limit=1)
        first = queue.submit(_frame(rng))
        with pytest.raises(Overloaded):
            queue.submit(_frame(rng))
        assert queue.pop() is first
        queue.submit(_frame(rng))  # depth is back under the limit
        assert queue.depth == 1

    def test_fifo_order_and_ids(self, rng):
        queue = BoundedRequestQueue(limit=8)
        submitted = [queue.submit(_frame(rng)) for _ in range(5)]
        popped = [queue.pop(timeout=0) for _ in range(5)]
        assert popped == submitted
        assert [r.id for r in popped] == [0, 1, 2, 3, 4]

    def test_deadline_stamped_from_injected_clock(self, rng):
        clock = FakeClock(100.0)
        queue = BoundedRequestQueue(limit=4, clock=clock)
        request = queue.submit(_frame(rng), timeout_s=2.5)
        assert request.submitted_at == 100.0
        assert request.deadline_at == 102.5
        assert not request.expired(102.49)
        assert request.expired(102.5)
        untimed = queue.submit(_frame(rng))
        assert untimed.deadline_at is None
        assert not untimed.expired(1e12)

    def test_pop_timeout_returns_none(self):
        queue = BoundedRequestQueue(limit=2)
        assert queue.pop(timeout=0.01) is None

    def test_pop_unblocks_on_submit(self, rng):
        queue = BoundedRequestQueue(limit=2)
        box = {}

        def consumer():
            box["request"] = queue.pop(timeout=5.0)

        thread = threading.Thread(target=consumer)
        thread.start()
        request = queue.submit(_frame(rng))
        thread.join(5.0)
        assert not thread.is_alive()
        assert box["request"] is request

    def test_close_refuses_and_drains(self, rng):
        queue = BoundedRequestQueue(limit=4)
        kept = [queue.submit(_frame(rng)) for _ in range(2)]
        queue.close()
        with pytest.raises(ServerClosed):
            queue.submit(_frame(rng))
        assert queue.drain() == kept
        assert queue.pop(timeout=0) is None  # closed + empty: no blocking

    def test_validation(self):
        with pytest.raises(ValueError, match="positive"):
            BoundedRequestQueue(limit=0)


class TestRequestFuture:
    def test_result_roundtrip(self):
        future = RequestFuture()
        assert not future.done()
        future.set_result("payload")
        assert future.done()
        assert future.result(timeout=0) == "payload"
        assert future.exception(timeout=0) is None

    def test_exception_raises_on_result(self):
        future = RequestFuture()
        future.set_exception(ValueError("bad frame"))
        with pytest.raises(ValueError, match="bad frame"):
            future.result(timeout=0)

    def test_result_timeout(self):
        with pytest.raises(TimeoutError):
            RequestFuture().result(timeout=0.01)

    def test_cancel_before_claim_wins(self):
        future = RequestFuture()
        assert future.cancel()
        assert future.cancelled()
        assert not future.claim()  # dispatcher must drop it
        with pytest.raises(RequestCancelled):
            future.result(timeout=0)

    def test_cancel_after_claim_loses(self):
        future = RequestFuture()
        assert future.claim()
        assert not future.cancel()
        future.set_result(42)
        assert future.result(timeout=0) == 42

    def test_first_resolution_sticks(self):
        future = RequestFuture()
        future.set_result(1)
        future.set_exception(RuntimeError("late"))
        assert future.result(timeout=0) == 1


class TestPercentile:
    def test_nearest_rank_values(self):
        samples = list(range(1, 101))  # 1..100
        assert percentile(samples, 0.50) == 50
        assert percentile(samples, 0.95) == 95
        assert percentile(samples, 0.99) == 99
        assert percentile(samples, 1.00) == 100
        assert percentile(samples, 0.0) == 1

    def test_single_sample(self):
        assert percentile([3.5], 0.99) == 3.5

    def test_validation(self):
        with pytest.raises(ValueError, match="no samples"):
            percentile([], 0.5)
        with pytest.raises(ValueError, match="fraction"):
            percentile([1.0], 1.5)


class TestMetricsRegistry:
    def test_snapshot_shape_and_counts(self):
        metrics = MetricsRegistry()
        metrics.mark_started(0.0)
        metrics.observe_admission(depth=1)
        metrics.observe_admission(depth=2)
        metrics.observe_shed()
        metrics.observe_batch(2, "size")
        metrics.observe_completion(0.010, now=1.0)
        metrics.observe_completion(0.020, now=2.0)
        snapshot = metrics.snapshot(now=2.0)
        assert snapshot["accepted"] == 2
        assert snapshot["shed"] == 1
        assert snapshot["completed"] == 2
        assert snapshot["queue_depth_max"] == 2
        assert snapshot["batch_histogram"] == {"2": 1}
        assert snapshot["flush_causes"] == {"size": 1}
        assert snapshot["elapsed_s"] == pytest.approx(2.0)
        assert snapshot["throughput_rps"] == pytest.approx(1.0)
        assert snapshot["latency"]["p50_ms"] == pytest.approx(10.0)
        assert snapshot["latency"]["max_ms"] == pytest.approx(20.0)

    def test_snapshot_is_json_safe(self):
        import json

        metrics = MetricsRegistry()
        metrics.observe_batch(4, "deadline")
        json.dumps(metrics.snapshot())  # must not raise

    def test_no_latency_section_without_completions(self):
        assert MetricsRegistry().snapshot()["latency"] is None

    def test_latency_reservoir_stays_bounded(self):
        from repro.serve.metrics import MAX_LATENCY_SAMPLES

        metrics = MetricsRegistry()
        for i in range(2 * MAX_LATENCY_SAMPLES + 10):
            metrics.observe_completion(float(i), now=float(i))
        assert len(metrics._latencies) <= MAX_LATENCY_SAMPLES
        assert metrics.completed == 2 * MAX_LATENCY_SAMPLES + 10
