"""Smoke tests for the fast examples (the training-heavy ones are covered
by the benchmarks; these just must not rot)."""

import runpy
import sys

import pytest


def _run_example(name: str, argv=None, monkeypatch=None):
    if monkeypatch is not None and argv is not None:
        monkeypatch.setattr(sys, "argv", [name] + list(argv))
    runpy.run_path(f"examples/{name}", run_name="__main__")


class TestFastExamples:
    def test_custom_offload(self, capsys):
        _run_example("custom_offload.py")
        out = capsys.readouterr().out
        assert "equals float W1A3 network: True" in out

    def test_voc_bridge(self, capsys):
        _run_example("voc_bridge.py")
        out = capsys.readouterr().out
        assert "mAP" in out

    def test_folding_explorer(self, capsys):
        _run_example("folding_explorer.py")
        out = capsys.readouterr().out
        assert "fits XCZU3EG?" in out
        assert "paper: ~30 ms" in out

    @pytest.mark.slow
    def test_quickstart(self, capsys):
        _run_example("quickstart.py")
        out = capsys.readouterr().out
        assert "797,442,048" in out       # Table I rows rendered
        assert "Total speedup" in out     # the §III ladder ran
