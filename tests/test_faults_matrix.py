"""The fault-tolerance acceptance matrix (docs/TESTING.md).

For every fault kind in {fabric-raise, fabric-hang, fabric-corrupt,
worker-death} crossed with every breaker phase in {before-trip,
after-trip, half-open}, the :class:`InferenceServer` must

* return results **bit-identical** to ``Network.forward_batch`` on the
  same frames — degrading changes *where* a batch runs, never *what* it
  returns;
* emit exactly the expected retry / trip / probe / degraded / death
  metrics and breaker-transition trajectory;
* recover to the fabric path once the injected faults clear (the final
  breaker state is ``closed`` in every cell);
* be fully deterministic: two consecutive runs of a cell produce the
  same fault transcript and the same resilience snapshot.

Determinism is engineered, not hoped for: ``max_batch=1`` with
sequential ``infer`` calls pins batch composition and fault-site
invocation order, ``warmup=False`` keeps invocation 0 for the first
served frame, one shared :class:`VirtualClock` drives the server, the
breaker, the backoff sleeps and the injector, and the plans only target
the deterministic ``fabric.step`` / ``serve.worker`` sites (never the
timing-dependent ``serve.queue.pop``).
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np
import pytest

import repro.finn  # noqa: F401  (registers fabric.so for offload cfgs)
from repro import faults
from repro.core.tensor import FeatureMap, FeatureMapBatch
from repro.serve import InferenceServer, ServeConfig
from repro.util.clock import VirtualClock

KINDS = ("fabric-raise", "fabric-hang", "fabric-corrupt", "worker-death")
PHASES = ("before-trip", "after-trip", "half-open")

#: Exception-class name each fabric fault kind surfaces as in the
#: ``fabric_failures`` metric (the hang is reported by the watchdog, the
#: corruption by the scrub cross-check).
FAILURE_NAME = {
    "fabric-raise": "FabricFault",
    "fabric-hang": "FabricTimeout",
    "fabric-corrupt": "FabricCorruption",
}


@dataclass(frozen=True)
class Cell:
    """One matrix cell: the injected plan, the knobs, and what must happen."""

    plan: str
    threshold: int
    max_retries: int
    probe_after_s: float
    #: Frames served while the plan still has faults to deliver.
    fault_frames: int
    #: Frames served after the faults cleared (the recovery check).
    recovery_frames: int
    #: Virtual-clock advance between the two groups (None = no advance).
    advance_s: Optional[float] = None
    expect_trips: int = 0
    expect_probes: int = 0
    expect_retries: int = 0
    expect_degraded: int = 0
    expect_deaths: int = 0
    expect_dispatches: int = 0
    expect_events: int = 0
    expect_failures: Dict[str, int] = field(default_factory=dict)
    expect_transitions: Tuple[Tuple[str, str], ...] = ()

    @property
    def frames(self) -> int:
        return self.fault_frames + self.recovery_frames


def _cell(kind: str, phase: str) -> Cell:
    if kind == "worker-death":
        if phase == "before-trip":
            # The death is orthogonal to the breaker: the job is requeued
            # and the respawned worker serves it on the fabric, cleanly.
            return Cell(
                plan="worker-death@0",
                threshold=3, max_retries=2, probe_after_s=1000.0,
                fault_frames=1, recovery_frames=2,
                expect_deaths=1, expect_dispatches=3, expect_events=1,
            )
        if phase == "after-trip":
            # Fabric failures trip the breaker, then a worker dies while
            # the pool is serving degraded traffic.
            return Cell(
                plan="fabric-raise@0,1;worker-death@1",
                threshold=2, max_retries=1, probe_after_s=5.0,
                fault_frames=2, recovery_frames=3, advance_s=5.0,
                expect_trips=1, expect_probes=1, expect_retries=1,
                expect_degraded=2, expect_deaths=1,
                expect_dispatches=5, expect_events=3,
                expect_failures={"FabricFault": 2},
                expect_transitions=(
                    ("closed", "open"),
                    ("open", "half-open"),
                    ("half-open", "closed"),
                ),
            )
        # half-open: the worker serving the successful probe batch is the
        # respawn of one that just died.
        return Cell(
            plan="fabric-raise@0,1;worker-death@1",
            threshold=2, max_retries=1, probe_after_s=0.0,
            fault_frames=2, recovery_frames=1,
            expect_trips=1, expect_probes=1, expect_retries=1,
            expect_degraded=1, expect_deaths=1,
            expect_dispatches=4, expect_events=3,
            expect_failures={"FabricFault": 2},
            expect_transitions=(
                ("closed", "open"),
                ("open", "half-open"),
                ("half-open", "closed"),
            ),
        )

    name = FAILURE_NAME[kind]
    if phase == "before-trip":
        # One fault, retried within the budget: the breaker never trips
        # and nothing is degraded.
        return Cell(
            plan=f"{kind}@0",
            threshold=3, max_retries=2, probe_after_s=1000.0,
            fault_frames=1, recovery_frames=2,
            expect_retries=1, expect_dispatches=4, expect_events=1,
            expect_failures={name: 1},
        )
    if phase == "after-trip":
        # Two faults exhaust the retry budget and trip the breaker; the
        # frame served while open degrades; after the probe delay the
        # breaker probes, closes, and the tail runs on the fabric again.
        return Cell(
            plan=f"{kind}@0,1",
            threshold=2, max_retries=1, probe_after_s=5.0,
            fault_frames=2, recovery_frames=3, advance_s=5.0,
            expect_trips=1, expect_probes=1, expect_retries=1,
            expect_degraded=2, expect_dispatches=5, expect_events=2,
            expect_failures={name: 2},
            expect_transitions=(
                ("closed", "open"),
                ("open", "half-open"),
                ("half-open", "closed"),
            ),
        )
    # half-open: with probe_after_s=0 and a generous retry budget the
    # whole trip/probe-fail/probe-succeed trajectory plays out *within*
    # one request's retry loop — the batch still comes back bit-identical
    # off the fabric, never degraded.
    return Cell(
        plan=f"{kind}@0,1,2",
        threshold=2, max_retries=5, probe_after_s=0.0,
        fault_frames=1, recovery_frames=2,
        expect_trips=1, expect_probes=2, expect_retries=3,
        expect_dispatches=6, expect_events=3,
        expect_failures={name: 3},
        expect_transitions=(
            ("closed", "open"),
            ("open", "half-open"),
            ("half-open", "open"),
            ("open", "half-open"),
            ("half-open", "closed"),
        ),
    )


CELLS = [
    pytest.param(_cell(kind, phase), id=f"{kind}/{phase}")
    for kind in KINDS
    for phase in PHASES
]


@pytest.fixture(scope="module")
def hybrid(tmp_path_factory):
    """The mini CPU→fabric→CPU network, built once for the whole matrix."""
    from tests.test_serve_server import _hybrid_offload_network

    rng = np.random.default_rng(20180621)
    return _hybrid_offload_network(
        rng, tmp_path_factory.mktemp("binparam-matrix")
    )


@pytest.fixture(scope="module")
def frames(hybrid):
    rng = np.random.default_rng(20180622)
    return [
        FeatureMap(rng.normal(size=hybrid.input_shape).astype(np.float32))
        for _ in range(5)
    ]


@pytest.fixture(scope="module")
def expected(hybrid, frames):
    """Ground truth, computed with no fault plan installed."""
    return list(hybrid.forward_batch(FeatureMapBatch.from_maps(frames)).frames())


def run_cell(network, frames, cell: Cell):
    """Serve one matrix cell; returns (results, fault events, resilience)."""
    clock = VirtualClock()
    plan = faults.FaultPlan.parse(cell.plan, seed=20180621)
    config = ServeConfig(
        max_queue_depth=8,
        max_batch=1,
        max_delay_s=0.0,
        cpu_workers=1,
        warmup=False,  # keep fault-site invocation 0 for the first frame
        scrub_fabric=True,  # silent corruption must be *caught*, not served
        max_retries=cell.max_retries,
        breaker_threshold=cell.threshold,
        breaker_probe_after_s=cell.probe_after_s,
        retry_backoff_s=0.001,
        retry_backoff_max_s=0.05,
    )
    results: List[FeatureMap] = []
    with faults.install(plan, clock=clock) as injector:
        with InferenceServer(network, config, clock=clock) as server:
            for index, frame in enumerate(frames[: cell.frames]):
                if index == cell.fault_frames and cell.advance_s is not None:
                    clock.advance(cell.advance_s)
                results.append(server.infer(frame, timeout_s=60))
            resilience = server.metrics.snapshot()["resilience"]
            dispatches = server.metrics.fabric_dispatches
        events = injector.events()
    return results, events, resilience, dispatches


class TestFaultMatrix:
    @pytest.mark.parametrize("cell", CELLS)
    def test_cell(self, hybrid, frames, expected, cell):
        results, events, resilience, dispatches = run_cell(
            hybrid, frames, cell
        )

        # 1. Bit-identity: every frame — faulted, degraded, probed or
        #    clean — returns exactly the forward_batch answer.
        assert len(results) == cell.frames
        for got, want in zip(results, expected):
            assert got.scale == want.scale
            assert np.array_equal(got.data, want.data)

        # 2. The metrics match the cell's script exactly.
        assert resilience["fabric_retries"] == cell.expect_retries
        assert resilience["breaker_trips"] == cell.expect_trips
        assert resilience["breaker_probes"] == cell.expect_probes
        assert resilience["degraded_inferences"] == cell.expect_degraded
        assert resilience["worker_deaths"] == cell.expect_deaths
        assert resilience["fabric_failures"] == cell.expect_failures
        assert dispatches == cell.expect_dispatches
        trajectory = tuple(
            (t["from"], t["to"]) for t in resilience["breaker_transitions"]
        )
        assert trajectory == cell.expect_transitions

        # 3. Recovery: once the plan's faults are spent the breaker is
        #    closed and fabric dispatches resumed (none of the recovery
        #    frames were degraded — the degraded count already matched).
        assert resilience["breaker_state"] == "closed"

        # 4. The injector delivered every planned fault, in order.
        assert len(events) == cell.expect_events

    @pytest.mark.parametrize("cell", CELLS)
    def test_cell_is_deterministic(self, hybrid, frames, cell):
        # Two consecutive runs: same transcript, same resilience snapshot
        # (including the virtual-clock timestamps inside the transitions).
        first = run_cell(hybrid, frames, cell)
        second = run_cell(hybrid, frames, cell)
        assert first[1] == second[1]  # fault transcript
        assert first[2] == second[2]  # resilience snapshot
