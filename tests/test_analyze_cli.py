"""``repro analyze`` CLI: exit codes, JSON schema, deprecation alias."""

import json

import pytest

from repro.cli import main

BROKEN_CFG = (
    "[net]\nwidth=16\nheight=16\nchannels=3\n"
    "[convolutional]\nfilters=100\nsize=1\nstride=1\npad=0\n"
    "activation=linear\n"
    "[region]\nclasses=20\nnum=5\n"
)


class TestExitCodes:
    def test_clean_network_full_analysis_exits_zero(self, capsys):
        assert main(["analyze", "mlp4"]) == 0
        out = capsys.readouterr().out
        assert "== mlp4 ==" in out
        assert "summary:" in out

    def test_clean_zoo_cfg_only_exits_zero(self, capsys):
        assert main(["analyze", "--cfg-only"]) == 0
        out = capsys.readouterr().out
        for name in ("tiny", "tincy", "mlp4", "cnv6"):
            assert f"== {name} ==" in out

    def test_self_lint_exits_zero(self, capsys):
        assert main(["analyze", "--self"]) == 0
        assert "== self ==" in capsys.readouterr().out

    def test_injected_broken_network_exits_one(self, tmp_path, capsys):
        path = tmp_path / "broken.cfg"
        path.write_text(BROKEN_CFG)
        assert main(["analyze", "--cfg-only", str(path)]) == 1
        out = capsys.readouterr().out
        assert "region expects 125" in out
        assert "[error]" in out


class TestJsonSchema:
    def test_document_is_schema_stable(self, capsys):
        assert main(["analyze", "--cfg-only", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == 1
        assert isinstance(document["findings"], list)
        assert document["findings"], "zoo cfg lint should surface warnings"
        for finding in document["findings"]:
            assert set(finding) == {
                "severity", "rule", "where", "message", "hint", "target",
            }
            assert finding["severity"] in ("info", "warning", "error")

    def test_broken_network_still_emits_valid_json(self, tmp_path, capsys):
        path = tmp_path / "broken.cfg"
        path.write_text(BROKEN_CFG)
        assert main(["analyze", "--cfg-only", "--json", str(path)]) == 1
        document = json.loads(capsys.readouterr().out)
        assert any(f["severity"] == "error" for f in document["findings"])
        assert all(f["target"] == str(path) for f in document["findings"])


class TestLintAlias:
    def test_lint_still_works_and_warns_on_stderr(self, capsys):
        assert main(["lint", "tincy"]) == 0
        captured = capsys.readouterr()
        assert "no findings — configuration looks consistent" in captured.out
        assert "deprecated" in captured.err
        assert "repro analyze" in captured.err

    def test_lint_exit_one_on_broken_cfg(self, tmp_path, capsys):
        path = tmp_path / "broken.cfg"
        path.write_text(BROKEN_CFG)
        assert main(["lint", str(path)]) == 1
        assert "region expects 125" in capsys.readouterr().out
