"""The ISA-* verifier over decoded plan artifacts."""

from dataclasses import replace

import pytest

from repro.analyze import analyze_network, has_errors
from repro.analyze.isa import (
    roundtrip_findings,
    verify_artifact,
    verify_program,
)
from repro.isa import encode, lower_network
from repro.isa.ops import (
    CONV,
    FORMAT_VERSION,
    GEMM,
    LOAD_INPUT,
    RELEASE,
    STORE_OUTPUT,
    Instruction,
    Program,
)
from repro.nn import zoo
from repro.nn.network import Network


@pytest.fixture()
def mlp4(rng):
    network = Network(zoo.mlp4_config())
    network.initialize(rng)
    return network


def _program(instructions, version=FORMAT_VERSION):
    return Program(
        network_name="synthetic",
        weights_sha256="",
        cfg_sha256="",
        input_shape=(1, 4, 4),
        output_shape=(2, 1, 1),
        instructions=tuple(instructions),
        version=version,
    )


_WELL_FORMED = (
    Instruction(LOAD_INPUT, 0, shape=(1, 4, 4)),
    Instruction(CONV, 1, srcs=(0,), shape=(2, 2, 2), ltype="convolutional"),
    Instruction(RELEASE, 0),
    Instruction(GEMM, 2, srcs=(1,), shape=(2, 1, 1), ltype="connected"),
    Instruction(RELEASE, 1),
    Instruction(STORE_OUTPUT, 2, shape=(2, 1, 1)),
)


def _rules(findings):
    return [finding.rule for finding in findings]


class TestLivenessRules:
    def test_well_formed_program_is_clean(self):
        assert verify_program(_program(_WELL_FORMED)) == []

    def test_lowered_zoo_program_is_clean(self, mlp4):
        program = lower_network(mlp4, name="mlp4")
        assert verify_program(program, network=mlp4) == []

    def test_use_after_release(self):
        # The GEMM reads %1 after %1 was released.
        stream = [
            Instruction(LOAD_INPUT, 0, shape=(1, 4, 4)),
            Instruction(CONV, 1, srcs=(0,), shape=(2, 2, 2)),
            Instruction(RELEASE, 1),
            Instruction(GEMM, 2, srcs=(1,), shape=(2, 1, 1)),
            Instruction(STORE_OUTPUT, 2),
        ]
        findings = verify_program(_program(stream))
        assert "ISA-RELEASED" in _rules(findings)
        assert has_errors(findings)

    def test_undefined_source(self):
        stream = [
            Instruction(LOAD_INPUT, 0),
            Instruction(CONV, 1, srcs=(7,)),
            Instruction(STORE_OUTPUT, 1),
        ]
        assert "ISA-UNDEF" in _rules(verify_program(_program(stream)))

    def test_redefined_destination(self):
        stream = [
            Instruction(LOAD_INPUT, 0),
            Instruction(CONV, 1, srcs=(0,)),
            Instruction(CONV, 1, srcs=(0,)),
            Instruction(STORE_OUTPUT, 1),
        ]
        assert "ISA-REDEF" in _rules(verify_program(_program(stream)))

    def test_double_release(self):
        stream = [
            Instruction(LOAD_INPUT, 0),
            Instruction(CONV, 1, srcs=(0,)),
            Instruction(RELEASE, 0),
            Instruction(RELEASE, 0),
            Instruction(STORE_OUTPUT, 1),
        ]
        assert "ISA-RELEASED" in _rules(verify_program(_program(stream)))

    def test_release_of_undefined_slot(self):
        stream = [
            Instruction(LOAD_INPUT, 0),
            Instruction(CONV, 1, srcs=(0,)),
            Instruction(RELEASE, 9),
            Instruction(STORE_OUTPUT, 1),
        ]
        assert "ISA-UNDEF" in _rules(verify_program(_program(stream)))

    def test_missing_framing_ops(self):
        rules = _rules(
            verify_program(_program([Instruction(CONV, 1, srcs=(0,))]))
        )
        assert "ISA-NO-INPUT" in rules
        assert "ISA-NO-OUTPUT" in rules

    def test_leaked_slots_are_informational(self):
        stream = [
            Instruction(LOAD_INPUT, 0),
            Instruction(CONV, 1, srcs=(0,)),
            Instruction(CONV, 2, srcs=(1,)),
            Instruction(STORE_OUTPUT, 2),
        ]
        findings = verify_program(_program(stream))
        leak = [f for f in findings if f.rule == "ISA-LEAK"]
        assert len(leak) == 1
        assert leak[0].severity == "info"
        assert "%1" in leak[0].message
        assert not has_errors(findings)


class TestHeaderRules:
    def test_cross_version_program_is_an_error(self):
        findings = verify_program(
            _program(_WELL_FORMED, version=FORMAT_VERSION + 1)
        )
        assert "ISA-VERSION" in _rules(findings)
        assert has_errors(findings)

    def test_hash_mismatch_against_the_live_network(self, mlp4):
        program = lower_network(mlp4, name="mlp4")
        mlp4.layers[0].weights[0, 0] += 1.0
        findings = verify_program(program, network=mlp4)
        hash_findings = [f for f in findings if f.rule == "ISA-HASH"]
        assert len(hash_findings) == 1
        assert hash_findings[0].severity == "error"
        assert "weights" in hash_findings[0].message

    def test_absent_hashes_are_informational(self, mlp4):
        program = replace(
            lower_network(mlp4, name="mlp4"),
            weights_sha256="",
            cfg_sha256="",
        )
        findings = verify_program(program, network=mlp4)
        assert _rules(findings) == ["ISA-HASH", "ISA-HASH"]
        assert not has_errors(findings)


class TestArtifactEntryPoint:
    def test_decode_failure_is_a_finding_not_an_exception(self):
        findings = verify_artifact(b"not an artifact at all")
        assert _rules(findings) == ["ISA-DECODE"]
        assert has_errors(findings)

    def test_valid_bytes_verify_clean(self, mlp4):
        data = encode(lower_network(mlp4, name="mlp4"))
        assert verify_artifact(data, network=mlp4) == []

    def test_corrupted_bytes_are_an_isa_decode_error(self, mlp4):
        data = bytearray(encode(lower_network(mlp4)))
        data[30] ^= 0xFF
        assert _rules(verify_artifact(bytes(data))) == ["ISA-DECODE"]


class TestRoundTripPass:
    def test_zoo_networks_round_trip_clean(self, mlp4):
        findings = roundtrip_findings(mlp4, mlp4.plan(), name="mlp4")
        assert [f for f in findings if f.rule == "ISA-ROUNDTRIP"] == []
        assert not has_errors(findings)

    def test_analyze_network_includes_the_isa_pass(self, mlp4):
        findings = analyze_network(mlp4)
        # The zoo plans serialize clean: the pass contributes no errors.
        assert not any(
            f.rule.startswith("ISA-") and f.severity == "error"
            for f in findings
        )
