"""PASS-* analyzer rules: clean on the zoo, loud on broken rewrites."""

from dataclasses import replace

import numpy as np
import pytest

from repro.analyze.findings import ERROR
from repro.analyze.passes import _dataflow_findings, pass_findings
from repro.isa import frontend
from repro.isa.ops import STORE_OUTPUT
from repro.nn import zoo
from repro.nn.network import Network

ZOO = {
    "tiny": zoo.tiny_yolo_config,
    "tincy": zoo.tincy_yolo_config,
    "mlp4": zoo.mlp4_config,
    "cnv6": zoo.cnv6_config,
}


def _network(name: str):
    network = Network(ZOO[name]())
    network.initialize(np.random.default_rng(0))
    return network


class TestZooIsClean:
    @pytest.mark.parametrize("name", sorted(ZOO))
    def test_full_pipeline_verifies_on_every_network(self, name):
        network = _network(name)
        findings = pass_findings(network, name=name)
        errors = [f for f in findings if f.severity == ERROR]
        assert errors == [], [str(f) for f in errors]


class TestBrokenProgramsAreCaught:
    def test_dropped_layer_is_a_dataflow_error(self):
        network = _network("mlp4")
        program = frontend(network, name="mlp4")
        instructions = tuple(
            i
            for i in program.instructions
            if not (i.is_compute and i.layer == 1)
        )
        broken = replace(program, instructions=instructions)
        findings = _dataflow_findings(
            broken, network, "mlp4", "synthetic", frontend_fabric=0
        )
        assert any(
            f.rule == "PASS-DATAFLOW" and "layer 1" in f.message
            for f in findings
        )

    def test_duplicated_layer_is_a_dataflow_error(self):
        network = _network("mlp4")
        program = frontend(network, name="mlp4")
        first_compute = next(
            i for i in program.instructions if i.is_compute
        )
        broken = replace(
            program,
            instructions=program.instructions + (first_compute,),
        )
        findings = _dataflow_findings(
            broken, network, "mlp4", "synthetic", frontend_fabric=0
        )
        assert any(f.rule == "PASS-DATAFLOW" for f in findings)

    def test_wrong_output_shape_is_a_dataflow_error(self):
        network = _network("mlp4")
        program = frontend(network, name="mlp4")
        broken = replace(program, output_shape=(999, 1, 1))
        findings = _dataflow_findings(
            broken, network, "mlp4", "synthetic", frontend_fabric=0
        )
        assert any(
            "output shape" in f.message
            for f in findings
            if f.rule == "PASS-DATAFLOW"
        )

    def test_changed_fabric_count_is_a_dataflow_error(self):
        network = _network("mlp4")
        program = frontend(network, name="mlp4")
        findings = _dataflow_findings(
            program, network, "mlp4", "synthetic", frontend_fabric=3
        )
        assert any(
            "FABRIC instruction count" in f.message for f in findings
        )

    def test_programs_still_store_an_output(self):
        # Structural sanity of the helper fixture itself: the frontend
        # stream the broken variants are derived from ends in a store.
        program = frontend(_network("mlp4"), name="mlp4")
        assert program.instructions[-1].opcode == STORE_OUTPUT
