"""Regression: :meth:`MetricsRegistry.snapshot` is atomic under load.

The torn-snapshot bug this pins down: ``snapshot()`` used to assemble
the counter dict under the registry lock but compute the latency
percentile section in a *second* lock acquisition, so a concurrent
``observe_completion`` landing between the two could ship a snapshot
whose latency section disagreed with the ``completed`` counter it rode
with.  The fix assembles everything — counters, the ``shard_tier``
section, ``latency_samples`` and the percentiles — in one lock hold.

The invariants are exact, not statistical: ``observe_completion``
increments ``completed`` and the latency sample counter in the same
critical section, so *every* snapshot must report them equal, no matter
how many threads are hammering; likewise ``observe_shard_death`` bumps
the total and the per-cause histogram together.

The file also carries the PR's lint gate: the new shard-tier modules
must produce zero CC-* findings (docs/ANALYSIS.md) — the concurrency
discipline the analyzer enforces is how bugs of this family are kept
out structurally, not just fixed once.
"""

import os
import threading

import repro
from repro.analyze.concurrency import lint_concurrency
from repro.serve.metrics import MetricsRegistry


def _hammer(registry: MetricsRegistry, stop: threading.Event) -> None:
    clock = 0.0
    while not stop.is_set():
        clock += 0.001
        registry.observe_completion(0.005, clock)
        registry.observe_shard_dispatch("shard0")
        registry.observe_shard_death("shard0", "chaos-kill")
        registry.observe_cache_hit()
        registry.observe_quota_rejection("tenant-a")


class TestSnapshotAtomicity:
    def test_latency_section_never_tears_from_counters(self):
        registry = MetricsRegistry()
        stop = threading.Event()
        workers = [
            threading.Thread(target=_hammer, args=(registry, stop))
            for _ in range(4)
        ]
        for worker in workers:
            worker.start()
        try:
            for _ in range(300):
                snapshot = registry.snapshot()
                # The torn-snapshot regression: both counters move in one
                # critical section, so they can never be seen apart.
                assert snapshot["latency_samples"] == snapshot["completed"]
                if snapshot["completed"]:
                    assert snapshot["latency"] is not None
                    assert snapshot["latency"]["p99_ms"] > 0
                tier = snapshot["shard_tier"]
                assert (
                    sum(tier["death_causes"].values()) == tier["shard_deaths"]
                )
                assert (
                    sum(tier["quota_rejections"].values())
                    >= tier["result_cache_hits"] - 4  # one hammer iteration
                )
        finally:
            stop.set()
            for worker in workers:
                worker.join()
        final = registry.snapshot()
        assert final["completed"] > 0  # the hammer really ran

    def test_single_threaded_snapshot_is_exact(self):
        registry = MetricsRegistry()
        for index in range(10):
            registry.observe_completion(0.001 * (index + 1), float(index))
        snapshot = registry.snapshot()
        assert snapshot["completed"] == 10
        assert snapshot["latency_samples"] == 10
        assert snapshot["latency"]["max_ms"] == 10.0
        empty = MetricsRegistry().snapshot()
        assert empty["latency"] is None
        assert empty["latency_samples"] == 0


class TestShardTierModulesAreClean:
    def test_new_modules_have_zero_concurrency_findings(self):
        # The PR's acceptance gate: `repro analyze` over the shard tier's
        # modules (including the CC-BLOCKING-UNDER-LOCK rule added with
        # them) reports nothing.
        root = os.path.dirname(repro.__file__)
        paths = [
            os.path.join(root, "serve", name)
            for name in (
                "admission.py",
                "metrics.py",
                "resilience.py",
                "router.py",
                "shard.py",
                "server.py",
            )
        ]
        assert all(os.path.exists(path) for path in paths)
        assert lint_concurrency(paths) == []
