"""Dtype-preserving kernels + arena allocator: the hot-spot bugfix pins.

The old ``maxpool2d`` padded every map into a float64 ``-inf`` canvas and
the hidden-layer GEMMs promoted integer level codes to float64; both were
pure waste — max is a *selection* (dtype-invariant) and the LUT/float32
paths are proven exact.  These tests pin the rewritten kernels bit-identical
to the old semantics across dtypes and batch sizes, and pin the
liveness-driven :class:`~repro.engine.arena.Arena` semantics the executor
relies on (recycling, guard veto, escape on ``begin_run``).
"""

import numpy as np
import pytest

from repro.core import workspace
from repro.core.im2col import im2col, im2col_batch
from repro.core.ops import conv2d, conv2d_batch, maxpool2d, maxpool2d_batch
from repro.core.quantize import UnsignedUniformQuantizer
from repro.core.tensor import FeatureMap, FeatureMapBatch, pool_output_size
from repro.engine import Arena, legacy_forward_batch_all
from repro.nn import zoo
from repro.nn.network import Network


def _maxpool_oracle(x, ksize, stride, padding=None):
    """The pre-fix kernel: pad into a float64 ``-inf`` canvas, pool, cast back."""
    if padding is None:
        padding = ksize - 1
    c, h, w = x.shape
    pad_before = padding // 2
    out_h = pool_output_size(h, ksize, stride, padding)
    out_w = pool_output_size(w, ksize, stride, padding)
    padded = np.full((c, h + padding, w + padding), -np.inf, dtype=np.float64)
    padded[:, pad_before:pad_before + h, pad_before:pad_before + w] = x
    out = np.empty((c, out_h, out_w), dtype=np.float64)
    for oy in range(out_h):
        for ox in range(out_w):
            window = padded[
                :, oy * stride:oy * stride + ksize, ox * stride:ox * stride + ksize
            ]
            out[:, oy, ox] = window.max(axis=(1, 2))
    return out.astype(x.dtype)


def _random_maps(rng, shape, dtype, count=1):
    if np.issubdtype(np.dtype(dtype), np.integer):
        info = np.iinfo(dtype)
        lo, hi = max(info.min, -1000), min(info.max, 1000)
        data = rng.integers(lo, hi + 1, size=(count,) + shape)
    else:
        data = rng.normal(size=(count,) + shape) * 10
    return data.astype(dtype)


POOL_CONFIGS = [
    # (shape, ksize, stride, padding) — padding None = Darknet default k-1
    ((3, 13, 13), 2, 1, None),   # the stride-1 pool before Tincy's 13x13 layers
    ((4, 8, 8), 2, 2, None),
    ((2, 7, 9), 3, 2, None),
    ((5, 6, 6), 2, 2, 0),        # no padding: every window fully covered
    ((1, 5, 5), 3, 3, 2),
]


class TestMaxpoolDtypeParity:
    """The new tap-iteration pool == the old float64-padded pool, bit for bit."""

    @pytest.mark.parametrize("dtype", [np.int8, np.int32, np.float32])
    @pytest.mark.parametrize("shape,ksize,stride,padding", POOL_CONFIGS)
    def test_single_frame_matches_float64_oracle(
        self, rng, dtype, shape, ksize, stride, padding
    ):
        x = _random_maps(rng, shape, dtype)[0]
        got = maxpool2d(x, ksize, stride, padding)
        assert got.dtype == np.dtype(dtype)
        np.testing.assert_array_equal(got, _maxpool_oracle(x, ksize, stride, padding))

    @pytest.mark.parametrize("dtype", [np.int8, np.int32, np.float32])
    @pytest.mark.parametrize("batch", [1, 3, 16])
    def test_batch_matches_per_frame(self, rng, dtype, batch):
        x = _random_maps(rng, (3, 13, 13), dtype, count=batch)
        got = maxpool2d_batch(x, 2, 1)
        assert got.dtype == np.dtype(dtype)
        assert got.shape[0] == batch
        for i in range(batch):
            np.testing.assert_array_equal(got[i], maxpool2d(x[i], 2, 1))

    def test_all_negative_map_never_sees_padding(self, rng):
        # Padding positions must never win the max even when every real
        # value is far below zero (the old kernel guaranteed this via -inf).
        x = np.full((2, 6, 6), -120, dtype=np.int8)
        got = maxpool2d(x, 2, 2)
        assert got.dtype == np.int8
        assert (got == -120).all()


class TestConvLutParity:
    """LUT-gathered code GEMM == dense dequantized-values GEMM, bit for bit."""

    def _codes_and_lut(self, rng, shape, scale=1.0 / 7.0):
        codes = rng.integers(0, 8, size=shape).astype(np.uint8)
        lut = (np.arange(256, dtype=np.float64) * scale).astype(np.float32)
        return codes, lut

    @pytest.mark.parametrize("stride,pad", [(1, 1), (2, 1), (1, 0)])
    def test_single_frame(self, rng, stride, pad):
        codes, lut = self._codes_and_lut(rng, (4, 9, 9))
        weights = rng.normal(size=(6, 4, 3, 3)).astype(np.float32)
        bias = rng.normal(size=6).astype(np.float32)
        via_lut = conv2d(codes, weights, bias, stride=stride, pad=pad, lut=lut)
        dense = conv2d(lut[codes], weights, bias, stride=stride, pad=pad)
        assert via_lut.dtype == dense.dtype == np.float32
        np.testing.assert_array_equal(via_lut, dense)

    @pytest.mark.parametrize("batch", [1, 3, 16])
    def test_batch_matches_single_frame(self, rng, batch):
        codes, lut = self._codes_and_lut(rng, (batch, 3, 7, 7))
        weights = rng.normal(size=(5, 3, 3, 3)).astype(np.float32)
        bias = rng.normal(size=5).astype(np.float32)
        out = conv2d_batch(codes, weights, bias, stride=1, pad=1, lut=lut)
        assert out.shape[0] == batch
        for i in range(batch):
            np.testing.assert_array_equal(
                out[i], conv2d(codes[i], weights, bias, stride=1, pad=1, lut=lut)
            )

    def test_pad_dequantizes_to_exact_zero(self, rng):
        # lut[0] must equal the dense path's zero padding exactly: level 0
        # dequantizes to +0.0 for any scale.
        codes, lut = self._codes_and_lut(rng, (2, 4, 4), scale=0.37)
        weights = rng.normal(size=(3, 2, 3, 3)).astype(np.float32)
        np.testing.assert_array_equal(
            conv2d(codes, weights, stride=1, pad=2, lut=lut),
            conv2d(lut[codes], weights, stride=1, pad=2),
        )


class TestIm2colDtypePreservation:
    """The lowering must carry the input dtype — codes stay narrow."""

    @pytest.mark.parametrize("dtype", [np.uint8, np.int8, np.int32, np.float32])
    @pytest.mark.parametrize("pad", [0, 1])
    def test_single_frame_dtype(self, rng, dtype, pad):
        x = _random_maps(rng, (3, 6, 6), dtype)[0]
        cols = im2col(x, 3, 1, pad)
        assert cols.dtype == np.dtype(dtype)

    @pytest.mark.parametrize("dtype", [np.uint8, np.int32, np.float32])
    def test_batch_dtype_and_frame_identity(self, rng, dtype):
        x = _random_maps(rng, (2, 5, 5), dtype, count=3)
        cols = im2col_batch(x, 3, 2, 1)
        assert cols.dtype == np.dtype(dtype)
        for i in range(3):
            np.testing.assert_array_equal(cols[i], im2col(x[i], 3, 2, 1))

    def test_padding_fill_is_zero_in_input_dtype(self):
        x = np.full((1, 2, 2), 7, dtype=np.uint8)
        cols = im2col(x, 3, 1, 2)
        assert cols.dtype == np.uint8
        assert cols.min() == 0  # padding positions, not wrapped values


class TestToLevelsInPlacePipeline:
    """The buffered to_levels == the old four-temporary expression."""

    @pytest.mark.parametrize("bits,scale", [(3, 1.0 / 7.0), (3, 0.11), (2, 0.5)])
    def test_matches_expression_oracle(self, rng, bits, scale):
        quant = UnsignedUniformQuantizer(bits=bits, scale=scale)
        # Cover negatives (clip at 0), overflow (clip at top), exact ties.
        x = np.concatenate([
            rng.normal(size=500) * quant.max_value,
            np.arange(0, quant.levels + 1) * scale,          # exact levels
            (np.arange(0, quant.levels) + 0.5) * scale,      # halfway ties
        ]).astype(np.float32)
        oracle = np.clip(
            np.floor(x.astype(np.float64) / scale + 0.5), 0, quant.levels
        ).astype(np.int32)
        got = quant.to_levels(x)
        assert got.dtype == np.int32
        np.testing.assert_array_equal(got, oracle)

    def test_input_not_mutated(self, rng):
        quant = UnsignedUniformQuantizer()
        x = rng.normal(size=(4, 5)).astype(np.float32)
        before = x.copy()
        quant.to_levels(x)
        np.testing.assert_array_equal(x, before)


class TestMVTUFloat32ExactPath:
    """1-byte codes take the float32 GEMM; it matches the float64 path exactly."""

    def _mvtu(self, rng, rows=6, cols=20):
        from repro.core.thresholds import ThresholdActivation
        from repro.finn.mvtu import MVTU
        from repro.finn.schedule import Folding

        thresholds = ThresholdActivation(
            np.sort(rng.integers(-30, 31, size=(rows, 7)), axis=1).astype(np.int64),
            rng.choice([-1, 1], size=rows).astype(np.int8),
            bits=3,
        )
        weights = rng.choice([-1, 1], size=(rows, cols))
        return MVTU(weights, thresholds, Folding(1, 1))

    def test_uint8_and_int64_columns_agree(self, rng):
        mvtu = self._mvtu(rng)
        codes = rng.integers(0, 8, size=(20, 57)).astype(np.uint8)
        # uint8 columns satisfy the float32-exactness gate; int64 columns
        # fall back to the float64 GEMM.  Same levels out, bit for bit.
        np.testing.assert_array_equal(
            mvtu.matmat(codes), mvtu.matmat(codes.astype(np.int64))
        )

    def test_matches_integer_oracle(self, rng):
        mvtu = self._mvtu(rng)
        codes = rng.integers(0, 8, size=(20, 31)).astype(np.uint8)
        acc = mvtu.weights_pm1 @ codes.astype(np.int64)
        np.testing.assert_array_equal(
            mvtu.matmat(codes), mvtu.thresholds.apply(acc)
        )


class TestArena:
    """Allocator semantics the executor's liveness release depends on."""

    def test_release_then_reuse_is_a_hit(self):
        arena = Arena()
        a = arena.empty((8192,), np.uint8)
        assert arena.misses == 1 and arena.hits == 0
        assert arena.release(a)
        b = arena.empty((2048,), np.float32)  # 8192 bytes: exact refit
        assert arena.hits == 1 and arena.misses == 1
        assert b.dtype == np.float32 and b.shape == (2048,)

    def test_small_allocations_bypass_the_pool(self):
        arena = Arena()
        a = arena.empty((16,), np.uint8)
        assert not arena.release(a)
        assert arena.stats()["misses"] == 0

    def test_guard_vetoes_recycling_shared_memory(self):
        arena = Arena()
        a = arena.empty((8192,), np.uint8)
        view = a[100:200]
        assert not arena.release(a, guard=[view])
        assert arena.release(a, guard=[np.zeros(4)])  # unrelated guard: fine

    def test_foreign_arrays_are_a_noop(self):
        arena = Arena()
        assert not arena.release(np.zeros(8192, dtype=np.uint8))
        assert not arena.release(None)

    def test_begin_run_lets_outstanding_buffers_escape(self):
        arena = Arena()
        a = arena.empty((8192,), np.uint8)
        a[:] = 7
        arena.begin_run()
        assert not arena.release(a)          # no longer arena-owned
        b = arena.empty((8192,), np.uint8)   # must NOT recycle a's memory
        b[:] = 9
        assert not np.shares_memory(a, b)
        assert (a == 7).all()

    def test_high_water_tracks_simultaneous_live_bytes(self):
        arena = Arena()
        a = arena.empty((8192,), np.uint8)
        b = arena.empty((4096,), np.uint8)
        assert arena.high_water_bytes == 8192 + 4096
        arena.release(a)
        arena.release(b)
        arena.empty((4096,), np.uint8)
        assert arena.high_water_bytes == 8192 + 4096  # monotone

    def test_stats_snapshot_keys(self):
        stats = Arena().stats()
        for key in (
            "hits", "misses", "recycled", "allocated_bytes",
            "high_water_bytes", "free_buffers", "free_bytes",
        ):
            assert key in stats


class TestWorkspaceHook:
    """core kernels draw from whatever allocator the engine installs."""

    def test_plain_numpy_without_installed_allocator(self):
        assert workspace.current() is None
        a = workspace.empty((4, 4), np.int8)
        assert a.shape == (4, 4) and a.dtype == np.int8
        assert not workspace.release(a)

    def test_install_routes_to_arena_and_restores(self):
        arena = Arena()
        with workspace.install(arena):
            assert workspace.current() is arena
            a = workspace.empty((8192,), np.uint8)
            assert arena.stats()["misses"] == 1
            assert workspace.release(a)
            assert arena.stats()["recycled"] == 1
        assert workspace.current() is None

    def test_install_restores_on_exception(self):
        arena = Arena()
        with pytest.raises(RuntimeError):
            with workspace.install(arena):
                raise RuntimeError("step blew up")
        assert workspace.current() is None


class TestExecutorArena:
    """End-to-end: batched runs recycle buffers and stay bit-identical."""

    def _network(self, rng):
        network = Network(zoo.cnv6_config())
        network.initialize(rng)
        return network

    def _fmb(self, rng, network, count):
        return FeatureMapBatch.from_maps([
            FeatureMap(rng.normal(size=network.input_shape).astype(np.float32))
            for _ in range(count)
        ])

    def test_run_reports_arena_and_matches_legacy(self, rng):
        network = self._network(rng)
        fmb = self._fmb(rng, network, 3)
        executor = network.executor()
        out = executor.run(fmb)
        report = executor.last_report
        assert report.arena is not None
        assert report.arena["recycled"] > 0      # liveness releases landed
        legacy = legacy_forward_batch_all(network, fmb)[-1]
        np.testing.assert_array_equal(out.data, legacy.data)

    def test_warm_rerun_hits_the_pool_without_corrupting_results(self, rng):
        network = self._network(rng)
        fmb = self._fmb(rng, network, 2)
        executor = network.executor()
        first = executor.run(fmb)
        first_copy = first.data.copy()
        second = executor.run(fmb)
        # Warm arena: the second run recycles the first run's buffers.
        assert executor.last_report.arena["hits"] > 0
        np.testing.assert_array_equal(second.data, first_copy)
        # The first run's escaped output still owns its memory.
        np.testing.assert_array_equal(first.data, first_copy)

    def test_arena_budget_scales_with_batch(self, rng):
        network = self._network(rng)
        plan = network.plan()
        per_frame = plan.peak_live_bytes()
        assert plan.arena_budget(1) == per_frame
        assert plan.arena_budget(16) == 16 * per_frame
        assert plan.arena_budget(0) == 0
        with pytest.raises(ValueError):
            plan.arena_budget(-1)

    def test_perf_reconciliation(self, rng):
        from repro.perf.memory import arena_reconciliation

        network = self._network(rng)
        executor = network.executor()
        executor.run(self._fmb(rng, network, 4))
        ledger = arena_reconciliation(network, executor.last_report)
        assert ledger["batch"] == 4
        assert ledger["plan_bytes"] == network.plan().arena_budget(4)
        assert ledger["arena_high_water_bytes"] == (
            executor.last_report.arena["high_water_bytes"]
        )
        assert ledger["scratch_bytes"] >= 0
        assert ledger["ratio"] > 0

    def test_reconciliation_requires_arena_snapshot(self, rng):
        from repro.engine.executor import ExecutionReport
        from repro.perf.memory import arena_reconciliation

        with pytest.raises(ValueError, match="arena"):
            arena_reconciliation(self._network(rng), ExecutionReport(batch=0))
