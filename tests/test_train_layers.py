"""Trainable-module, loss and optimizer tests."""

import numpy as np
import pytest

from repro.eval.boxes import Box, GroundTruth
from repro.train.layers import (
    ActQuant,
    Activation,
    BatchNorm2d,
    MaxPool2d,
    QConv2d,
    Sequential,
)
from repro.train.loss import DetectionLoss, cross_entropy, decode_grid_predictions
from repro.train.optimizer import SGD, Adam


class TestQConv2d:
    def test_binary_forward_uses_sign_weights(self, rng):
        conv = QConv2d(2, 3, binary=True, rng=rng)
        x = rng.normal(size=(1, 2, 5, 5)).astype(np.float32)
        y = conv.forward(x)
        eff = conv.effective_weights()
        assert set(np.unique(eff)) <= {-1.0, 1.0}
        from repro.train.functional import conv_forward

        expected, _ = conv_forward(x, eff, conv.bias.value, 1, 1)
        assert np.allclose(y, expected)

    def test_ste_clips_large_weights(self, rng):
        conv = QConv2d(1, 1, ksize=1, pad=0, binary=True, rng=rng)
        conv.weight.value[...] = 2.0  # outside the STE window
        x = np.ones((1, 1, 2, 2), dtype=np.float32)
        y = conv.forward(x)
        conv.backward(np.ones_like(y))
        assert np.all(conv.weight.grad == 0.0)

    def test_float_gradients_accumulate(self, rng):
        conv = QConv2d(1, 1, ksize=1, pad=0, rng=rng)
        x = np.ones((1, 1, 2, 2), dtype=np.float32)
        for _ in range(2):
            y = conv.forward(x)
            conv.backward(np.ones_like(y))
        assert conv.weight.grad[0, 0, 0, 0] == pytest.approx(8.0)


class TestActQuant:
    def test_quantizes_to_levels(self, rng):
        quant = ActQuant(bits=3)
        x = rng.uniform(0, 1, size=(1, 2, 4, 4)).astype(np.float32)
        y = quant.forward(x)
        levels = np.round(y * 7)
        assert np.allclose(y, levels / 7, atol=1e-6)

    def test_ste_window(self):
        quant = ActQuant(bits=3)
        x = np.array([[[[-0.5, 0.5, 1.5]]]], dtype=np.float32)
        quant.forward(x)
        grad = quant.backward(np.ones_like(x))
        assert grad.ravel().tolist() == [0.0, 1.0, 0.0]


class TestBatchNormModule:
    def test_running_stats_converge(self, rng):
        bn = BatchNorm2d(2, momentum=0.5)
        for _ in range(20):
            bn.forward(rng.normal(3.0, 2.0, size=(16, 2, 4, 4)).astype(np.float32))
        assert np.allclose(bn.running_mean, 3.0, atol=0.5)
        assert np.allclose(bn.running_var, 4.0, atol=1.0)

    def test_inference_uses_running_stats(self, rng):
        bn = BatchNorm2d(2)
        bn.running_mean[...] = 1.0
        bn.running_var[...] = 4.0
        x = np.full((1, 2, 2, 2), 3.0, dtype=np.float32)
        y = bn.forward(x, training=False)
        assert np.allclose(y, (3.0 - 1.0) / 2.0, atol=1e-3)


class TestSequentialEndToEnd:
    def test_backward_reaches_input(self, rng):
        net = Sequential(
            QConv2d(1, 4, rng=rng),
            BatchNorm2d(4),
            Activation("relu"),
            MaxPool2d(2, 2),
            QConv2d(4, 2, ksize=1, pad=0, rng=rng),
        )
        x = rng.normal(size=(2, 1, 8, 8)).astype(np.float32)
        y = net.forward(x)
        assert y.shape == (2, 2, 4, 4)
        grad_x = net.backward(np.ones_like(y))
        assert grad_x.shape == x.shape

    def test_params_collected(self, rng):
        net = Sequential(QConv2d(1, 2, rng=rng), BatchNorm2d(2))
        names = [p.name for p in net.params()]
        assert names == ["weight", "bias", "gamma", "beta"]


class TestDetectionLoss:
    def _target(self):
        return [[GroundTruth(1, Box(0.55, 0.55, 0.3, 0.3))]]

    def test_loss_positive_and_grad_shape(self, rng):
        loss_fn = DetectionLoss(n_classes=3)
        preds = rng.normal(size=(1, 8, 4, 4)).astype(np.float32)
        loss, grad = loss_fn(preds, self._target())
        assert loss > 0
        assert grad.shape == preds.shape

    def test_gradient_matches_finite_difference(self, rng):
        loss_fn = DetectionLoss(n_classes=3)
        preds = rng.normal(size=(1, 8, 4, 4)).astype(np.float64)
        targets = self._target()
        _, grad = loss_fn(preds, targets)
        eps = 1e-5
        for index in [(0, 0, 2, 2), (0, 4, 2, 2), (0, 6, 2, 2), (0, 4, 0, 0)]:
            bumped = preds.copy()
            bumped[index] += eps
            plus, _ = loss_fn(bumped, targets)
            bumped[index] -= 2 * eps
            minus, _ = loss_fn(bumped, targets)
            numeric = (plus - minus) / (2 * eps)
            assert grad[index] == pytest.approx(numeric, abs=1e-3)

    def test_perfect_prediction_low_loss(self):
        loss_fn = DetectionLoss(n_classes=3)
        preds = np.zeros((1, 8, 4, 4), dtype=np.float32)
        preds[0, 4] = -20.0  # no object anywhere...
        box = Box((2 + 0.5) / 4, (2 + 0.5) / 4, 0.5, 0.5)
        # ...except the responsible cell.
        preds[0, 4, 2, 2] = 20.0
        preds[0, 0, 2, 2] = 0.0  # sigmoid(0) = .5 = tx target
        preds[0, 1, 2, 2] = 0.0
        preds[0, 2, 2, 2] = 0.0  # sigmoid(0) = .5 = width target
        preds[0, 3, 2, 2] = 0.0
        preds[0, 5 + 1, 2, 2] = 20.0  # class 1
        loss, _ = loss_fn(preds, [[GroundTruth(1, box)]])
        assert loss < 1e-3

    def test_shape_validation(self, rng):
        loss_fn = DetectionLoss(n_classes=3)
        with pytest.raises(ValueError, match="predictions"):
            loss_fn(np.zeros((1, 7, 4, 4), dtype=np.float32), [[]])

    def test_decode_roundtrip(self):
        preds = np.full((8, 4, 4), -20.0, dtype=np.float32)
        preds[4, 1, 3] = 20.0
        preds[5 + 2, 1, 3] = 20.0
        preds[0, 1, 3] = 0.0
        preds[1, 1, 3] = 0.0
        preds[2, 1, 3] = 0.0
        preds[3, 1, 3] = 0.0
        dets = decode_grid_predictions(preds, n_classes=3, threshold=0.5)
        assert len(dets) == 1
        assert dets[0].class_id == 2
        assert dets[0].box.x == pytest.approx(3.5 / 4)
        assert dets[0].box.w == pytest.approx(0.5)


class TestCrossEntropy:
    def test_matches_manual(self, rng):
        logits = rng.normal(size=(4, 5))
        labels = np.array([0, 1, 2, 3])
        loss, grad = cross_entropy(logits, labels)
        probs = np.exp(logits - logits.max(axis=1, keepdims=True))
        probs /= probs.sum(axis=1, keepdims=True)
        expected = -np.mean(np.log(probs[np.arange(4), labels]))
        assert loss == pytest.approx(expected)
        assert grad.sum() == pytest.approx(0.0, abs=1e-6)


class TestOptimizers:
    def _quadratic_param(self):
        from repro.train.layers import Param

        return Param(np.array([5.0, -3.0], dtype=np.float32))

    def test_sgd_descends(self):
        param = self._quadratic_param()
        optimizer = SGD([param], lr=0.1, momentum=0.9)
        for _ in range(100):
            optimizer.zero_grad()
            param.grad[...] = 2 * param.value  # d/dx x^2
            optimizer.step()
        assert np.abs(param.value).max() < 0.1

    def test_adam_descends(self):
        param = self._quadratic_param()
        optimizer = Adam([param], lr=0.2)
        for _ in range(100):
            optimizer.zero_grad()
            param.grad[...] = 2 * param.value
            optimizer.step()
        assert np.abs(param.value).max() < 0.1

    def test_weight_decay_shrinks(self):
        param = self._quadratic_param()
        optimizer = SGD([param], lr=0.1, momentum=0.0, weight_decay=1.0)
        optimizer.zero_grad()
        optimizer.step()  # gradient zero: only decay acts
        assert np.abs(param.value[0]) < 5.0
