"""Translation validation: symbolic evaluation, witnesses, TV-* rules."""

from dataclasses import replace

import numpy as np
import pytest

from repro.analyze.findings import ERROR, WARNING
from repro.analyze.tv import (
    symbolic_eval,
    tv_findings,
    validate_pass,
    validate_pipeline,
)
from repro.isa import (
    PIPELINES,
    PlanCache,
    TranslationValidationError,
    compile_network,
    decode,
    encode,
    frontend,
)
from repro.isa.ops import (
    CONV,
    GEMM,
    LOAD_INPUT,
    PART_ACC,
    PART_WHOLE,
    STORE_OUTPUT,
    THRESHOLD,
    Instruction,
    Program,
)
from repro.isa.passes import PassManager, default_manager
from repro.isa.passes.witness import (
    AX_DATAFLOW_COMMUTE,
    AX_REQUANT_FOLD,
    Rewrite,
    Witness,
)
from repro.nn import zoo
from repro.nn.network import Network

ZOO = {
    "tiny": zoo.tiny_yolo_config,
    "tincy": zoo.tincy_yolo_config,
    "mlp4": zoo.mlp4_config,
    "cnv6": zoo.cnv6_config,
}


def _network(name: str):
    network = Network(ZOO[name]())
    network.initialize(np.random.default_rng(0))
    return network


def _tiny_program() -> Program:
    return Program(
        network_name="synthetic",
        weights_sha256="",
        cfg_sha256="",
        input_shape=(1, 2, 2),
        output_shape=(1, 2, 2),
        instructions=(
            Instruction(LOAD_INPUT, 0, shape=(1, 2, 2)),
            Instruction(
                GEMM, 1, srcs=(0,), shape=(1, 2, 2),
                ltype="connected", layer=0,
            ),
            Instruction(STORE_OUTPUT, 1, shape=(1, 2, 2)),
        ),
    )


def _errors(findings):
    return [f for f in findings if f.severity == ERROR]


class TestSymbolicEval:
    def test_output_names_the_producing_chain(self):
        state = symbolic_eval(_tiny_program())
        assert not state.findings
        assert state.output == (
            "app", (GEMM, 0, PART_WHOLE, ()), (("in", 0),)
        )

    def test_reading_an_undefined_slot_is_tv_undef(self):
        program = _tiny_program()
        broken = replace(
            program,
            instructions=(
                program.instructions[0],
                replace(program.instructions[1], srcs=(5,)),
                program.instructions[2],
            ),
        )
        state = symbolic_eval(broken)
        assert any(f.rule == "TV-UNDEF" for f in state.findings)

    def test_premature_release_is_tv_undef(self):
        program = _tiny_program()
        broken = replace(
            program,
            instructions=(
                replace(program.instructions[0], releases=(0,)),
            ) + program.instructions[1:],
        )
        state = symbolic_eval(broken)
        assert any(f.rule == "TV-UNDEF" for f in state.findings)

    def test_missing_store_output_is_tv_undef(self):
        program = replace(
            _tiny_program(), instructions=_tiny_program().instructions[:-1]
        )
        state = symbolic_eval(program)
        assert any(f.rule == "TV-UNDEF" for f in state.findings)


class TestValidatePass:
    def test_identity_pass_discharges_trivially(self):
        program = _tiny_program()
        assert validate_pass(program, program, "noop", Witness("noop")) == []

    def test_every_real_pass_validates_on_the_zoo(self):
        for name in sorted(ZOO):
            network = _network(name)
            program = frontend(network, name=name)
            _final, findings = validate_pipeline(
                program, PIPELINES[2], network=network, name=name
            )
            assert not _errors(findings), (name, findings)

    def test_dropped_instruction_is_refuted(self):
        network = _network("mlp4")
        program = frontend(network, name="mlp4")
        instrs = list(program.instructions)
        del instrs[2]
        broken = replace(program, instructions=tuple(instrs))
        findings = validate_pass(
            program, broken, "bogus", Witness("bogus"), network=network
        )
        assert any(f.rule == "TV-UNDEF" for f in _errors(findings))

    def test_relabeled_layer_is_refuted_as_tv_output(self):
        network = _network("mlp4")
        program = frontend(network, name="mlp4")
        instrs = list(program.instructions)
        for position, instr in enumerate(instrs):
            if instr.is_compute and instr.layer >= 0:
                instrs[position] = replace(instr, layer=instr.layer + 1)
                break
        broken = replace(program, instructions=tuple(instrs))
        findings = validate_pass(
            program, broken, "bogus", Witness("bogus"), network=network
        )
        assert any(f.rule == "TV-OUTPUT" for f in _errors(findings))

    def test_undeclared_fold_is_refuted(self):
        # fold-requant without its witness: the rewrite is real but
        # undeclared, so output equivalence must fail.
        from repro.isa.passes.requant import fold_requant

        network = _network("tincy")
        program = frontend(network, name="tincy")
        folded, _detail, witness = fold_requant(program, network)
        assert witness.rewrites  # tincy's conv tower splits statically
        findings = validate_pass(
            program, folded, "fold-requant", Witness("fold-requant"),
            network=network,
        )
        assert any(f.rule == "TV-OUTPUT" for f in _errors(findings))
        # With the witness the same rewrite is proved.
        assert not _errors(
            validate_pass(
                program, folded, "fold-requant", witness, network=network
            )
        )

    def test_overclaiming_witness_is_a_tv_witness_warning(self):
        from repro.isa.passes.requant import fold_requant

        network = _network("tincy")
        program = frontend(network, name="tincy")
        folded, _detail, witness = fold_requant(program, network)
        # Claim the folds on a program that no longer contains any split
        # to fold: the declared rewrites cannot fire anywhere.
        findings = validate_pass(
            folded, folded, "fold-requant", witness, network=network
        )
        assert not _errors(findings)
        assert any(
            f.rule == "TV-WITNESS" and f.severity == WARNING
            for f in findings
        )

    def test_malformed_axiom_instantiation_is_tv_axiom(self):
        witness = Witness(
            "bogus",
            rewrites=(
                Rewrite(
                    AX_REQUANT_FOLD,
                    layers=(0,),
                    opcodes=(CONV, THRESHOLD),
                    part=PART_WHOLE,  # not a split half
                ),
            ),
        )
        program = _tiny_program()
        findings = validate_pass(program, program, "bogus", witness)
        assert any(f.rule == "TV-AXIOM" for f in _errors(findings))

    def test_structural_axiom_takes_no_rewrites(self):
        witness = Witness(
            "bogus",
            rewrites=(Rewrite(AX_DATAFLOW_COMMUTE, layers=(0,)),),
        )
        program = _tiny_program()
        findings = validate_pass(program, program, "bogus", witness)
        assert any(f.rule == "TV-AXIOM" for f in _errors(findings))

    def test_acc_fold_on_ineligible_layer_is_tv_axiom(self):
        network = _network("mlp4")  # binary gemm tower: no .acc splits
        witness = Witness(
            "bogus",
            rewrites=(
                Rewrite(
                    AX_REQUANT_FOLD,
                    layers=(0,),
                    opcodes=(GEMM, THRESHOLD),
                    part=PART_ACC,
                ),
            ),
        )
        program = frontend(network, name="mlp4")
        findings = validate_pass(
            program, program, "bogus", witness, network=network
        )
        assert any(f.rule == "TV-AXIOM" for f in _errors(findings))


class TestManagerIntegration:
    def test_bogus_pass_raises_before_any_weights_run(self):
        network = _network("mlp4")
        program = frontend(network, name="mlp4")

        def bogus(prog, net):
            instrs = list(prog.instructions)
            del instrs[2]
            return (
                replace(prog, instructions=tuple(instrs)),
                "sabotage",
                Witness("bogus"),
            )

        manager = PassManager()
        manager.register("bogus", bogus)
        with pytest.raises(TranslationValidationError) as excinfo:
            manager.run(
                program, ("bogus",), network=network, verify=False,
                validate=True,
            )
        assert excinfo.value.findings
        assert any(
            f.rule.startswith("TV-") for f in excinfo.value.findings
        )

    def test_real_pipeline_validates_under_the_manager(self):
        network = _network("tincy")
        program = frontend(network, name="tincy")
        manager = default_manager()
        out, stats = manager.run(
            program, PIPELINES[2], network=network, validate=True
        )
        assert [s.name for s in stats] == list(PIPELINES[2])
        assert all(s.witness is not None for s in stats)


class TestProvenance:
    def test_compile_stamps_and_roundtrips_tv_ok(self):
        network = _network("mlp4")
        program, _stats = compile_network(network, name="mlp4", level=2)
        assert program.tv_ok  # validation defaults on at -O2
        assert decode(encode(program)).tv_ok

        unvalidated, _stats = compile_network(
            network, name="mlp4", level=2, validate=False
        )
        assert not unvalidated.tv_ok
        assert not decode(encode(unvalidated)).tv_ok

    def test_cache_refuses_unvalidated_artifacts(self, tmp_path):
        network = _network("mlp4")
        cache = PlanCache(str(tmp_path))
        unvalidated, _stats = compile_network(
            network, name="mlp4", level=2, validate=False
        )
        cache.store(unvalidated)

        program, hit = cache.get_or_compile(network, name="mlp4", opt_level=2)
        assert not hit  # admission refused: tv_ok missing
        assert program.tv_ok

        program, hit = cache.get_or_compile(network, name="mlp4", opt_level=2)
        assert hit and program.tv_ok  # the replacement artifact serves

    def test_cache_serves_unvalidated_when_validation_is_off(self, tmp_path):
        network = _network("mlp4")
        cache = PlanCache(str(tmp_path))
        unvalidated, _stats = compile_network(
            network, name="mlp4", level=2, validate=False
        )
        cache.store(unvalidated)
        program, hit = cache.get_or_compile(
            network, name="mlp4", opt_level=2, validate=False
        )
        assert hit and not program.tv_ok


class TestTvFindings:
    def test_zoo_is_clean_at_every_level(self):
        for name in ("mlp4", "cnv6"):
            findings = tv_findings(_network(name), name=name)
            assert not _errors(findings), (name, findings)
