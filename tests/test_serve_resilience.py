"""Unit tests for the circuit breaker + fabric watchdog (virtual time only)."""

import pytest

from repro.faults import FabricHang, FabricTimeout
from repro.serve.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    USE_FABRIC,
    USE_PROBE,
    USE_REFERENCE,
    CircuitBreaker,
    FabricWatchdog,
)
from repro.util.clock import VirtualClock


class TestCircuitBreaker:
    def test_starts_closed_and_routes_fabric(self, virtual_clock):
        breaker = CircuitBreaker(clock=virtual_clock)
        assert breaker.state == CLOSED
        assert breaker.acquire() == USE_FABRIC

    def test_trips_after_threshold_consecutive_failures(self, virtual_clock):
        breaker = CircuitBreaker(threshold=3, clock=virtual_clock)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.trips == 1
        assert breaker.acquire() == USE_REFERENCE

    def test_success_resets_the_consecutive_count(self, virtual_clock):
        breaker = CircuitBreaker(threshold=2, clock=virtual_clock)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED  # never two in a row

    def test_half_open_after_probe_delay(self, virtual_clock):
        breaker = CircuitBreaker(
            threshold=1, probe_after_s=5.0, clock=virtual_clock
        )
        breaker.record_failure()
        assert breaker.acquire() == USE_REFERENCE
        virtual_clock.advance(5.0)
        assert breaker.acquire() == USE_PROBE
        assert breaker.state == HALF_OPEN

    def test_only_one_probe_in_flight(self, virtual_clock):
        breaker = CircuitBreaker(
            threshold=1, probe_after_s=0.0, clock=virtual_clock
        )
        breaker.record_failure()
        assert breaker.acquire() == USE_PROBE
        assert breaker.acquire() == USE_REFERENCE  # the probe is out already
        assert breaker.probes == 1

    def test_probe_success_closes(self, virtual_clock):
        breaker = CircuitBreaker(
            threshold=1, probe_after_s=0.0, clock=virtual_clock
        )
        breaker.record_failure()
        assert breaker.acquire() == USE_PROBE
        breaker.record_success(probe=True)
        assert breaker.state == CLOSED
        assert breaker.acquire() == USE_FABRIC

    def test_probe_failure_reopens_and_rearms(self, virtual_clock):
        breaker = CircuitBreaker(
            threshold=1, probe_after_s=2.0, clock=virtual_clock
        )
        breaker.record_failure()
        virtual_clock.advance(2.0)
        assert breaker.acquire() == USE_PROBE
        breaker.record_failure(probe=True)
        assert breaker.state == OPEN
        # The probe timer restarts from the failed probe, not the old trip.
        assert breaker.acquire() == USE_REFERENCE
        virtual_clock.advance(2.0)
        assert breaker.acquire() == USE_PROBE

    def test_transition_transcript(self, virtual_clock):
        breaker = CircuitBreaker(
            threshold=1, probe_after_s=1.0, clock=virtual_clock
        )
        breaker.record_failure()
        virtual_clock.advance(1.0)
        breaker.acquire()
        breaker.record_success(probe=True)
        assert [(old, new) for _, old, new, _ in breaker.transitions] == [
            (CLOSED, OPEN),
            (OPEN, HALF_OPEN),
            (HALF_OPEN, CLOSED),
        ]

    def test_on_transition_callback(self, virtual_clock):
        seen = []
        breaker = CircuitBreaker(
            threshold=1,
            clock=virtual_clock,
            on_transition=lambda old, new, reason, now: seen.append((old, new)),
        )
        breaker.record_failure()
        assert seen == [(CLOSED, OPEN)]

    def test_validation(self, virtual_clock):
        with pytest.raises(ValueError, match="threshold"):
            CircuitBreaker(threshold=0, clock=virtual_clock)
        with pytest.raises(ValueError, match="probe_after_s"):
            CircuitBreaker(probe_after_s=-1.0, clock=virtual_clock)


class TestFabricWatchdog:
    def test_passes_results_through(self, virtual_clock):
        watchdog = FabricWatchdog(timeout_s=1.0, clock=virtual_clock)
        assert watchdog.call(lambda: 7) == 7
        assert watchdog.timeouts == 0 and watchdog.overruns == 0

    def test_converts_hang_to_timeout(self, virtual_clock):
        watchdog = FabricWatchdog(timeout_s=1.0, clock=virtual_clock)

        def hung():
            virtual_clock.advance(10.0)
            raise FabricHang("injected", hang_s=10.0)

        with pytest.raises(FabricTimeout) as excinfo:
            watchdog.call(hung)
        assert isinstance(excinfo.value.__cause__, FabricHang)
        assert watchdog.timeouts == 1

    def test_slow_but_completed_call_is_an_overrun_not_a_failure(
        self, virtual_clock
    ):
        watchdog = FabricWatchdog(timeout_s=1.0, clock=virtual_clock)

        def slow():
            virtual_clock.advance(3.0)
            return "late but right"

        assert watchdog.call(slow) == "late but right"
        assert watchdog.overruns == 1
        assert watchdog.timeouts == 0

    def test_validation(self, virtual_clock):
        with pytest.raises(ValueError, match="timeout_s"):
            FabricWatchdog(timeout_s=0.0, clock=virtual_clock)


class TestVirtualClock:
    def test_advance_and_sleep(self):
        clock = VirtualClock(start=1.0)
        assert clock() == 1.0
        clock.advance(0.5)
        clock.sleep(0.25)
        assert clock() == 1.75

    def test_time_only_moves_forward(self):
        with pytest.raises(ValueError, match="forward"):
            VirtualClock().advance(-0.1)
