"""W1A1 dense fabric stages: sign thresholds, MVTU execution, end-to-end.

The headline test trains a miniature binary MLP (the MLP-4 structure) on
glyph data, exports it layer by layer onto the simulated fabric and checks
the fabric classifier predicts *identically* to the trained float-emulated
network — the full FINN story for the Table II show cases.
"""

import numpy as np
import pytest

from repro.core.tensor import FeatureMap
from repro.finn.dense import (
    MVTUDenseLayer,
    compile_dense_stage,
    derive_sign_thresholds,
)
from repro.finn.mvtu import MVTU, Folding
from repro.nn.config import Section
from repro.nn.layers.connected import ConnectedLayer


def _bn(rng, n):
    return (
        rng.uniform(0.3, 2.0, size=n) * rng.choice([-1.0, 1.0], size=n),
        rng.normal(size=n),
        rng.normal(size=n) * 2,
        rng.uniform(0.3, 2.0, size=n),
    )


class TestSignThresholds:
    def test_matches_float_pipeline(self, rng):
        n = 16
        gamma, beta, mean, var = _bn(rng, n)
        ta = derive_sign_thresholds(gamma, beta, mean, var, in_scale=1.0)
        acc = rng.integers(-200, 200, size=(n, 64))
        got = ta.apply(acc)
        y = (
            gamma[:, None] * (acc - mean[:, None]) / np.sqrt(var[:, None] + 1e-6)
            + beta[:, None]
        )
        expected = (y >= 0).astype(np.int32)
        assert np.array_equal(got, expected)

    def test_zero_gamma(self):
        ta = derive_sign_thresholds(
            np.array([0.0, 0.0]),
            np.array([1.0, -1.0]),
            np.zeros(2),
            np.ones(2),
        )
        got = ta.apply(np.array([[-5, 5], [-5, 5]]))
        assert got[0].tolist() == [1, 1]
        assert got[1].tolist() == [0, 0]

    def test_single_threshold_per_neuron(self, rng):
        gamma, beta, mean, var = _bn(rng, 4)
        ta = derive_sign_thresholds(gamma, beta, mean, var)
        assert ta.thresholds.shape == (4, 1)
        assert ta.bits == 1


class TestMVTUDenseLayer:
    def _layer(self, rng, inputs=32, outputs=8):
        weights = rng.choice([-1, 1], size=(outputs, inputs))
        gamma, beta, mean, var = _bn(rng, outputs)
        thresholds = derive_sign_thresholds(gamma, beta, mean, var)
        mvtu = MVTU(weights, thresholds, Folding(4, 8))
        return MVTUDenseLayer(mvtu, inputs=inputs), (weights, gamma, beta, mean, var)

    def test_matches_bipolar_reference(self, rng):
        layer, (weights, gamma, beta, mean, var) = self._layer(rng)
        bits = rng.integers(0, 2, size=32)
        out = layer.forward(FeatureMap(bits.reshape(-1, 1, 1)))
        acc = weights @ (2 * bits - 1)
        y = gamma * (acc - mean) / np.sqrt(var + 1e-6) + beta
        assert np.array_equal(out.data.ravel(), (y >= 0).astype(np.int32))

    def test_rejects_non_binary_levels(self, rng):
        layer, _ = self._layer(rng)
        with pytest.raises(ValueError, match="0,1"):
            layer.forward(FeatureMap(np.full((32, 1, 1), 3)))

    def test_rejects_wrong_size(self, rng):
        layer, _ = self._layer(rng)
        with pytest.raises(ValueError, match="inputs"):
            layer.forward(FeatureMap(np.zeros((16, 1, 1), dtype=np.int64)))

    def test_cycles_follow_folding(self, rng):
        layer, _ = self._layer(rng, inputs=64, outputs=16)
        assert layer.cycles() == Folding(4, 8).fold(16, 64)

    def test_requires_1bit_thresholds(self, rng):
        from repro.core.thresholds import ThresholdActivation

        thresholds = ThresholdActivation(
            np.zeros((4, 7), dtype=np.int64), np.ones(4, dtype=np.int8), bits=3
        )
        mvtu = MVTU(rng.choice([-1, 1], size=(4, 8)), thresholds, Folding(1, 1))
        with pytest.raises(ValueError, match="1-bit"):
            MVTUDenseLayer(mvtu, inputs=8)


class TestCompileDenseStage:
    def _connected(self, rng, inputs=20, outputs=6):
        layer = ConnectedLayer(
            Section(
                "connected",
                {
                    "output": str(outputs),
                    "activation": "sign",
                    "binary": "1",
                    "batch_normalize": "1",
                },
            )
        )
        layer.init((inputs, 1, 1))
        layer.initialize(rng)
        gamma, beta, mean, var = _bn(rng, outputs)
        layer.scales = gamma.astype(np.float32)
        layer.biases = beta.astype(np.float32)
        layer.rolling_mean = mean.astype(np.float32)
        layer.rolling_var = var.astype(np.float32)
        return layer

    def test_equivalence_with_darknet_layer(self, rng):
        layer = self._connected(rng)
        stage = compile_dense_stage(layer, Folding(2, 4))
        bipolar = rng.choice([-1.0, 1.0], size=(20, 1, 1)).astype(np.float32)
        float_out = layer.forward(FeatureMap(bipolar))
        bits = ((bipolar + 1) / 2).astype(np.int64)
        fabric_out = stage.forward(FeatureMap(bits))
        # float path emits {-1,+1}; fabric emits {0,1}: same information.
        assert np.array_equal(
            (float_out.data.ravel() > 0).astype(np.int32),
            fabric_out.data.ravel(),
        )

    def test_guards(self, rng):
        layer = self._connected(rng)
        layer.binary = False
        with pytest.raises(ValueError, match="binary"):
            compile_dense_stage(layer, Folding(1, 1))


class TestEndToEndMLP:
    def test_trained_binary_mlp_runs_on_fabric_identically(self):
        """Train a mini MLP-4 (W1A1), export to fabric stages, compare."""
        from repro.data.classify import mnist_like
        from repro.train.classify import (
            binarize_images,
            mini_mlp,
            train_classifier,
        )
        from repro.train.dense_layers import BatchNorm1d, QLinear

        dataset = mnist_like(seed=5)
        model = mini_mlp(hidden=32, n_hidden_layers=2, binary=True, seed=3)
        result = train_classifier(model, dataset, steps=120, batch_size=32)
        assert result.accuracy > 0.6  # well above 10% chance

        # Export: pair each hidden QLinear with its BatchNorm1d.
        modules = model.modules
        linears = [m for m in modules if isinstance(m, QLinear)]
        bns = [m for m in modules if isinstance(m, BatchNorm1d)]
        stages = []
        for linear, bn in zip(linears[:-1], bns):
            thresholds = derive_sign_thresholds(
                bn.gamma.value, bn.beta.value,
                bn.running_mean, bn.running_var, eps=bn.eps,
            )
            mvtu = MVTU(linear.effective_weights(), thresholds, Folding(4, 8))
            stages.append(MVTUDenseLayer(mvtu, inputs=linear.weight.value.shape[1]))
        head = linears[-1]
        head_weights = head.effective_weights().astype(np.int64)
        head_bias = head.bias.value

        images, labels = dataset.batch(10_000, 64)
        bipolar = binarize_images(images)
        expected = model.forward(bipolar, training=False).argmax(axis=1)

        got = []
        for image in bipolar:
            bits = ((image.reshape(-1) + 1) / 2).astype(np.int64)
            fm = FeatureMap(bits.reshape(-1, 1, 1))
            for stage in stages:
                fm = stage.forward(fm)
            bipolar_hidden = 2 * fm.data.ravel().astype(np.int64) - 1
            logits = head_weights @ bipolar_hidden + head_bias
            got.append(int(np.argmax(logits)))
        assert np.array_equal(np.asarray(got), expected)
