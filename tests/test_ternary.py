"""Ternary-weight support (§II related work: Li et al., Prost-Boucle et al.)."""

import numpy as np
import pytest

from repro.core.tensor import FeatureMap
from repro.nn.config import Section
from repro.nn.layers.convolutional import ConvolutionalLayer
from repro.train.layers import QConv2d


def make_conv(**options):
    defaults = {
        "filters": "4",
        "size": "3",
        "stride": "1",
        "pad": "1",
        "activation": "linear",
        "batch_normalize": "0",
    }
    defaults.update({k: str(v) for k, v in options.items()})
    return ConvolutionalLayer(Section("convolutional", defaults))


class TestTernaryConvLayer:
    def test_effective_weights_three_levels(self, rng):
        layer = make_conv(ternary=1)
        layer.init((3, 6, 6))
        layer.initialize(rng)
        eff = layer.effective_weights()
        levels = np.unique(eff)
        assert len(levels) == 3
        assert 0.0 in levels
        assert levels[0] == -levels[-1]  # symmetric +-scale

    def test_twn_scale_is_mean_of_surviving_weights(self, rng):
        from repro.core.quantize import TernaryQuantizer

        layer = make_conv(ternary=1)
        layer.init((3, 6, 6))
        layer.initialize(rng)
        quantizer = TernaryQuantizer.from_weights(layer.weights)
        surviving = np.abs(layer.weights) > quantizer.threshold
        expected = float(np.mean(np.abs(layer.weights[surviving])))
        assert quantizer.scale == pytest.approx(expected)

    def test_binary_and_ternary_mutually_exclusive(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            make_conv(binary=1, ternary=1)

    def test_forward_uses_ternary_weights(self, rng):
        layer = make_conv(ternary=1)
        layer.init((2, 5, 5))
        layer.initialize(rng)
        x = rng.normal(size=(2, 5, 5)).astype(np.float32)
        out = layer.forward(FeatureMap(x)).data
        from repro.core.ops import conv2d

        expected = conv2d(x, layer.effective_weights(), layer.biases, 1, 1)
        assert np.allclose(out, expected, atol=1e-5)

    def test_ternary_closer_to_float_than_binary(self, rng):
        """The 'moderate retreat' claim: ternary approximates the float
        convolution better than full binarization (per-output correlation)."""
        float_layer = make_conv()
        float_layer.init((4, 12, 12))
        float_layer.initialize(rng)
        x = rng.normal(size=(4, 12, 12)).astype(np.float32)
        reference = float_layer.forward(FeatureMap(x)).data

        def correlation(flag):
            layer = make_conv(**{flag: 1})
            layer.init((4, 12, 12))
            layer.weights = float_layer.weights.copy()
            out = layer.forward(FeatureMap(x)).data
            a, b = out.ravel(), reference.ravel()
            return float(np.corrcoef(a, b)[0, 1])

        assert correlation("ternary") > correlation("binary")


class TestTernaryTraining:
    def test_qconv_ternary_forward_and_ste(self, rng):
        conv = QConv2d(2, 3, ternary=True, rng=rng)
        x = rng.normal(size=(1, 2, 6, 6)).astype(np.float32)
        y = conv.forward(x)
        assert len(np.unique(conv.effective_weights())) == 3
        conv.backward(np.ones_like(y))
        assert np.any(conv.weight.grad != 0)

    def test_mutually_exclusive(self, rng):
        with pytest.raises(ValueError, match="mutually exclusive"):
            QConv2d(1, 1, binary=True, ternary=True, rng=rng)

    def test_ste_clips(self, rng):
        conv = QConv2d(1, 1, ksize=1, pad=0, ternary=True, rng=rng)
        conv.weight.value[...] = 5.0
        y = conv.forward(np.ones((1, 1, 2, 2), dtype=np.float32))
        conv.backward(np.ones_like(y))
        assert np.all(conv.weight.grad == 0)
