"""Reference layer-operation tests."""

import numpy as np
import pytest

from repro.core.ops import (
    batchnorm_inference,
    conv2d,
    fully_connected,
    leaky_relu,
    maxpool2d,
    maxpool2d_argmax,
    maxpool2d_backward,
    relu,
    sigmoid,
    softmax,
)


def _naive_conv(x, w, stride, pad):
    c_out, c_in, k, _ = w.shape
    c, h, width = x.shape
    padded = np.zeros((c, h + 2 * pad, width + 2 * pad))
    padded[:, pad : pad + h, pad : pad + width] = x
    out_h = (h + 2 * pad - k) // stride + 1
    out_w = (width + 2 * pad - k) // stride + 1
    out = np.zeros((c_out, out_h, out_w))
    for co in range(c_out):
        for oy in range(out_h):
            for ox in range(out_w):
                patch = padded[:, oy * stride : oy * stride + k, ox * stride : ox * stride + k]
                out[co, oy, ox] = np.sum(patch * w[co])
    return out


class TestConv2d:
    @pytest.mark.parametrize("stride,pad", [(1, 1), (2, 1), (1, 0), (2, 0)])
    def test_matches_naive(self, rng, stride, pad):
        x = rng.normal(size=(3, 8, 8))
        w = rng.normal(size=(5, 3, 3, 3))
        got = conv2d(x, w, stride=stride, pad=pad)
        assert np.allclose(got, _naive_conv(x, w, stride, pad), atol=1e-9)

    def test_bias_broadcast(self, rng):
        x = rng.normal(size=(2, 4, 4))
        w = rng.normal(size=(3, 2, 1, 1))
        bias = np.array([1.0, 2.0, 3.0])
        got = conv2d(x, w, bias=bias)
        base = conv2d(x, w)
        for ch in range(3):
            assert np.allclose(got[ch] - base[ch], bias[ch])

    def test_one_by_one_kernel_is_channel_mix(self, rng):
        x = rng.normal(size=(4, 5, 5))
        w = rng.normal(size=(2, 4, 1, 1))
        got = conv2d(x, w)
        expected = np.einsum("oc,chw->ohw", w[:, :, 0, 0], x)
        assert np.allclose(got, expected, atol=1e-9)

    def test_channel_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            conv2d(rng.normal(size=(3, 4, 4)), rng.normal(size=(2, 5, 3, 3)))

    def test_tiny_yolo_first_layer_geometry(self, rng):
        """416x416x3 -> conv 16@3x3 s1 p1 -> 416x416x16 (Table I layer 1)."""
        x = rng.normal(size=(3, 416, 416)).astype(np.float32)
        w = rng.normal(size=(16, 3, 3, 3)).astype(np.float32)
        assert conv2d(x, w, stride=1, pad=1).shape == (16, 416, 416)

    def test_tincy_first_layer_stride_two(self, rng):
        """Modification (d): stride 2 halves the map — 208x208 out."""
        x = rng.normal(size=(3, 416, 416)).astype(np.float32)
        w = rng.normal(size=(16, 3, 3, 3)).astype(np.float32)
        assert conv2d(x, w, stride=2, pad=1).shape == (16, 208, 208)


class TestMaxpool:
    def test_two_by_two_stride_two(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 4, 4)
        got = maxpool2d(x, 2, 2)
        assert got.shape == (1, 2, 2)
        assert got[0].tolist() == [[5, 7], [13, 15]]

    def test_stride_one_keeps_size(self, rng):
        """Darknet's stride-1 maxpool (Tiny YOLO layer 12) keeps 13x13."""
        x = rng.normal(size=(2, 13, 13))
        assert maxpool2d(x, 2, 1).shape == (2, 13, 13)

    def test_darknet_geometry_416(self, rng):
        x = rng.normal(size=(1, 416, 416))
        assert maxpool2d(x, 2, 2).shape == (1, 208, 208)

    def test_padding_uses_minus_inf_not_zero(self):
        # All-negative input: zero padding would corrupt the edge maxima.
        x = np.full((1, 3, 3), -5.0)
        got = maxpool2d(x, 2, 1)
        assert np.all(got == -5.0)

    def test_argmax_consistent_with_values(self, rng):
        x = rng.normal(size=(3, 8, 8))
        values, arg = maxpool2d_argmax(x, 2, 2)
        assert np.array_equal(values, maxpool2d(x, 2, 2))
        assert arg.shape == values.shape

    def test_backward_routes_gradient_to_maxima(self):
        x = np.array([[[1.0, 9.0], [2.0, 3.0]]])
        values, arg = maxpool2d_argmax(x, 2, 2, padding=0)
        grad = maxpool2d_backward(np.ones((1, 1, 1)), arg, x.shape, 2, 2, padding=0)
        assert grad[0].tolist() == [[0.0, 1.0], [0.0, 0.0]]

    def test_backward_adjoint_property(self, rng):
        x = rng.normal(size=(2, 6, 6))
        values, arg = maxpool2d_argmax(x, 2, 2)
        grad_out = rng.normal(size=values.shape)
        grad_in = maxpool2d_backward(grad_out, arg, x.shape, 2, 2)
        # Gradient wrt x of sum(grad_out * pool(x)) via finite differences.
        eps = 1e-6
        idx = (1, 3, 2)
        bumped = x.copy()
        bumped[idx] += eps
        v2 = maxpool2d(bumped, 2, 2)
        numeric = float(np.sum(grad_out * (v2 - values)) / eps)
        assert numeric == pytest.approx(grad_in[idx], abs=1e-4)


class TestActivations:
    def test_relu(self):
        assert relu(np.array([-1.0, 0.0, 2.0])).tolist() == [0.0, 0.0, 2.0]

    def test_leaky_slope(self):
        got = leaky_relu(np.array([-10.0, 10.0]))
        assert got.tolist() == [-1.0, 10.0]

    def test_sigmoid_range_and_symmetry(self, rng):
        x = rng.normal(size=100) * 10
        s = sigmoid(x)
        assert np.all((s > 0) & (s < 1))
        assert np.allclose(s + sigmoid(-x), 1.0)

    def test_softmax_normalizes(self, rng):
        x = rng.normal(size=(5, 20)) * 50  # large logits: stability check
        p = softmax(x, axis=-1)
        assert np.allclose(p.sum(axis=-1), 1.0)
        assert not np.any(np.isnan(p))


class TestBatchnormAndFC:
    def test_batchnorm_normalizes_statistics(self, rng):
        x = rng.normal(loc=3.0, scale=2.0, size=(4, 32, 32))
        mean = x.mean(axis=(1, 2))
        var = x.var(axis=(1, 2))
        y = batchnorm_inference(x, np.ones(4), np.zeros(4), mean, var)
        assert np.allclose(y.mean(axis=(1, 2)), 0.0, atol=1e-9)
        assert np.allclose(y.var(axis=(1, 2)), 1.0, atol=1e-3)

    def test_batchnorm_affine(self, rng):
        x = rng.normal(size=(2, 3, 3))
        y = batchnorm_inference(
            x, np.array([2.0, 1.0]), np.array([5.0, 0.0]),
            np.zeros(2), np.ones(2) - 1e-6,
        )
        assert np.allclose(y[0], 2 * x[0] + 5, atol=1e-5)

    def test_fully_connected(self, rng):
        x = rng.normal(size=(2, 2, 2))
        w = rng.normal(size=(3, 8))
        b = rng.normal(size=3)
        assert np.allclose(fully_connected(x, w, b), w @ x.ravel() + b)

    def test_fully_connected_size_mismatch(self, rng):
        with pytest.raises(ValueError):
            fully_connected(np.zeros(7), rng.normal(size=(3, 8)))
