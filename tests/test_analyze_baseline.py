"""``repro analyze``: deterministic --json order and --baseline ratchet."""

import json

import pytest

from repro.analyze.findings import (
    Finding,
    baseline_key,
    baseline_keys,
    new_findings,
)
from repro.cli import main

BROKEN_CFG = (
    "[net]\nwidth=16\nheight=16\nchannels=3\n"
    "[convolutional]\nfilters=100\nsize=1\nstride=1\npad=0\n"
    "activation=linear\n"
    "[region]\nclasses=20\nnum=5\n"
)


class TestHelpers:
    def test_key_ignores_message_text(self):
        a = Finding("error", "R-1", "step 3", "old wording")
        b = Finding("error", "R-1", "step 3", "new wording, same defect")
        assert baseline_key("net", a) == baseline_key("net", b)

    def test_keys_differ_across_rule_target_and_location(self):
        f = Finding("warning", "R-1", "step 3", "msg")
        base = baseline_key("net", f)
        assert baseline_key("other", f) != base
        assert baseline_key(
            "net", Finding("warning", "R-2", "step 3", "msg")
        ) != base
        assert baseline_key(
            "net", Finding("warning", "R-1", "step 4", "msg")
        ) != base

    def test_new_findings_filters_against_the_document(self):
        known = Finding("error", "R-1", "step 1", "known")
        fresh = Finding("error", "R-2", "step 2", "fresh")
        document = {
            "findings": [dict(known.to_dict(), target="net")]
        }
        keys = baseline_keys(document)
        result = new_findings(
            [("net", known), ("net", fresh)], keys
        )
        assert result == [("net", fresh)]


class TestDeterministicJson:
    def test_findings_are_sorted_by_rule_target_location(self, capsys):
        assert main(["analyze", "--cfg-only", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        entries = document["findings"]
        assert entries
        keys = [
            (e["rule"], e["target"], e["where"], e["message"])
            for e in entries
        ]
        assert keys == sorted(keys)

    def test_two_runs_emit_identical_documents(self, capsys):
        main(["analyze", "--cfg-only", "--json"])
        first = capsys.readouterr().out
        main(["analyze", "--cfg-only", "--json"])
        second = capsys.readouterr().out
        assert first == second


class TestBaselineRatchet:
    @pytest.fixture()
    def broken(self, tmp_path):
        path = tmp_path / "broken.cfg"
        path.write_text(BROKEN_CFG)
        return str(path)

    def test_known_findings_are_suppressed(self, tmp_path, broken, capsys):
        assert main(["analyze", "--cfg-only", "--json", broken]) == 1
        baseline = tmp_path / "findings.json"
        baseline.write_text(capsys.readouterr().out)
        # Same run against its own baseline: nothing is new.
        assert main(
            ["analyze", "--cfg-only", broken, "--baseline", str(baseline)]
        ) == 0
        assert "0 new" in capsys.readouterr().err

    def test_new_findings_still_fail(self, tmp_path, broken, capsys):
        assert main(["analyze", "--cfg-only", "--json", broken]) == 1
        document = json.loads(capsys.readouterr().out)
        # Strip one finding from the baseline: it comes back as NEW.
        document["findings"] = document["findings"][1:]
        baseline = tmp_path / "findings.json"
        baseline.write_text(json.dumps(document))
        assert main(
            ["analyze", "--cfg-only", broken, "--baseline", str(baseline)]
        ) == 1
        err = capsys.readouterr().err
        assert "NEW [" in err

    def test_empty_baseline_behaves_like_no_baseline(
        self, tmp_path, broken, capsys
    ):
        baseline = tmp_path / "findings.json"
        baseline.write_text(json.dumps({"version": 1, "findings": []}))
        assert main(
            ["analyze", "--cfg-only", broken, "--baseline", str(baseline)]
        ) == 1
