"""Dynamic batcher flush semantics (size vs deadline) — no wall clock.

The batcher is a pure state machine over explicit ``now`` values, so
every trigger combination is pinned deterministically: size-triggered
flushes, deadline-triggered flushes, a single straggler request, and the
bit-identity of served batches against calling ``forward_batch`` directly.
"""

import numpy as np
import pytest

from repro.core.tensor import FeatureMap, FeatureMapBatch
from repro.nn import zoo
from repro.nn.network import Network
from repro.serve.batcher import (
    FLUSH_DEADLINE,
    FLUSH_FORCED,
    FLUSH_SIZE,
    DynamicBatcher,
    to_feature_batch,
)
from repro.serve.queue import InferenceRequest


def _request(rng, request_id=0, shape=(1, 2, 2), submitted_at=0.0):
    frame = FeatureMap(rng.normal(size=shape).astype(np.float32))
    return InferenceRequest(request_id, frame, submitted_at)


class TestSizeTrigger:
    def test_flushes_exactly_at_max_batch(self, rng):
        batcher = DynamicBatcher(max_batch=3, max_delay_s=10.0)
        assert batcher.add(_request(rng, 0), now=0.0) is None
        assert batcher.add(_request(rng, 1), now=0.1) is None
        flush = batcher.add(_request(rng, 2), now=0.2)
        assert flush is not None
        assert flush.cause == FLUSH_SIZE
        assert [r.id for r in flush.requests] == [0, 1, 2]
        assert batcher.pending == 0
        assert batcher.next_deadline() is None

    def test_size_one_flushes_immediately(self, rng):
        batcher = DynamicBatcher(max_batch=1, max_delay_s=10.0)
        flush = batcher.add(_request(rng), now=5.0)
        assert flush is not None and flush.cause == FLUSH_SIZE
        assert len(flush) == 1

    def test_consecutive_batches_keep_order(self, rng):
        batcher = DynamicBatcher(max_batch=2, max_delay_s=10.0)
        ids = []
        for i in range(6):
            flush = batcher.add(_request(rng, i), now=float(i))
            if flush:
                ids.extend(r.id for r in flush.requests)
        assert ids == [0, 1, 2, 3, 4, 5]


class TestDeadlineTrigger:
    def test_deadline_measured_from_oldest_request(self, rng):
        batcher = DynamicBatcher(max_batch=8, max_delay_s=1.0)
        batcher.add(_request(rng, 0), now=10.0)
        batcher.add(_request(rng, 1), now=10.9)
        assert batcher.next_deadline() == pytest.approx(11.0)
        assert batcher.poll(now=10.99) is None
        flush = batcher.poll(now=11.0)
        assert flush is not None and flush.cause == FLUSH_DEADLINE
        assert [r.id for r in flush.requests] == [0, 1]

    def test_single_straggler_flushes_alone(self, rng):
        # One idle request never waits longer than the deadline even though
        # the batch is far from full.
        batcher = DynamicBatcher(max_batch=16, max_delay_s=0.5)
        batcher.add(_request(rng, 7), now=0.0)
        assert batcher.poll(now=0.49) is None
        flush = batcher.poll(now=0.5)
        assert flush is not None
        assert flush.cause == FLUSH_DEADLINE
        assert [r.id for r in flush.requests] == [7]

    def test_add_honors_missed_deadline(self, rng):
        # A request landing after the pending batch's deadline passed must
        # flush on that very call, not wait another full period.
        batcher = DynamicBatcher(max_batch=8, max_delay_s=1.0)
        batcher.add(_request(rng, 0), now=0.0)
        flush = batcher.add(_request(rng, 1), now=2.5)
        assert flush is not None and flush.cause == FLUSH_DEADLINE
        assert len(flush) == 2

    def test_deadline_resets_after_flush(self, rng):
        batcher = DynamicBatcher(max_batch=2, max_delay_s=1.0)
        batcher.add(_request(rng, 0), now=0.0)
        batcher.add(_request(rng, 1), now=0.1)  # size flush
        assert batcher.next_deadline() is None
        batcher.add(_request(rng, 2), now=5.0)
        assert batcher.next_deadline() == pytest.approx(6.0)

    def test_empty_poll_is_noop(self):
        batcher = DynamicBatcher(max_batch=4, max_delay_s=0.1)
        assert batcher.poll(now=1e9) is None


class TestForcedFlush:
    def test_forced_flush_drains_pending(self, rng):
        batcher = DynamicBatcher(max_batch=4, max_delay_s=10.0)
        batcher.add(_request(rng, 0), now=0.0)
        batcher.add(_request(rng, 1), now=0.0)
        flush = batcher.flush()
        assert flush is not None and flush.cause == FLUSH_FORCED
        assert len(flush) == 2
        assert batcher.flush() is None

    def test_validation(self):
        with pytest.raises(ValueError, match="max_batch"):
            DynamicBatcher(max_batch=0, max_delay_s=0.1)
        with pytest.raises(ValueError, match="max_delay_s"):
            DynamicBatcher(max_batch=1, max_delay_s=-1.0)


class TestBatchedExecutionIdentity:
    def test_flushed_batch_matches_direct_forward_batch(self, rng):
        """A coalesced batch produces bit-identical per-request results to
        handing the same frames to ``forward_batch`` by hand."""
        network = Network(zoo.mlp4_config())
        network.initialize(rng)
        frames = [
            FeatureMap(rng.normal(size=network.input_shape).astype(np.float32))
            for _ in range(4)
        ]
        batcher = DynamicBatcher(max_batch=4, max_delay_s=10.0)
        flush = None
        for i, frame in enumerate(frames):
            flush = batcher.add(
                InferenceRequest(i, frame, submitted_at=float(i)), now=float(i)
            )
        assert flush is not None and flush.cause == FLUSH_SIZE
        served = network.forward_batch(to_feature_batch(flush.requests))
        direct = network.forward_batch(FeatureMapBatch.from_maps(frames))
        assert served.scale == direct.scale
        assert np.array_equal(served.data, direct.data)

    def test_to_feature_batch_preserves_order_and_scale(self, rng):
        requests = [
            InferenceRequest(
                i,
                FeatureMap(
                    rng.integers(0, 8, size=(2, 3, 3)).astype(np.int32), 0.25
                ),
                submitted_at=0.0,
            )
            for i in range(3)
        ]
        fmb = to_feature_batch(requests)
        assert fmb.scale == 0.25
        for request, frame in zip(requests, fmb.frames()):
            assert np.array_equal(frame.data, request.frame.data)
