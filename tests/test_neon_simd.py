"""Instruction-level NEON emulation tests."""

import numpy as np
import pytest

from repro.neon.simd import (
    QReg,
    lane_count,
    vadd,
    vaddv,
    vdup,
    vld1,
    vmax,
    vmla,
    vmul,
    vmull,
    vmull_high,
    vpadal,
    vqadd,
    vrshr,
    vst1,
    vsub,
)


class TestRegisters:
    def test_lane_counts_match_fig2(self):
        # "four single-precision floating-point lanes or eight 16-bit
        # integer lanes" (§III-B), sixteen 8-bit lanes (§III-D).
        assert lane_count("f32") == 4
        assert lane_count("i16") == 8
        assert lane_count("i8") == 16

    def test_wrong_lane_count_rejected(self):
        with pytest.raises(ValueError, match="lanes"):
            QReg("i8", np.zeros(8, dtype=np.int8))

    def test_wrong_dtype_rejected(self):
        with pytest.raises(ValueError, match="dtype"):
            QReg("i8", np.zeros(16, dtype=np.int16))

    def test_load_store_roundtrip(self, rng):
        buffer = rng.integers(-100, 100, size=32).astype(np.int16)
        reg = vld1("i16", buffer, offset=8)
        out = np.zeros(32, dtype=np.int16)
        vst1(reg, out, offset=8)
        assert np.array_equal(out[8:16], buffer[8:16])

    def test_short_load_rejected(self):
        with pytest.raises(ValueError, match="lanes"):
            vld1("i8", np.zeros(10, dtype=np.int8))


class TestArithmetic:
    def test_add_wraps_like_hardware(self):
        a = vdup("i8", 120)
        b = vdup("i8", 20)
        assert vadd(a, b).to_list() == [-116] * 16  # 140 wraps to -116

    def test_sub_wraps(self):
        a = vdup("i8", -120)
        b = vdup("i8", 20)
        assert vsub(a, b).to_list() == [116] * 16

    def test_saturating_add_clamps(self):
        a = vdup("i16", 30000)
        b = vdup("i16", 10000)
        assert vqadd(a, b).to_list() == [32767] * 8

    def test_mul_wraps(self):
        a = vdup("i16", 1000)
        # 1_000_000 & 0xFFFF = 16960, which is positive in int16.
        assert vmul(a, a).to_list() == [16960] * 8

    def test_float_ops(self):
        a = vdup("f32", 1.5)
        b = vdup("f32", 2.0)
        assert vmul(a, b).to_list() == [3.0] * 4
        assert vmla(vdup("f32", 1.0), a, b).to_list() == [4.0] * 4

    def test_kind_mismatch_rejected(self):
        with pytest.raises(ValueError, match="mismatch"):
            vadd(vdup("i8", 0), vdup("i16", 0))

    def test_vmax(self, rng):
        a = rng.integers(-50, 50, size=8).astype(np.int16)
        b = rng.integers(-50, 50, size=8).astype(np.int16)
        got = vmax(QReg("i16", a), QReg("i16", b))
        assert got.to_list() == np.maximum(a, b).tolist()


class TestWideningOps:
    def test_vmull_low_half(self):
        a = QReg("i8", np.arange(16, dtype=np.int8))
        b = vdup("i8", 3)
        got = vmull(a, b)
        assert got.kind == "i16"
        assert got.to_list() == [i * 3 for i in range(8)]

    def test_vmull_high_half(self):
        a = QReg("i8", np.arange(16, dtype=np.int8))
        b = vdup("i8", 3)
        assert vmull_high(a, b).to_list() == [i * 3 for i in range(8, 16)]

    def test_vmull_no_intermediate_overflow(self):
        # int8 x int8 always fits int16: -128 * -128 = 16384 < 32767.
        a = vdup("i8", -128)
        assert vmull(a, a).to_list() == [16384] * 8

    def test_vpadal_pairwise_fold(self):
        acc = vdup("i32", 10)
        prods = QReg("i16", np.array([1, 2, 3, 4, 5, 6, 7, 8], dtype=np.int16))
        got = vpadal(acc, prods)
        assert got.to_list() == [13, 17, 21, 25]

    def test_vpadal_kind_check(self):
        with pytest.raises(ValueError, match="vpadal"):
            vpadal(vdup("i16", 0), vdup("i16", 0))


class TestRoundingShift:
    def test_vrshr_matches_core_semantics(self, rng):
        from repro.core.gemm import rounding_rshift

        values = rng.integers(-(2**14), 2**14, size=8).astype(np.int16)
        got = vrshr(QReg("i16", values), 4)
        expected = rounding_rshift(values.astype(np.int64), 4)
        assert got.to_list() == expected.tolist()

    def test_vrshr_rejects_zero_shift(self):
        with pytest.raises(ValueError, match="start at 1"):
            vrshr(vdup("i16", 8), 0)

    def test_vrshr_rejects_float(self):
        with pytest.raises(ValueError, match="integer"):
            vrshr(vdup("f32", 1.0), 1)


class TestDotProductMicrokernel:
    def test_acc16_dot27_matches_gemm_i8_acc16(self, rng):
        """One output row x 8 positions of the paper's 16-bit-accumulator
        kernel, written instruction by instruction, must equal the
        vectorized ``gemm_i8_acc16`` datapath."""
        from repro.core.gemm import gemm_i8_acc16

        weights = rng.integers(-127, 128, size=27).astype(np.int8)
        cols = rng.integers(-127, 128, size=(27, 8)).astype(np.int8)

        acc = vdup("i16", 0)
        for k in range(27):
            a16 = QReg("i16", cols[k].astype(np.int16))
            w16 = vdup("i16", int(weights[k]))
            prod = vmul(a16, w16)            # int8 values in i16 lanes: exact
            shifted = vrshr(prod, 4)         # rounding right shift by 4
            acc = vqadd(acc, shifted)        # saturating accumulate
        expected, _ = gemm_i8_acc16(
            weights.reshape(1, 27).astype(np.int64),
            cols.astype(np.int64),
            pre_shift=4,
        )
        assert acc.to_list() == expected[0].tolist()

    def test_vaddv_horizontal_sum(self, rng):
        values = rng.integers(-100, 100, size=4).astype(np.int32)
        assert vaddv(QReg("i32", values)) == int(values.sum())
