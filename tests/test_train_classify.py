"""Dense training modules and the classifier trainer (MLP-4 show case)."""

import numpy as np
import pytest

from repro.data.classify import cifar_like, mnist_like
from repro.train.classify import (
    binarize_images,
    evaluate_classifier,
    mini_mlp,
    train_classifier,
)
from repro.train.dense_layers import BatchNorm1d, Flatten, QLinear, SignActivation


class TestQLinear:
    def test_forward_matches_matmul(self, rng):
        layer = QLinear(6, 4, rng=rng)
        x = rng.normal(size=(3, 6)).astype(np.float32)
        y = layer.forward(x)
        assert np.allclose(y, x @ layer.weight.value.T + layer.bias.value, atol=1e-5)

    def test_gradients_match_finite_difference(self, rng):
        layer = QLinear(5, 3, rng=rng)
        x = rng.normal(size=(2, 5)).astype(np.float64)
        grad_out = rng.normal(size=(2, 3))

        y = layer.forward(x.astype(np.float32))
        grad_x = layer.backward(grad_out.astype(np.float32))

        eps = 1e-4
        for index in [(0, 0), (1, 4)]:
            bumped = x.copy()
            bumped[index] += eps
            plus = float(np.sum(layer.forward(bumped.astype(np.float32)) * grad_out))
            bumped[index] -= 2 * eps
            minus = float(np.sum(layer.forward(bumped.astype(np.float32)) * grad_out))
            numeric = (plus - minus) / (2 * eps)
            assert grad_x[index] == pytest.approx(numeric, abs=1e-2)

    def test_binary_weights_and_ste(self, rng):
        layer = QLinear(4, 2, binary=True, rng=rng)
        assert set(np.unique(layer.effective_weights())) <= {-1.0, 1.0}
        layer.weight.value[...] = 3.0  # all weights outside the STE window
        layer.forward(np.ones((1, 4), dtype=np.float32))
        layer.backward(np.ones((1, 2), dtype=np.float32))
        assert np.all(layer.weight.grad == 0)


class TestBatchNorm1d:
    def test_normalizes_batch(self, rng):
        bn = BatchNorm1d(4)
        x = rng.normal(5.0, 3.0, size=(64, 4)).astype(np.float32)
        y = bn.forward(x)
        assert np.allclose(y.mean(axis=0), 0.0, atol=1e-5)
        assert np.allclose(y.std(axis=0), 1.0, atol=1e-2)

    def test_gradcheck(self, rng):
        bn = BatchNorm1d(3)
        x = rng.normal(size=(8, 3)).astype(np.float64)
        grad_out = rng.normal(size=(8, 3))
        bn.forward(x.astype(np.float32))
        grad_x = bn.backward(grad_out.astype(np.float32))
        eps = 1e-4
        index = (2, 1)
        bumped = x.copy()
        bumped[index] += eps
        plus = float(np.sum(bn.forward(bumped.astype(np.float32)) * grad_out))
        bumped[index] -= 2 * eps
        minus = float(np.sum(bn.forward(bumped.astype(np.float32)) * grad_out))
        numeric = (plus - minus) / (2 * eps)
        assert grad_x[index] == pytest.approx(numeric, abs=1e-2)

    def test_inference_mode(self, rng):
        bn = BatchNorm1d(2, momentum=1.0)
        bn.forward(rng.normal(1.0, 2.0, size=(128, 2)).astype(np.float32))
        y = bn.forward(np.ones((1, 2), dtype=np.float32), training=False)
        assert np.all(np.isfinite(y))


class TestSignActivation:
    def test_binary_output(self, rng):
        act = SignActivation()
        y = act.forward(rng.normal(size=(4, 4)).astype(np.float32))
        assert set(np.unique(y)) <= {-1.0, 1.0}

    def test_hardtanh_ste(self):
        act = SignActivation()
        x = np.array([[-2.0, -0.5, 0.5, 2.0]], dtype=np.float32)
        act.forward(x)
        grad = act.backward(np.ones_like(x))
        assert grad.ravel().tolist() == [0.0, 1.0, 1.0, 0.0]


class TestFlatten:
    def test_roundtrip(self, rng):
        flat = Flatten()
        x = rng.normal(size=(2, 3, 4, 4)).astype(np.float32)
        y = flat.forward(x)
        assert y.shape == (2, 48)
        assert flat.backward(y).shape == x.shape


class TestClassifierTraining:
    def test_float_mlp_learns_glyphs(self):
        dataset = mnist_like(seed=2)
        model = mini_mlp(binary=False, hidden=64, seed=1)
        result = train_classifier(model, dataset, steps=120, batch_size=32)
        assert result.accuracy > 0.9
        assert result.losses[-1] < result.losses[0]

    def test_binary_mlp_learns_but_loses_accuracy(self):
        """W1A1 works but costs accuracy vs float — the §II trade-off."""
        dataset = mnist_like(seed=2)
        float_model = mini_mlp(binary=False, hidden=64, seed=1)
        binary_model = mini_mlp(binary=True, hidden=64, seed=1)
        float_result = train_classifier(float_model, dataset, steps=150)
        binary_result = train_classifier(binary_model, dataset, steps=150)
        assert binary_result.accuracy > 0.5          # far above chance
        assert binary_result.accuracy <= float_result.accuracy + 0.02

    def test_cnv_like_input(self):
        """RGB 32x32 input (the CNV-6 geometry) through a dense stack."""
        dataset = cifar_like(seed=3)
        model = mini_mlp(
            input_features=3 * 32 * 32, hidden=48, n_hidden_layers=2,
            binary=True, seed=2,
        )
        result = train_classifier(model, dataset, steps=120, batch_size=32)
        assert result.accuracy > 0.4

    def test_binarize_images(self, rng):
        images = rng.uniform(size=(2, 1, 4, 4)).astype(np.float32)
        bipolar = binarize_images(images)
        assert set(np.unique(bipolar)) <= {-1.0, 1.0}

    def test_evaluate_uses_heldout(self):
        dataset = mnist_like(seed=2)
        model = mini_mlp(binary=False, seed=1)
        accuracy = evaluate_classifier(model, dataset, start=0, count=32)
        assert 0.0 <= accuracy <= 1.0
