"""W1A1 bipolar convolutions on the fabric — the CNV-6 regime.

Ends with CNV-6's entire binary section (5 hidden convs + 2 pools + 3 FC
layers) running on simulated MVTU stages and agreeing with the float
W1A1 network exactly.
"""

import numpy as np
import pytest

from repro.core.tensor import FeatureMap
from repro.finn.dense import (
    MVTUBipolarConvLayer,
    compile_bipolar_conv_stage,
    compile_dense_stage,
    derive_sign_thresholds,
)
from repro.finn.mvtu import MVTU, Folding
from repro.nn.network import Network
from repro.nn.zoo import cnv6_config


def _randomize_bn(network, rng):
    for layer in network.layers:
        if layer.ltype not in ("convolutional", "connected"):
            continue
        n = layer.out_shape[0]
        layer.biases = rng.normal(size=n).astype(np.float32)
        if layer.batch_normalize:
            layer.scales = rng.uniform(0.5, 2.0, size=n).astype(np.float32)
            layer.rolling_mean = (rng.normal(size=n) * 2).astype(np.float32)
            layer.rolling_var = rng.uniform(0.5, 2.0, size=n).astype(np.float32)


class TestBipolarConvStage:
    def _stage(self, rng, c_in=4, c_out=6, k=3):
        weights = rng.choice([-1, 1], size=(c_out, c_in * k * k))
        thresholds = derive_sign_thresholds(
            gamma=rng.uniform(0.5, 2.0, size=c_out),
            beta=rng.normal(size=c_out),
            mean=rng.normal(size=c_out) * 3,
            var=rng.uniform(0.5, 2.0, size=c_out),
        )
        mvtu = MVTU(weights, thresholds, Folding(2, 4))
        return MVTUBipolarConvLayer(mvtu, in_channels=c_in, ksize=k), weights

    def test_matches_bipolar_reference(self, rng):
        stage, weights = self._stage(rng)
        bits = rng.integers(0, 2, size=(4, 8, 8))
        out = stage.forward(FeatureMap(bits))
        assert out.shape == (6, 6, 6)
        # reference: conv in the bipolar domain + BN + sign
        from repro.core.im2col import im2col

        bipolar = 2 * bits.astype(np.int64) - 1
        acc = weights @ im2col(bipolar, 3, 1, 0)
        assert np.array_equal(
            out.data.reshape(6, -1),
            stage.mvtu.thresholds.apply(acc),
        )

    def test_rejects_non_binary_levels(self, rng):
        stage, _ = self._stage(rng)
        with pytest.raises(ValueError, match="0,1"):
            stage.forward(FeatureMap(np.full((4, 8, 8), 2)))

    def test_cycles(self, rng):
        stage, _ = self._stage(rng)
        assert stage.cycles((4, 8, 8)) == 36 * Folding(2, 4).fold(6, 36)


class TestCompileGuards:
    def test_requires_valid_convolution(self, rng):
        net = Network.from_cfg(
            "[net]\nwidth=8\nheight=8\nchannels=2\n"
            "[convolutional]\nbatch_normalize=1\nfilters=4\nsize=3\nstride=1\n"
            "pad=1\nactivation=sign\nbinary=1\n"
        )
        with pytest.raises(ValueError, match="unpadded"):
            compile_bipolar_conv_stage(net.layers[0], Folding(1, 1))


class TestCNV6OnFabric:
    def test_binary_section_agrees_with_float_network(self, rng):
        """CNV-6 layers 2..9 (binary convs, pools, dense) on the fabric."""
        network = Network(cnv6_config())
        network.initialize(rng)
        _randomize_bn(network, rng)

        # Float path: run the first (8-bit) conv, then everything else.
        x = FeatureMap(rng.uniform(size=(3, 32, 32)).astype(np.float32))
        fm = network.layers[0].forward(x)          # conv1: relu output, float
        # Binarize conv1's output the FINN way before the W1A1 section.
        bipolar = np.where(fm.values() >= 0.5, 1.0, -1.0).astype(np.float32)
        float_fm = FeatureMap(bipolar)
        for layer in network.layers[1:-1]:          # up to the last connected
            float_fm = layer.forward(float_fm)

        # Fabric path: compile each binary layer; pools act on level codes.
        from repro.core.ops import maxpool2d

        bits_fm = FeatureMap(((bipolar + 1) / 2).astype(np.int64))
        fabric_fm = bits_fm
        for layer in network.layers[1:-1]:
            if layer.ltype == "convolutional":
                stage = compile_bipolar_conv_stage(layer, Folding(4, 8))
                fabric_fm = stage.forward(fabric_fm)
            elif layer.ltype == "maxpool":
                pooled = maxpool2d(
                    fabric_fm.data.astype(np.float64), layer.size, layer.stride,
                    layer.padding,
                )
                fabric_fm = FeatureMap(pooled.astype(np.int64))
            elif layer.ltype == "connected":
                if layer.activation == "sign":
                    stage = compile_dense_stage(layer, Folding(4, 8))
                    fabric_fm = stage.forward(fabric_fm)
                else:
                    # final classifier layer: raw bipolar logits
                    bipolar_in = 2 * fabric_fm.data.ravel().astype(np.int64) - 1
                    logits = (
                        layer.effective_weights().astype(np.int64) @ bipolar_in
                        + layer.biases
                    )
                    fabric_fm = FeatureMap(
                        logits.reshape(-1, 1, 1).astype(np.float32)
                    )
            else:
                raise AssertionError(f"unexpected layer {layer.ltype}")

        # The float path's last connected layer is 'linear' (no sign), so
        # float_fm already holds logits; compare classification outcomes.
        assert np.argmax(fabric_fm.data) == np.argmax(float_fm.data)
        assert np.allclose(
            fabric_fm.data.ravel(), float_fm.data.ravel(), atol=1e-3
        )

    def test_pool_on_level_codes_equals_pool_on_bipolar(self, rng):
        """max over {0,1} codes == max over {-1,+1} values (monotone map)."""
        from repro.core.ops import maxpool2d

        bits = rng.integers(0, 2, size=(3, 8, 8))
        bipolar = 2 * bits - 1
        pooled_bits = maxpool2d(bits.astype(np.float64), 2, 2)
        pooled_bipolar = maxpool2d(bipolar.astype(np.float64), 2, 2)
        assert np.array_equal(2 * pooled_bits - 1, pooled_bipolar)
