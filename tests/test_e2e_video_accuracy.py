"""End-to-end accuracy through the full video path.

Train the mini detector once, then measure mAP the way the live system
sees it: synthetic camera frame -> letterbox -> inference -> decode ->
NMS -> boxes mapped back to frame coordinates -> VOC matching against the
frame's ground truth.  This exercises every coordinate transform in the
chain; a sign error anywhere would crater the score.
"""

import pytest

from repro.data.shapes import ShapesDetectionDataset
from repro.eval.boxes import Detection
from repro.eval.metrics import ImageEval, evaluate_map
from repro.train.models import mini_yolo
from repro.train.trainer import TrainConfig, train_detector
from repro.video.letterbox import letterbox
from repro.video.source import SyntheticCamera


@pytest.fixture(scope="module")
def trained_detector():
    dataset = ShapesDetectionDataset(
        image_size=48, min_objects=1, max_objects=2,
        min_scale=0.25, max_scale=0.5, seed=1,
    )
    model = mini_yolo("mini-tincy", n_classes=20, seed=1)
    result = train_detector(
        model, dataset, TrainConfig(steps=300, batch_size=8, eval_samples=32)
    )
    return model, result


class TestEndToEndVideoPath:
    def test_camera_to_map(self, trained_detector):
        model, train_result = trained_detector
        camera = SyntheticCamera(
            height=48, width=48, seed=42,
            scene_kwargs={"image_size": 48, "min_scale": 0.25, "max_scale": 0.5},
        )
        images = []
        for frame in camera.stream(32):
            boxed, geometry = letterbox(frame.image, 48)
            raw = model.detect(boxed, threshold=0.05)
            mapped = [
                Detection(
                    box=geometry.net_box_to_frame(d.box),
                    class_id=d.class_id,
                    score=d.score,
                )
                for d in raw
            ]
            images.append(ImageEval(detections=mapped, truths=frame.truths))
        result = evaluate_map(images, n_classes=20)
        # The video path must not destroy the detector's accuracy: the
        # camera distribution matches training, so live mAP should be in
        # the same ballpark as the held-out training-eval mAP.
        assert result.map_percent > 0.4 * train_result.map_percent
        assert result.map_percent > 5.0

    def test_letterboxed_wide_frames_still_detect(self, trained_detector):
        """A 4:3 camera: boxes must survive the non-trivial letterbox."""
        model, _ = trained_detector
        camera = SyntheticCamera(
            height=48, width=64, seed=43,
            scene_kwargs={"image_size": 64, "min_scale": 0.3, "max_scale": 0.5},
        )
        images = []
        for frame in camera.stream(32):
            boxed, geometry = letterbox(frame.image, 48)
            raw = model.detect(boxed, threshold=0.05)
            mapped = [
                Detection(
                    box=geometry.net_box_to_frame(d.box),
                    class_id=d.class_id,
                    score=d.score,
                )
                for d in raw
            ]
            images.append(ImageEval(detections=mapped, truths=frame.truths))
        result = evaluate_map(images, n_classes=20)
        assert result.map_percent > 2.0  # nonzero through the full transform

    def test_box_mapping_sanity_against_truth(self, trained_detector):
        """At least one detection should overlap a true object decently."""
        from repro.eval.boxes import iou

        model, _ = trained_detector
        camera = SyntheticCamera(
            height=48, width=48, seed=44,
            scene_kwargs={"image_size": 48, "min_scale": 0.3, "max_scale": 0.5},
        )
        best = 0.0
        for frame in camera.stream(16):
            boxed, geometry = letterbox(frame.image, 48)
            for det in model.detect(boxed, threshold=0.05):
                mapped = geometry.net_box_to_frame(det.box)
                for truth in frame.truths:
                    best = max(best, iou(mapped, truth.box))
        assert best > 0.5
