"""gemmlowp-style quantized GEMM tests (§III-D datapaths)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gemm import (
    RequantizeParams,
    gemm_f32,
    gemm_i8_acc16,
    gemm_i8_acc32,
    rounding_rshift,
    saturate,
)


class TestRoundingRshift:
    def test_vrshr_semantics(self):
        x = np.array([0, 7, 8, 9, 15, 16, -7, -8, -9, -16])
        got = rounding_rshift(x, 4)
        # (x + 8) >> 4 with arithmetic shift.
        assert got.tolist() == [0, 0, 1, 1, 1, 1, 0, 0, -1, -1]

    def test_shift_zero_is_identity(self):
        x = np.array([1, -5, 7])
        assert rounding_rshift(x, 0).tolist() == x.tolist()

    def test_negative_shift_rejected(self):
        with pytest.raises(ValueError):
            rounding_rshift(np.array([1]), -1)

    @given(x=st.integers(-(2**30), 2**30), shift=st.integers(1, 20))
    @settings(max_examples=100, deadline=None)
    def test_error_bounded_by_half_ulp(self, x, shift):
        got = int(rounding_rshift(np.array([x]), shift)[0])
        assert abs(got - x / (1 << shift)) <= 0.5


class TestSaturate:
    def test_int16_bounds(self):
        x = np.array([-40000, -32768, 0, 32767, 40000])
        assert saturate(x, 16).tolist() == [-32768, -32768, 0, 32767, 32767]

    def test_unsigned(self):
        x = np.array([-1, 0, 255, 300])
        assert saturate(x, 8, signed=False).tolist() == [0, 0, 255, 255]


class TestGemmAcc32:
    def test_matches_float_reference(self, rng):
        # Offsets are negated zero points: the dequantized product must match.
        a = rng.integers(0, 256, size=(4, 27), dtype=np.int64)
        b = rng.integers(0, 256, size=(27, 10), dtype=np.int64)
        acc = gemm_i8_acc32(a, b, a_offset=-128, b_offset=-100)
        expected = (a - 128) @ (b - 100)
        assert np.array_equal(acc, expected)

    def test_overflow_detection(self):
        a = np.full((1, 70000), 255, dtype=np.int64)
        b = np.full((70000, 1), 255, dtype=np.int64)
        with pytest.raises(OverflowError):
            gemm_i8_acc32(a, b)


class TestGemmAcc16:
    def test_no_overflow_with_paper_preshift(self, rng):
        # 27 products of the 16x27 first layer: with the paper's shift of 4,
        # worst case 27 * (127*255 + 8)/16 ~ 54k exceeds int16 only for
        # adversarial all-max inputs; typical image data stays clean.
        a = rng.integers(-100, 100, size=(16, 27), dtype=np.int64)
        b = rng.integers(0, 200, size=(27, 64), dtype=np.int64)
        acc16, overflow = gemm_i8_acc16(a, b, pre_shift=4)
        assert overflow == 0
        exact = (a @ b) / 16.0
        assert np.max(np.abs(acc16 - exact)) <= 27 * 0.5  # per-product rounding

    def test_small_accuracy_loss_vs_acc32(self, rng):
        """The §III-D claim: the 16-bit path introduces *some small* loss."""
        a = rng.integers(-127, 128, size=(16, 27), dtype=np.int64)
        b = rng.integers(0, 256, size=(27, 100), dtype=np.int64)
        acc32 = gemm_i8_acc32(a, b)
        acc16, _ = gemm_i8_acc16(a, b, pre_shift=4)
        rel_err = np.abs(acc16.astype(np.float64) * 16 - acc32) / (
            np.abs(acc32) + 1e-9
        )
        # Loss exists (not bit exact) but is small on average.
        assert np.median(rel_err[np.abs(acc32) > 1000]) < 0.05

    def test_saturation_counted(self):
        a = np.full((1, 27), 127, dtype=np.int64)
        b = np.full((27, 1), 255, dtype=np.int64)
        _, overflow = gemm_i8_acc16(a, b, pre_shift=0)
        assert overflow > 0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            gemm_i8_acc16(np.zeros((2, 3)), np.zeros((4, 5)))


class TestRequantize:
    def test_real_scale_decomposition_accuracy(self):
        for scale in (0.5, 0.01, 3.0e-4, 1.7):
            params = RequantizeParams.from_real_scale(scale)
            assert params.multiplier / (1 << 31) <= 1.0
            approx = params.multiplier / 2.0**params.shift
            assert approx == pytest.approx(scale, rel=1e-6)

    def test_apply_matches_float_pipeline(self, rng):
        scale = 0.0031
        params = RequantizeParams.from_real_scale(scale, zero_point=128)
        acc = rng.integers(-(2**20), 2**20, size=1000)
        got = params.apply(acc)
        expected = np.clip(np.floor(acc * scale + 0.5) + 128, 0, 255)
        # Fixed-point vs float may differ by 1 ulp on exact .5 boundaries.
        assert np.max(np.abs(got - expected)) <= 1

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError):
            RequantizeParams.from_real_scale(0.0)


class TestGemmF32:
    def test_matches_numpy(self, rng):
        a = rng.normal(size=(8, 27)).astype(np.float32)
        b = rng.normal(size=(27, 33)).astype(np.float32)
        assert np.allclose(gemm_f32(a, b), a @ b, atol=1e-5)


class TestAcc16Acc32Relationship:
    @given(seed=st.integers(0, 200), k=st.integers(1, 64))
    @settings(max_examples=40, deadline=None)
    def test_acc16_tracks_acc32_within_rounding_bound(self, seed, k):
        """acc16 * 2**s differs from acc32 by at most K * 2**(s-1) — the
        accumulated per-product rounding — whenever no saturation occurs."""
        rng = np.random.default_rng(seed)
        a = rng.integers(-64, 64, size=(3, k), dtype=np.int64)
        b = rng.integers(0, 128, size=(k, 5), dtype=np.int64)
        acc32 = gemm_i8_acc32(a, b)
        acc16, overflow = gemm_i8_acc16(a, b, pre_shift=4)
        if overflow:
            return  # saturated results are allowed to deviate arbitrarily
        drift = np.abs(acc16.astype(np.int64) * 16 - acc32)
        assert drift.max() <= k * 8  # K * 2**(pre_shift - 1)
