"""gemmlowp-style quantized GEMM tests (§III-D datapaths)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gemm import (
    RequantizeParams,
    gemm_f32,
    gemm_i8_acc16,
    gemm_i8_acc16_reference,
    gemm_i8_acc32,
    rounding_rshift,
    saturate,
)


class TestRoundingRshift:
    def test_vrshr_semantics(self):
        x = np.array([0, 7, 8, 9, 15, 16, -7, -8, -9, -16])
        got = rounding_rshift(x, 4)
        # (x + 8) >> 4 with arithmetic shift.
        assert got.tolist() == [0, 0, 1, 1, 1, 1, 0, 0, -1, -1]

    def test_shift_zero_is_identity(self):
        x = np.array([1, -5, 7])
        assert rounding_rshift(x, 0).tolist() == x.tolist()

    def test_negative_shift_rejected(self):
        with pytest.raises(ValueError):
            rounding_rshift(np.array([1]), -1)

    @given(x=st.integers(-(2**30), 2**30), shift=st.integers(1, 20))
    @settings(max_examples=100, deadline=None)
    def test_error_bounded_by_half_ulp(self, x, shift):
        got = int(rounding_rshift(np.array([x]), shift)[0])
        assert abs(got - x / (1 << shift)) <= 0.5


class TestSaturate:
    def test_int16_bounds(self):
        x = np.array([-40000, -32768, 0, 32767, 40000])
        assert saturate(x, 16).tolist() == [-32768, -32768, 0, 32767, 32767]

    def test_unsigned(self):
        x = np.array([-1, 0, 255, 300])
        assert saturate(x, 8, signed=False).tolist() == [0, 0, 255, 255]


class TestGemmAcc32:
    def test_matches_float_reference(self, rng):
        # Offsets are negated zero points: the dequantized product must match.
        a = rng.integers(0, 256, size=(4, 27), dtype=np.int64)
        b = rng.integers(0, 256, size=(27, 10), dtype=np.int64)
        acc = gemm_i8_acc32(a, b, a_offset=-128, b_offset=-100)
        expected = (a - 128) @ (b - 100)
        assert np.array_equal(acc, expected)

    def test_overflow_detection(self):
        a = np.full((1, 70000), 255, dtype=np.int64)
        b = np.full((70000, 1), 255, dtype=np.int64)
        with pytest.raises(OverflowError):
            gemm_i8_acc32(a, b)


class TestGemmAcc16:
    def test_no_overflow_with_paper_preshift(self, rng):
        # 27 products of the 16x27 first layer: with the paper's shift of 4,
        # worst case 27 * (127*255 + 8)/16 ~ 54k exceeds int16 only for
        # adversarial all-max inputs; typical image data stays clean.
        a = rng.integers(-100, 100, size=(16, 27), dtype=np.int64)
        b = rng.integers(0, 200, size=(27, 64), dtype=np.int64)
        acc16, overflow = gemm_i8_acc16(a, b, pre_shift=4)
        assert overflow == 0
        exact = (a @ b) / 16.0
        assert np.max(np.abs(acc16 - exact)) <= 27 * 0.5  # per-product rounding

    def test_small_accuracy_loss_vs_acc32(self, rng):
        """The §III-D claim: the 16-bit path introduces *some small* loss."""
        a = rng.integers(-127, 128, size=(16, 27), dtype=np.int64)
        b = rng.integers(0, 256, size=(27, 100), dtype=np.int64)
        acc32 = gemm_i8_acc32(a, b)
        acc16, _ = gemm_i8_acc16(a, b, pre_shift=4)
        rel_err = np.abs(acc16.astype(np.float64) * 16 - acc32) / (
            np.abs(acc32) + 1e-9
        )
        # Loss exists (not bit exact) but is small on average.
        assert np.median(rel_err[np.abs(acc32) > 1000]) < 0.05

    def test_saturation_counted(self):
        a = np.full((1, 27), 127, dtype=np.int64)
        b = np.full((27, 1), 255, dtype=np.int64)
        _, overflow = gemm_i8_acc16(a, b, pre_shift=0)
        assert overflow > 0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            gemm_i8_acc16(np.zeros((2, 3)), np.zeros((4, 5)))


class TestRequantize:
    def test_real_scale_decomposition_accuracy(self):
        for scale in (0.5, 0.01, 3.0e-4, 1.7):
            params = RequantizeParams.from_real_scale(scale)
            assert params.multiplier / (1 << 31) <= 1.0
            approx = params.multiplier / 2.0**params.shift
            assert approx == pytest.approx(scale, rel=1e-6)

    def test_apply_matches_float_pipeline(self, rng):
        scale = 0.0031
        params = RequantizeParams.from_real_scale(scale, zero_point=128)
        acc = rng.integers(-(2**20), 2**20, size=1000)
        got = params.apply(acc)
        expected = np.clip(np.floor(acc * scale + 0.5) + 128, 0, 255)
        # Fixed-point vs float may differ by 1 ulp on exact .5 boundaries.
        assert np.max(np.abs(got - expected)) <= 1

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError):
            RequantizeParams.from_real_scale(0.0)


class TestGemmF32:
    def test_matches_numpy(self, rng):
        a = rng.normal(size=(8, 27)).astype(np.float32)
        b = rng.normal(size=(27, 33)).astype(np.float32)
        assert np.allclose(gemm_f32(a, b), a @ b, atol=1e-5)


class TestAcc16Acc32Relationship:
    @given(seed=st.integers(0, 200), k=st.integers(1, 64))
    @settings(max_examples=40, deadline=None)
    def test_acc16_tracks_acc32_within_rounding_bound(self, seed, k):
        """acc16 * 2**s differs from acc32 by at most K * 2**(s-1) — the
        accumulated per-product rounding — whenever no saturation occurs."""
        rng = np.random.default_rng(seed)
        a = rng.integers(-64, 64, size=(3, k), dtype=np.int64)
        b = rng.integers(0, 128, size=(k, 5), dtype=np.int64)
        acc32 = gemm_i8_acc32(a, b)
        acc16, overflow = gemm_i8_acc16(a, b, pre_shift=4)
        if overflow:
            return  # saturated results are allowed to deviate arbitrarily
        drift = np.abs(acc16.astype(np.int64) * 16 - acc32)
        assert drift.max() <= k * 8  # K * 2**(pre_shift - 1)


class TestRequantizeProperties:
    @given(
        exponent=st.floats(-12.0, 12.0),
        mantissa=st.floats(0.5, 0.999999),
    )
    @settings(max_examples=200, deadline=None)
    def test_multiplier_range_over_magnitude_sweep(self, exponent, mantissa):
        """The Q31 mantissa stays in [1, 2**31 - 1] across magnitudes —
        including real scales whose mantissa rounds *up* to 2.0."""
        real_scale = mantissa * 2.0**exponent
        params = RequantizeParams.from_real_scale(real_scale)
        assert 1 <= params.multiplier <= (1 << 31) - 1
        assert params.shift >= 0
        approx = params.multiplier / 2.0**params.shift
        assert approx == pytest.approx(real_scale, rel=1e-6)

    def test_mantissa_rounding_to_two_is_renormalized(self):
        # frexp mantissa 0.5 - 0.1/2**32: rounds to 2**31 exactly, the
        # overflow case the decomposition must renormalize (halve the
        # mantissa, absorb a factor 2 into the shift).
        real_scale = ((1 << 31) - 0.2) / 2.0**32
        params = RequantizeParams.from_real_scale(real_scale)
        assert params.multiplier == 1 << 30
        assert 1 <= params.multiplier <= (1 << 31) - 1
        approx = params.multiplier / 2.0**params.shift
        assert approx == pytest.approx(real_scale, rel=1e-6)

    def test_scale_too_large_for_q31_rejected(self):
        # A scale so large the renormalized shift would go negative cannot
        # be represented as multiplier * 2**-shift with shift >= 0.
        with pytest.raises(ValueError, match="too large"):
            RequantizeParams.from_real_scale(2.0**32)

    @given(
        exponent=st.floats(-10.0, 1.0),
        mantissa=st.floats(0.5, 0.999999),
        zero_point=st.integers(0, 255),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=100, deadline=None)
    def test_apply_matches_float_reference_within_one_lsb(
        self, exponent, mantissa, zero_point, seed
    ):
        real_scale = mantissa * 2.0**exponent
        params = RequantizeParams.from_real_scale(real_scale, zero_point)
        rng = np.random.default_rng(seed)
        acc = rng.integers(-(2**20), 2**20, size=64)
        got = params.apply(acc)
        expected = np.clip(
            np.floor(acc * real_scale + 0.5) + zero_point, 0, 255
        )
        assert np.max(np.abs(got.astype(np.int64) - expected)) <= 1

    @pytest.mark.parametrize(
        "dtype", [np.int8, np.int16, np.int32, np.int64]
    )
    def test_rounding_rshift_zero_shift_dtype_invariant(self, dtype):
        """shift=0 must still widen to int64: callers scale the result by
        Q31 multipliers, which overflows any narrower accumulator dtype."""
        x = np.array([-128, -1, 0, 1, 127], dtype=dtype)
        got = rounding_rshift(x, 0)
        assert got.dtype == np.int64
        assert got.tolist() == x.tolist()
        # The int64 widening is what makes this safe:
        assert (got * (1 << 31)).tolist() == [
            v * (1 << 31) for v in x.tolist()
        ]


class TestAcc16PropertyVsOracle:
    """The blocked/vectorized acc16 GEMM is a drop-in for the per-K loop:
    identical int16 accumulators *and* identical saturation-event counts,
    across offsets, shifts (0-9) and operand ranges that force saturation."""

    @given(
        seed=st.integers(0, 10_000),
        m=st.integers(1, 6),
        k=st.integers(1, 48),
        n=st.integers(1, 12),
        pre_shift=st.integers(0, 9),
        a_offset=st.integers(-16, 16),
        b_offset=st.integers(-16, 16),
        wide=st.booleans(),
    )
    @settings(max_examples=150, deadline=None)
    def test_bit_identical_to_reference(
        self, seed, m, k, n, pre_shift, a_offset, b_offset, wide
    ):
        rng = np.random.default_rng(seed)
        a = rng.integers(-128, 128, size=(m, k), dtype=np.int64)
        b = rng.integers(0, 256, size=(k, n), dtype=np.int64)
        if wide:
            # Push sums past int16 to exercise the saturation recurrence
            # and its overflow counter.
            a = a * rng.choice([1, 1, 4], size=a.shape)
            b = b * rng.choice([1, 1, 4], size=b.shape)
        got_acc, got_events = gemm_i8_acc16(
            a, b, a_offset=a_offset, b_offset=b_offset, pre_shift=pre_shift
        )
        ref_acc, ref_events = gemm_i8_acc16_reference(
            a, b, a_offset=a_offset, b_offset=b_offset, pre_shift=pre_shift
        )
        assert got_acc.dtype == ref_acc.dtype
        assert np.array_equal(got_acc, ref_acc)
        assert got_events == ref_events

    def test_all_saturating_column(self):
        # Every product maximal: saturates immediately and stays pinned.
        a = np.full((2, 32), 127, dtype=np.int64)
        b = np.full((32, 3), 255, dtype=np.int64)
        got_acc, got_events = gemm_i8_acc16(a, b)
        ref_acc, ref_events = gemm_i8_acc16_reference(a, b)
        assert np.array_equal(got_acc, ref_acc)
        assert got_events == ref_events
        assert got_events > 0
        assert got_acc.max() == 32767

    def test_wide_column_block_boundary(self, rng):
        # Spans several column blocks of the blocked kernel.
        from repro.core.gemm import ACC16_COL_BLOCK

        n = ACC16_COL_BLOCK + 17
        a = rng.integers(-128, 128, size=(4, 27), dtype=np.int64)
        b = rng.integers(0, 256, size=(27, n), dtype=np.int64)
        got_acc, got_events = gemm_i8_acc16(a, b)
        ref_acc, ref_events = gemm_i8_acc16_reference(a, b)
        assert np.array_equal(got_acc, ref_acc)
        assert got_events == ref_events
