"""Content-addressed plan cache + the server's warm cold-start path."""

import numpy as np
import pytest

from repro.core.tensor import FeatureMap
from repro.isa import (
    FORMAT_VERSION,
    PlanCache,
    encode,
    plan_cache_key,
    weights_digest,
)
from repro.nn import zoo
from repro.nn.network import Network


@pytest.fixture()
def mlp4(rng):
    network = Network(zoo.mlp4_config())
    network.initialize(rng)
    return network


class TestCacheKey:
    def test_key_carries_name_version_and_both_digests(self):
        key = plan_cache_key("mlp4", "ab" * 32, "cd" * 32)
        assert key.startswith(f"mlp4-v{FORMAT_VERSION}-")
        assert ("cd" * 6) in key
        assert ("ab" * 6) in key

    def test_hostile_names_are_sanitized(self):
        key = plan_cache_key("../../etc/passwd", "ab" * 32, "cd" * 32)
        assert "/" not in key and ".." not in key

    def test_key_changes_with_weights(self):
        assert plan_cache_key("n", "ab" * 32, "cd" * 32) != plan_cache_key(
            "n", "ba" * 32, "cd" * 32
        )


class TestPlanCache:
    def test_miss_compiles_and_stores_then_hits(self, tmp_path, mlp4):
        from repro.isa import DEFAULT_OPT_LEVEL, compile_network

        cache = PlanCache(str(tmp_path / "plans"))
        first, hit1 = cache.get_or_compile(mlp4, name="mlp4")
        second, hit2 = cache.get_or_compile(mlp4, name="mlp4")
        assert (hit1, hit2) == (False, True)
        assert first == second
        expected, _stats = compile_network(
            mlp4, name="mlp4", level=DEFAULT_OPT_LEVEL
        )
        assert encode(first) == encode(expected)

    def test_unoptimized_miss_matches_legacy_lowering(self, tmp_path, mlp4):
        cache = PlanCache(str(tmp_path / "plans"))
        program, hit = cache.get_or_compile(mlp4, name="mlp4", opt_level=0)
        assert not hit
        assert program.opt_level == 0 and program.passes == ()

    def test_opt_levels_have_distinct_addresses(self, tmp_path, mlp4):
        cache = PlanCache(str(tmp_path / "plans"))
        o0, hit0 = cache.get_or_compile(mlp4, name="mlp4", opt_level=0)
        o2, hit2 = cache.get_or_compile(mlp4, name="mlp4", opt_level=2)
        # Different levels never collide: the second compile is a miss,
        # and both artifacts stay loadable side by side afterwards.
        assert (hit0, hit2) == (False, False)
        assert o0.opt_level == 0 and o2.opt_level == 2
        assert cache.get_or_compile(mlp4, name="mlp4", opt_level=0)[1]
        assert cache.get_or_compile(mlp4, name="mlp4", opt_level=2)[1]

    def test_key_changes_with_opt_level(self):
        assert plan_cache_key(
            "n", "ab" * 32, "cd" * 32, opt_level=0
        ) != plan_cache_key("n", "ab" * 32, "cd" * 32, opt_level=2)

    def test_stale_format_versions_are_evicted_on_miss(self, tmp_path, mlp4):
        import os

        cache = PlanCache(str(tmp_path))
        stale = os.path.join(
            str(tmp_path), f"mlp4-v{FORMAT_VERSION - 1}-deadbeef.rpb"
        )
        with open(stale, "wb") as handle:
            handle.write(b"not a program")
        other = os.path.join(str(tmp_path), "other-v1-deadbeef.rpb")
        with open(other, "wb") as handle:
            handle.write(b"someone else's network")
        cache.get_or_compile(mlp4, name="mlp4")
        # The same network's old-version artifact is gone; other
        # networks' files are not ours to clean up.
        assert not os.path.exists(stale)
        assert os.path.exists(other)

    def test_weight_change_changes_the_address(self, tmp_path, mlp4):
        cache = PlanCache(str(tmp_path))
        cache.get_or_compile(mlp4, name="mlp4")
        mlp4.layers[0].weights[0, 0] += 1.0
        program, hit = cache.get_or_compile(mlp4, name="mlp4")
        # New content, new address: a stale artifact is unreachable, so
        # the recompile is a miss — and binds to the *new* weights.
        assert not hit
        assert program.weights_sha256 == weights_digest(mlp4)

    def test_corrupt_entry_is_a_miss_and_is_removed(self, tmp_path, mlp4):
        cache = PlanCache(str(tmp_path))
        program, _ = cache.get_or_compile(mlp4, name="mlp4")
        key = plan_cache_key(
            "mlp4",
            program.weights_sha256,
            program.cfg_sha256,
            opt_level=program.opt_level,
        )
        path = cache.path_for(key)
        with open(path, "r+b") as handle:
            handle.seek(20)
            handle.write(b"\xff\xff\xff")
        assert cache.load(key) is None
        import os

        assert not os.path.exists(path)
        # ...and the next get_or_compile recompiles cleanly.
        again, hit = cache.get_or_compile(mlp4, name="mlp4")
        assert not hit and again == program

    def test_absent_entry_is_a_plain_miss(self, tmp_path):
        cache = PlanCache(str(tmp_path))
        assert cache.load("nothing-here") is None


class TestServerColdStart:
    def test_server_records_miss_then_hit(self, tmp_path, mlp4, rng):
        from repro.serve import InferenceServer, ServeConfig

        frame = FeatureMap(
            rng.normal(size=mlp4.input_shape).astype(np.float32)
        )
        expected = mlp4.forward(frame)
        observed = []
        for _ in range(2):
            config = ServeConfig(
                warmup=False,
                plan_cache_dir=str(tmp_path / "plans"),
                plan_cache_name="mlp4",
            )
            with InferenceServer(mlp4, config) as server:
                out = server.infer(frame, timeout_s=30)
                snapshot = server.metrics.snapshot()
            assert np.array_equal(out.data, expected.data)
            observed.append(snapshot["plan_cache"])
        assert observed[0]["plan_cache_hit"] is False
        assert observed[0]["plan_source"] == "cache-miss"
        assert observed[1]["plan_cache_hit"] is True
        assert observed[1]["plan_source"] == "cache-hit"
        for entry in observed:
            assert entry["cold_start_ms"] > 0.0

    def test_server_without_cache_reports_compiled(self, mlp4, rng):
        from repro.serve import InferenceServer, ServeConfig

        with InferenceServer(mlp4, ServeConfig(warmup=False)) as server:
            server.infer(
                FeatureMap(
                    rng.normal(size=mlp4.input_shape).astype(np.float32)
                ),
                timeout_s=30,
            )
            snapshot = server.metrics.snapshot()
        entry = snapshot["plan_cache"]
        assert entry["plan_cache_hit"] is None
        assert entry["plan_source"] == "compiled"
        assert entry["cold_start_ms"] >= 0.0

    def test_cached_serving_is_bit_identical_to_direct(
        self, tmp_path, mlp4, rng
    ):
        from repro.serve import InferenceServer, ServeConfig

        frames = [
            FeatureMap(rng.normal(size=mlp4.input_shape).astype(np.float32))
            for _ in range(5)
        ]
        config = ServeConfig(
            warmup=False, plan_cache_dir=str(tmp_path), plan_cache_name="m"
        )
        with InferenceServer(mlp4, config) as server:
            served = server.infer_many(frames, timeout_s=30)
        for frame, got in zip(frames, served):
            assert np.array_equal(got.data, mlp4.forward(frame).data)
