"""Overflow prover: bound soundness and verdicts vs runtime saturation.

The acceptance contract: a *proved-safe* verdict means the saturating
acc16 kernel records **zero** overflow events on any input, which the
tests check against a randomized corpus plus the adversarial worst-case
input; a seeded overflowing weight row must flip the verdict to
*saturation-possible* and demonstrably saturate the real kernel.
"""

import numpy as np
import pytest

from repro.analyze.findings import ERROR, WARNING
from repro.analyze.overflow import (
    INT16_MAX,
    INT32_MAX,
    OVERFLOW_ERROR,
    PROVED_SAFE,
    SATURATION_POSSIBLE,
    StepVerdict,
    prove_plan,
    verdict_findings,
)
from repro.core.gemm import (
    acc16_worst_case_bound,
    acc32_worst_case_bound,
    gemm_i8_acc16,
    rounding_rshift,
)
from repro.core.quantize import AffineQuantizer
from repro.engine.plan import compile_plan
from repro.neon.kernels import ACC16_PRESHIFT
from repro.nn.network import Network
from repro.nn.zoo import mlp4_config, tincy_yolo_config

CONV_CFG = """
[net]
width=8
height=8
channels=3

[convolutional]
batch_normalize=1
filters=4
size=3
stride=1
pad=1
activation=relu
"""


def _conv_network(weight_fill):
    network = Network.from_cfg(CONV_CFG)
    network.initialize(np.random.default_rng(0))
    layer = network.layers[0]
    layer.weights = weight_fill(layer.weights.shape).astype(np.float32)
    return network


def _prover_codes(weights):
    """Quantize a weight tensor exactly as the prover (and kernels) do."""
    flat = np.asarray(weights, dtype=np.float64).reshape(weights.shape[0], -1)
    quant = AffineQuantizer.symmetric(float(np.abs(flat).max()) or 1.0, bits=8)
    return quant.to_levels(flat).astype(np.int64)


class TestBounds:
    def test_acc16_bound_dominates_exact_accumulation(self, rng):
        codes = rng.integers(-127, 128, size=(27, 8)).astype(np.int64)
        bound = acc16_worst_case_bound(codes, a_max=255, pre_shift=4)
        for _ in range(50):
            a = rng.integers(0, 256, size=27).astype(np.int64)
            exact = int(rounding_rshift(codes.T * a, 4).sum(axis=1).max())
            assert abs(exact) <= bound

    def test_acc16_bound_is_attained_for_aligned_signs(self):
        codes = np.full((27, 1), 127, dtype=np.int64)
        bound = acc16_worst_case_bound(codes, a_max=255, pre_shift=4)
        exact = int(rounding_rshift(codes[:, 0] * 255, 4).sum())
        assert bound == exact

    def test_acc16_bound_accepts_single_column(self):
        codes = np.arange(-13, 14, dtype=np.int64)
        assert acc16_worst_case_bound(codes) == acc16_worst_case_bound(
            codes.reshape(-1, 1)
        )

    def test_acc32_bound_is_k_times_operand_maxima(self):
        assert acc32_worst_case_bound(27, 255, 127) == 27 * 255 * 127
        assert acc32_worst_case_bound(70_000, 255, 127) > INT32_MAX


class TestVerdictsMatchRuntime:
    def test_proved_safe_layer_never_saturates(self, rng):
        # One dominant tap per filter: the symmetric quantizer pins it to
        # code 127 and everything else to ~0, so the bound stays far under
        # the int16 ceiling.
        def fill(shape):
            w = np.full(shape, 1e-3)
            w.reshape(shape[0], -1)[:, 0] = 1.0
            return w

        network = _conv_network(fill)
        verdict = prove_plan(compile_plan(network))[0]
        assert verdict.path == "int8-acc16"
        assert verdict.verdict == PROVED_SAFE
        codes = _prover_codes(network.layers[0].weights)
        for _ in range(20):
            a = rng.integers(0, 256, size=(16, codes.shape[1])).astype(np.uint8)
            _, overflow = gemm_i8_acc16(
                a, codes.T.astype(np.int8), pre_shift=ACC16_PRESHIFT
            )
            assert overflow == 0

    def test_seeded_overflowing_weights_flip_the_verdict(self):
        network = _conv_network(lambda shape: np.ones(shape))
        verdict = prove_plan(compile_plan(network))[0]
        assert verdict.verdict == SATURATION_POSSIBLE
        assert verdict.bound > INT16_MAX
        # ... and the worst-case input really does saturate the kernel.
        codes = _prover_codes(network.layers[0].weights)
        worst = np.full((1, codes.shape[1]), 255, dtype=np.uint8)
        _, overflow = gemm_i8_acc16(
            worst, codes.T.astype(np.int8), pre_shift=ACC16_PRESHIFT
        )
        assert overflow > 0

    @pytest.mark.parametrize("factory", [mlp4_config, tincy_yolo_config])
    def test_zoo_networks_have_no_overflow_errors(self, factory):
        network = Network(factory())
        network.initialize(np.random.default_rng(0))
        verdicts = prove_plan(compile_plan(network))
        assert all(v.verdict != OVERFLOW_ERROR for v in verdicts)
        # Binary layers are popcount-bounded and always provably safe.
        for v in verdicts:
            if v.path == "binary-popcount":
                assert v.verdict == PROVED_SAFE

    def test_non_matmul_steps_are_trivially_safe(self):
        network = Network(tincy_yolo_config())
        network.initialize(np.random.default_rng(0))
        verdicts = prove_plan(compile_plan(network))
        assert any(
            v.path == "none" and v.verdict == PROVED_SAFE for v in verdicts
        )


class TestRendering:
    def test_saturation_renders_as_warning(self):
        verdict = StepVerdict(0, "#00 conv", "int8-acc16", 40_000, INT16_MAX,
                              SATURATION_POSSIBLE)
        findings = verdict_findings([verdict])
        assert [f.rule for f in findings] == ["OV-ACC16-SAT"]
        assert findings[0].severity == WARNING

    def test_acc32_breach_renders_as_error(self):
        verdict = StepVerdict(0, "#00 conv", "gemmlowp-acc32",
                              INT32_MAX + 1, INT32_MAX, OVERFLOW_ERROR)
        findings = verdict_findings([verdict])
        assert [f.rule for f in findings] == ["OV-ACC32-OVERFLOW"]
        assert findings[0].severity == ERROR

    def test_proved_safe_renders_nothing(self):
        verdict = StepVerdict(0, "#00 conv", "int8-acc16", 100, INT16_MAX,
                              PROVED_SAFE)
        assert verdict_findings([verdict]) == []

    def test_headroom_fraction(self):
        verdict = StepVerdict(0, "s", "int8-acc16", INT16_MAX // 2,
                              INT16_MAX, PROVED_SAFE)
        assert 0.0 < verdict.headroom < 1.0
        assert StepVerdict(0, "s", "none", 0, 0, PROVED_SAFE).headroom == 1.0
