"""Smoke tests for the `repro bench` throughput harness."""

import json
from pathlib import Path

import pytest

from repro.bench import (
    bench_acc16_kernel,
    bench_batches,
    bench_per_layer,
    bench_plan_cache,
    bench_serve,
    check_inference_regressions,
    format_report,
    run_bench,
    write_report,
)
from repro.cli import main
from repro.nn import zoo
from repro.nn.network import Network


@pytest.fixture()
def mlp4(rng):
    network = Network(zoo.mlp4_config())
    network.initialize(rng)
    return network


class TestBenchHarness:
    def test_bench_batches_rows(self, mlp4, rng):
        rows = bench_batches(mlp4, batch_sizes=(1, 3), repeats=1, rng=rng)
        assert [row["batch"] for row in rows] == [1, 3]
        for row in rows:
            assert row["seconds"] > 0
            assert row["frames_per_second"] == pytest.approx(
                row["batch"] / row["seconds"]
            )

    def test_bench_per_layer_covers_all_layers(self, mlp4, rng):
        rows = bench_per_layer(mlp4, repeats=1, rng=rng)
        assert [row["index"] for row in rows] == list(range(len(mlp4.layers)))
        assert all(row["ms"] >= 0 for row in rows)
        assert rows[0]["type"] == mlp4.layers[0].ltype

    def test_acc16_kernel_consistency_gate(self, rng):
        result = bench_acc16_kernel(batch=2, repeats=1, m=4, k=9, n=64, rng=rng)
        assert result["batch"] == 2
        assert result["speedup"] == pytest.approx(
            result["reference_seconds"] / result["vectorized_seconds"]
        )

    def test_run_bench_report_shape(self, tmp_path, rng):
        report = run_bench(
            network_name="mlp4", batch_sizes=(1, 2), repeats=1, skip_kernel=True
        )
        assert report["network"] == "mlp4"
        assert "acc16_kernel" not in report
        assert len(report["batches"]) == 2
        path = tmp_path / "bench.json"
        write_report(report, str(path))
        assert json.loads(path.read_text())["network"] == "mlp4"
        text = format_report(report)
        assert "mlp4" in text
        assert "batch   1" in text

    def test_bench_plan_cache_section(self, mlp4):
        result = bench_plan_cache(mlp4, name="mlp4", repeats=1)
        assert result["instructions"] > 0
        assert result["artifact_bytes"] > 0
        assert result["key"].startswith("mlp4-v")
        for field in ("compile_ms", "cache_hit_ms", "vm_bind_ms"):
            assert result[field] >= 0.0

    def test_run_bench_report_carries_plan_cache(self, rng):
        report = run_bench(
            network_name="mlp4", batch_sizes=(1,), repeats=1, skip_kernel=True
        )
        assert report["plan_cache"]["instructions"] > 0
        text = format_report(report)
        assert "plan cache" in text

    def test_run_bench_unknown_network(self):
        with pytest.raises(ValueError, match="unknown network"):
            run_bench(network_name="yolov8", skip_kernel=True)

    def test_run_bench_unknown_scenario(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            run_bench(scenario="training")


class TestBenchRegression:
    """The `--check` assertions, plus the committed report must satisfy them."""

    def _report(self, pool_ms=1.0, conv_ms=2.0, fps=(4.0, 8.0)):
        return {
            "per_layer_ms": [
                {"index": 0, "type": "convolutional", "ms": 3.0},
                {"index": 1, "type": "convolutional", "ms": conv_ms},
                {"index": 2, "type": "maxpool", "ms": pool_ms},
            ],
            "batches": [
                {"batch": 1, "frames_per_second": fps[0]},
                {"batch": 16, "frames_per_second": fps[1]},
            ],
        }

    def test_clean_report_passes(self):
        assert check_inference_regressions(self._report()) == []

    def test_maxpool_out_costing_conv_is_flagged(self):
        violations = check_inference_regressions(self._report(pool_ms=5.0))
        assert len(violations) == 1
        assert "maxpool" in violations[0]

    def test_flat_batching_is_flagged(self):
        violations = check_inference_regressions(self._report(fps=(4.0, 4.4)))
        assert len(violations) == 1
        assert "batch 16" in violations[0]

    def test_batch_floor_violation_is_flagged(self):
        # Batching must never *lose* throughput: a batch-16 run at half
        # the batch-1 rate breaches the 0.8x floor even when a scaling
        # section owns the speedup assertion.
        report = self._report(fps=(4.0, 2.0))
        report["scaling"] = self._scaling()
        violations = check_inference_regressions(report)
        assert len(violations) == 1
        assert "floor" in violations[0]
        assert "batch 16" in violations[0]

    def test_batch_floor_is_tunable(self):
        report = self._report(fps=(4.0, 3.9))
        assert check_inference_regressions(report, min_batch_speedup=0.9) == []
        violations = check_inference_regressions(
            report, min_batch_speedup=0.9, min_batch_floor=1.0
        )
        assert len(violations) == 1
        assert "floor" in violations[0]

    def test_comparison_is_against_nearest_preceding_conv(self):
        # pool at 2.5ms beats conv #1 (2.0ms)? No — 2.5 > 2.0 flags; but it
        # must compare against index 1, not the heavier conv at index 0.
        violations = check_inference_regressions(self._report(pool_ms=2.5))
        assert "step #1" in violations[0]

    def test_empty_report_has_nothing_to_flag(self):
        assert check_inference_regressions({}) == []

    def _scaling(self, fps=(100.0, 160.0), pool_ms=0.5, conv_ms=1.0):
        return {
            "network": "cnv6",
            "batches": [
                {"batch": 1, "frames_per_second": fps[0]},
                {"batch": 16, "frames_per_second": fps[1]},
            ],
            "per_layer_ms": [
                {"index": 0, "type": "convolutional", "ms": conv_ms},
                {"index": 1, "type": "maxpool", "ms": pool_ms},
            ],
        }

    def test_scaling_entry_owns_the_speedup_assertion(self):
        # Flat top-level batching (memory-bound 416x416 frames) passes as
        # long as the small-frame scaling entry shows batching paying.
        report = self._report(fps=(4.0, 4.0))
        report["scaling"] = self._scaling()
        assert check_inference_regressions(report) == []

    def test_scaling_entry_flat_batching_is_flagged(self):
        report = self._report()
        report["scaling"] = self._scaling(fps=(100.0, 110.0))
        violations = check_inference_regressions(report)
        assert len(violations) == 1
        assert "cnv6" in violations[0]

    def test_scaling_pool_rows_are_checked_too(self):
        report = self._report()
        report["scaling"] = self._scaling(pool_ms=2.0)
        violations = check_inference_regressions(report)
        assert len(violations) == 1
        assert "maxpool" in violations[0]
        assert "cnv6" in violations[0]

    def test_committed_bench_report_meets_the_bar(self):
        # The repo-level acceptance: the committed BENCH_inference.json must
        # show maxpool cheaper than its conv and batch-16 >= 1.3x batch-1.
        path = Path(__file__).parent.parent / "BENCH_inference.json"
        report = json.loads(path.read_text())
        assert check_inference_regressions(report) == []


class TestServeScenario:
    def test_bench_serve_completes_all_requests(self, mlp4):
        # arrival_rate_hz=None: back-to-back submission, no sleeping —
        # the scenario has no wall-clock dependence in this mode.
        result = bench_serve(
            mlp4, requests=10, max_batch=4, cpu_workers=2, seed=0
        )
        assert result["requests"] == 10
        metrics = result["metrics"]
        assert metrics["accepted"] + metrics["shed"] == 10
        assert metrics["completed"] == metrics["accepted"]
        assert metrics["failed"] == 0
        assert result["wall_seconds"] > 0
        total_batched = sum(
            int(size) * count
            for size, count in metrics["batch_histogram"].items()
        )
        assert total_batched == metrics["completed"]

    def test_bench_serve_cold_start_is_a_cache_hit(self, mlp4):
        # bench_serve warms the plan cache before the measured server
        # comes up, so the reported cold start is the warm-restart story.
        result = bench_serve(mlp4, requests=4, max_batch=2, seed=0)
        cold = result["metrics"]["plan_cache"]
        assert cold["plan_cache_hit"] is True
        assert cold["plan_source"] == "cache-hit"
        assert cold["cold_start_ms"] > 0.0
        text = format_report(
            {"scenario": "serve", "network": "mlp4", "serve": result}
        )
        assert "cold start" in text

    def test_bench_serve_open_loop_arrivals(self, mlp4):
        result = bench_serve(
            mlp4, requests=6, arrival_rate_hz=5000.0, max_batch=2, seed=7
        )
        assert result["arrival_rate_hz"] == 5000.0
        assert result["metrics"]["completed"] == result["metrics"]["accepted"]

    def test_bench_serve_validation(self, mlp4):
        with pytest.raises(ValueError, match="at least one request"):
            bench_serve(mlp4, requests=0)
        with pytest.raises(ValueError, match="arrival_rate_hz"):
            bench_serve(mlp4, requests=1, arrival_rate_hz=-1.0)

    def test_run_bench_serve_scenario_schema(self, tmp_path):
        report = run_bench(
            network_name="mlp4",
            scenario="serve",
            serve_requests=8,
            serve_max_batch=4,
        )
        assert report["scenario"] == "serve"
        assert report["network"] == "mlp4"
        assert "batches" not in report  # inference sections stay out
        assert "acc16_kernel" not in report
        assert report["serve"]["metrics"]["completed"] == 8
        path = tmp_path / "bench.json"
        write_report(report, str(path))
        assert json.loads(path.read_text())["serve"]["requests"] == 8
        text = format_report(report)
        assert "serving 8 requests" in text
        assert "latency p50" in text

    def test_run_bench_all_scenarios_share_schema(self):
        report = run_bench(
            network_name="mlp4",
            batch_sizes=(1,),
            repeats=1,
            skip_kernel=True,
            scenario="all",
            serve_requests=6,
        )
        # One entry point, one schema: both sections side by side.
        assert "batches" in report
        assert "serve" in report
        assert report["serve"]["metrics"]["completed"] == 6


class TestBenchCli:
    def test_bench_writes_json(self, tmp_path, capsys):
        out = tmp_path / "BENCH_inference.json"
        code = main([
            "bench", "--network", "mlp4", "--batches", "1,2",
            "--repeats", "1", "--skip-kernel", "--output", str(out),
        ])
        assert code == 0
        report = json.loads(out.read_text())
        assert report["network"] == "mlp4"
        assert [row["batch"] for row in report["batches"]] == [1, 2]
        assert "frames/s" in capsys.readouterr().out

    def test_bench_rejects_bad_batches(self, capsys):
        assert main(["bench", "--batches", "1,x"]) == 2
        assert "comma-separated" in capsys.readouterr().err
        assert main(["bench", "--batches", "0"]) == 2

    def test_bench_kernel_only(self, capsys):
        # Tiny kernel geometry keeps the oracle loop fast.
        code = main([
            "bench", "--skip-network", "--kernel-batch", "1", "--repeats", "1",
        ])
        assert code == 0
        assert "acc16 GEMM" in capsys.readouterr().out

    def test_bench_batch_sizes_alias(self, capsys):
        code = main([
            "bench", "--network", "mlp4", "--batch-sizes", "1,3",
            "--repeats", "1", "--skip-kernel",
        ])
        assert code == 0
        assert "batch   3" in capsys.readouterr().out

    def test_bench_scenario_serve(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        code = main([
            "bench", "--network", "mlp4", "--scenario", "serve",
            "--requests", "9", "--max-batch", "4", "--output", str(out),
        ])
        assert code == 0
        report = json.loads(out.read_text())
        assert report["scenario"] == "serve"
        assert report["serve"]["metrics"]["completed"] == 9
        assert "serving 9 requests" in capsys.readouterr().out


class TestServeBenchCli:
    def test_serve_bench_writes_same_schema(self, tmp_path, capsys):
        out = tmp_path / "BENCH_serve.json"
        code = main([
            "serve-bench", "--network", "mlp4", "--requests", "8",
            "--max-batch", "4", "--queue-depth", "16", "--cpu-workers", "2",
            "--output", str(out),
        ])
        assert code == 0
        report = json.loads(out.read_text())
        # Same schema as `repro bench --scenario serve`.
        assert report["scenario"] == "serve"
        assert report["network"] == "mlp4"
        serve = report["serve"]
        assert serve["queue_depth_limit"] == 16
        assert serve["metrics"]["completed"] == 8
        assert "report written" in capsys.readouterr().out


class TestShardBench:
    def test_default_chaos_plan_is_explicit_and_scaled(self):
        from repro.bench import default_chaos_plan

        plan = default_chaos_plan(1000, seed=7)
        assert [spec.kind for spec in plan.specs] == [
            "shard-kill", "shard-slow", "router-split",
        ]
        kill, slow, split = plan.specs
        assert kill.at == (20,)  # one early permanent kill
        assert slow.at[0] == 125 and all(at < 1000 for at in slow.at)
        assert slow.hang_s < 0.01  # slow, never heartbeat-timeout hung
        assert split.at[0] == 166 and split.span == 64
        assert plan.seed == 7
        # Every selector is explicit: the transcript is a pure function
        # of the submission sequence, no rate-based randomness anywhere.
        assert all(spec.rate == 0.0 for spec in plan.specs)
        # Tiny request counts still produce a valid plan.
        tiny = default_chaos_plan(4)
        assert tiny.specs[0].at == (1,)

    @pytest.mark.integration
    def test_bench_serve_shard_report_schema(self, mlp4):
        from repro.bench import bench_serve_shard
        from repro.serve.shard import fork_available

        if not fork_available():
            pytest.skip("shard tier needs the fork start method")
        report = bench_serve_shard(
            mlp4, shards=2, requests=24, distinct_frames=6, seed=3
        )
        assert report["shards"] == 2
        assert report["requests"] == 24
        assert report["distinct_frames"] == 6
        assert report["metrics"]["completed"] == 24
        assert report["metrics"]["failed"] == 0
        # 6 distinct frames rotate through 24 requests: the LRU answers
        # every repeat (coalescing may take a few on racy timing).
        tier = report["metrics"]["shard_tier"]
        assert tier["result_cache_hits"] + tier["coalesced"] == 18
        assert report["bit_identical"] is True
        assert report["bit_identity_mismatches"] == []
        assert set(report["slo"]) == {
            "p99_ms", "p99_slo_ms", "degraded_fraction", "degraded_slo", "ok",
        }
        assert "faults" not in report  # no plan installed

    @pytest.mark.integration
    def test_bench_serve_shard_fault_transcript_is_deterministic(self, mlp4):
        from repro.bench import bench_serve_shard
        from repro.serve.shard import fork_available

        if not fork_available():
            pytest.skip("shard tier needs the fork start method")

        def run():
            return bench_serve_shard(
                mlp4, shards=3, requests=30, distinct_frames=8,
                faults="shard-kill@5", fault_seed=7, result_cache=0,
            )

        first, second = run(), run()
        for report in (first, second):
            assert report["faults"]["events"] == [
                ["shard.kill", "shard-kill", 5, ""]
            ]
            assert report["metrics"]["shard_tier"]["shard_deaths"] == 1
            assert report["metrics"]["completed"] == 30
            assert report["bit_identical"] is True
        assert (
            first["faults"]["transcript_sha256"]
            == second["faults"]["transcript_sha256"]
        )

    @pytest.mark.integration
    def test_serve_bench_cli_shard_mode(self, tmp_path, capsys):
        from repro.serve.shard import fork_available

        if not fork_available():
            pytest.skip("shard tier needs the fork start method")
        out = tmp_path / "BENCH_shard.json"
        code = main([
            "serve-bench", "--network", "mlp4", "--shards", "2",
            "--requests", "20", "--faults", "shard-kill@4",
            "--fault-seed", "7", "--output", str(out),
        ])
        assert code == 0
        report = json.loads(out.read_text())
        assert report["shards"] == 2
        assert report["slo"]["ok"] is True
        assert report["bit_identical"] is True
        assert report["metrics"]["shard_tier"]["shard_deaths"] == 1
        printed = capsys.readouterr().out
        assert "shard tier" in printed and "SLO" in printed
