"""Smoke tests for the `repro bench` throughput harness."""

import json

import numpy as np
import pytest

from repro.bench import (
    bench_acc16_kernel,
    bench_batches,
    bench_per_layer,
    format_report,
    run_bench,
    write_report,
)
from repro.cli import main
from repro.nn import zoo
from repro.nn.network import Network


@pytest.fixture()
def mlp4(rng):
    network = Network(zoo.mlp4_config())
    network.initialize(rng)
    return network


class TestBenchHarness:
    def test_bench_batches_rows(self, mlp4, rng):
        rows = bench_batches(mlp4, batch_sizes=(1, 3), repeats=1, rng=rng)
        assert [row["batch"] for row in rows] == [1, 3]
        for row in rows:
            assert row["seconds"] > 0
            assert row["frames_per_second"] == pytest.approx(
                row["batch"] / row["seconds"]
            )

    def test_bench_per_layer_covers_all_layers(self, mlp4, rng):
        rows = bench_per_layer(mlp4, repeats=1, rng=rng)
        assert [row["index"] for row in rows] == list(range(len(mlp4.layers)))
        assert all(row["ms"] >= 0 for row in rows)
        assert rows[0]["type"] == mlp4.layers[0].ltype

    def test_acc16_kernel_consistency_gate(self, rng):
        result = bench_acc16_kernel(batch=2, repeats=1, m=4, k=9, n=64, rng=rng)
        assert result["batch"] == 2
        assert result["speedup"] == pytest.approx(
            result["reference_seconds"] / result["vectorized_seconds"]
        )

    def test_run_bench_report_shape(self, tmp_path, rng):
        report = run_bench(
            network_name="mlp4", batch_sizes=(1, 2), repeats=1, skip_kernel=True
        )
        assert report["network"] == "mlp4"
        assert "acc16_kernel" not in report
        assert len(report["batches"]) == 2
        path = tmp_path / "bench.json"
        write_report(report, str(path))
        assert json.loads(path.read_text())["network"] == "mlp4"
        text = format_report(report)
        assert "mlp4" in text
        assert "batch   1" in text

    def test_run_bench_unknown_network(self):
        with pytest.raises(ValueError, match="unknown network"):
            run_bench(network_name="yolov8", skip_kernel=True)


class TestBenchCli:
    def test_bench_writes_json(self, tmp_path, capsys):
        out = tmp_path / "BENCH_inference.json"
        code = main([
            "bench", "--network", "mlp4", "--batches", "1,2",
            "--repeats", "1", "--skip-kernel", "--output", str(out),
        ])
        assert code == 0
        report = json.loads(out.read_text())
        assert report["network"] == "mlp4"
        assert [row["batch"] for row in report["batches"]] == [1, 2]
        assert "frames/s" in capsys.readouterr().out

    def test_bench_rejects_bad_batches(self, capsys):
        assert main(["bench", "--batches", "1,x"]) == 2
        assert "comma-separated" in capsys.readouterr().err
        assert main(["bench", "--batches", "0"]) == 2

    def test_bench_kernel_only(self, capsys):
        # Tiny kernel geometry keeps the oracle loop fast.
        code = main([
            "bench", "--skip-network", "--kernel-batch", "1", "--repeats", "1",
        ])
        assert code == 0
        assert "acc16 GEMM" in capsys.readouterr().out
