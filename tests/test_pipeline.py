"""Pipeline tests: buffers (Fig. 6), scheduler, DES, threaded pool."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pipeline.buffers import StageBuffer
from repro.pipeline.scheduler import CPU, FABRIC, PipelineTopology, StageDescriptor
from repro.pipeline.simulate import PipelineSimulator, sequential_time
from repro.pipeline.workers import ThreadedPipeline, join_threads


class TestStageBuffer:
    def test_fig6_state_cycle(self):
        buffer = StageBuffer("b")
        assert buffer.is_free()
        buffer.begin_produce()
        assert buffer.state == StageBuffer.PRODUCING
        buffer.finish_produce("frame-0")
        assert buffer.has_data()
        assert buffer.peek() == "frame-0"
        assert buffer.take() == "frame-0"
        assert buffer.is_free()

    def test_double_produce_rejected(self):
        buffer = StageBuffer()
        buffer.begin_produce()
        with pytest.raises(RuntimeError, match="produce"):
            buffer.begin_produce()

    def test_take_empty_rejected(self):
        with pytest.raises(RuntimeError, match="take"):
            StageBuffer().take()

    def test_finish_without_begin_rejected(self):
        with pytest.raises(RuntimeError, match="finish_produce"):
            StageBuffer().finish_produce(1)


def _stages(durations, fabric_index=None):
    stages = []
    for index, duration in enumerate(durations):
        resource = FABRIC if index == fabric_index else CPU
        stages.append(
            StageDescriptor(name=f"s{index}", duration_s=duration, resource=resource)
        )
    return stages


class TestScheduler:
    def test_most_mature_first(self):
        topology = PipelineTopology(_stages([1, 1, 1]))
        # Fill buffer 0 and 1: stage 2 (most mature) must be chosen.
        topology.buffers[0].begin_produce()
        topology.buffers[0].finish_produce("f0")
        topology.buffers[1].begin_produce()
        topology.buffers[1].finish_produce("f1")
        assert topology.select_job(set(), set()) == 2

    def test_source_always_available(self):
        topology = PipelineTopology(_stages([1, 1]))
        assert topology.select_job(set(), set()) == 0

    def test_busy_fabric_blocks_stage(self):
        topology = PipelineTopology(_stages([1, 1], fabric_index=1))
        topology.buffers[0].begin_produce()
        topology.buffers[0].finish_produce("f")
        # With the fabric busy nothing can run: stage 1 needs the fabric and
        # stage 0's output buffer is still occupied.
        assert topology.select_job(set(), {FABRIC}) is None
        assert topology.select_job(set(), set()) == 1

    def test_full_output_buffer_blocks(self):
        topology = PipelineTopology(_stages([1, 1]))
        topology.buffers[0].begin_produce()
        topology.buffers[0].finish_produce("f")
        # stage 1 is running (its output considered), stage 0's output full:
        assert topology.select_job({1}, set()) is None

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError):
            PipelineTopology([])


class TestSimulator:
    def test_single_stage_throughput(self):
        result = PipelineSimulator(
            _stages([0.010]), workers=1, job_overhead_s=0.0
        ).run(50)
        assert result.fps == pytest.approx(100.0, rel=0.02)

    def test_frames_complete_in_order(self):
        result = PipelineSimulator(
            _stages([0.005, 0.020, 0.003, 0.010]), workers=4, job_overhead_s=0.001
        ).run(100)
        assert result.completion_order == sorted(result.completion_order)

    def test_pipeline_beats_sequential(self):
        stages = _stages([0.02, 0.03, 0.025, 0.03, 0.02, 0.025])
        sim = PipelineSimulator(stages, workers=4, job_overhead_s=0.0).run(100)
        sequential_fps = 1.0 / sequential_time(stages)
        assert sim.fps > 2.0 * sequential_fps

    def test_speedup_bounded_by_cores_and_bottleneck(self):
        stages = _stages([0.02, 0.03, 0.025, 0.03, 0.02, 0.025])
        sim = PipelineSimulator(stages, workers=4, job_overhead_s=0.0).run(200)
        sequential_fps = 1.0 / sequential_time(stages)
        # Allow 1% slack: fps is measured from the first completion, which
        # excludes the pipeline-fill work already in flight at that instant.
        assert sim.fps <= 4.0 * sequential_fps * 1.01
        assert sim.fps <= (1.0 / 0.03) * 1.01  # bottleneck stage bound

    def test_fabric_stage_serializes(self):
        # Two-stage pipeline where both stages need the fabric: throughput
        # halves compared to CPU-only stages.
        fabric_stages = [
            StageDescriptor("a", duration_s=0.01, resource=FABRIC),
            StageDescriptor("b", duration_s=0.01, resource=FABRIC),
        ]
        cpu_stages = _stages([0.01, 0.01])
        fps_fabric = PipelineSimulator(fabric_stages, 4, 0.0).run(100).fps
        fps_cpu = PipelineSimulator(cpu_stages, 4, 0.0).run(100).fps
        assert fps_cpu > 1.8 * fps_fabric

    def test_more_workers_help_until_stage_count(self):
        stages = _stages([0.01] * 6)
        fps = [
            PipelineSimulator(stages, workers=n, job_overhead_s=0.0).run(100).fps
            for n in (1, 2, 4, 6)
        ]
        assert fps[0] < fps[1] < fps[2] <= fps[3] + 1e-9

    def test_overhead_hurts_finer_division(self):
        """§III-F's tradeoff: splitting a stage helps with free sync but the
        per-job overhead can eat the gain."""
        coarse = _stages([0.040, 0.040])
        fine = _stages([0.020, 0.020, 0.020, 0.020])
        fps_fine_free = PipelineSimulator(fine, 4, 0.0).run(200).fps
        fps_coarse_free = PipelineSimulator(coarse, 4, 0.0).run(200).fps
        assert fps_fine_free > fps_coarse_free
        fps_fine_tax = PipelineSimulator(fine, 2, 0.015).run(200).fps
        fps_coarse_tax = PipelineSimulator(coarse, 2, 0.015).run(200).fps
        assert fps_fine_tax < fps_coarse_tax * 1.15

    @given(
        durations=st.lists(st.floats(0.001, 0.05), min_size=1, max_size=8),
        workers=st.integers(1, 6),
    )
    @settings(max_examples=30, deadline=None)
    def test_no_overtake_property(self, durations, workers):
        result = PipelineSimulator(
            _stages(durations), workers=workers, job_overhead_s=0.001
        ).run(30)
        assert result.completion_order == list(range(30))
        assert len(result.frame_completion_s) == 30

    def test_worker_utilization_sane(self):
        result = PipelineSimulator(_stages([0.01] * 4), 4, 0.0).run(100)
        for u in result.worker_utilization():
            assert 0.0 <= u <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PipelineSimulator(_stages([0.01]), workers=0)
        with pytest.raises(ValueError):
            PipelineSimulator(_stages([0.01]), workers=1).run(0)


class TestThreadedPipeline:
    def test_results_in_order(self):
        stages = [
            StageDescriptor("double", work=lambda x: x * 2),
            StageDescriptor("inc", work=lambda x: x + 1),
        ]
        outputs = ThreadedPipeline(stages, workers=4).process(range(20))
        assert outputs == [x * 2 + 1 for x in range(20)]

    def test_single_worker(self):
        stages = [StageDescriptor("inc", work=lambda x: x + 1)]
        assert ThreadedPipeline(stages, workers=1).process([1, 2, 3]) == [2, 3, 4]

    def test_fabric_resource_exclusive(self):
        import threading

        active = {"count": 0, "max": 0}
        lock = threading.Lock()

        def fabric_work(x):
            with lock:
                active["count"] += 1
                active["max"] = max(active["max"], active["count"])
            import time

            time.sleep(0.001)
            with lock:
                active["count"] -= 1
            return x

        stages = [
            StageDescriptor("pre", work=lambda x: x),
            StageDescriptor("fab", work=fabric_work, resource=FABRIC),
            StageDescriptor("post", work=lambda x: x),
        ]
        ThreadedPipeline(stages, workers=4).process(range(30))
        assert active["max"] == 1

    def test_exception_propagates(self):
        def boom(x):
            raise RuntimeError("stage exploded")

        stages = [StageDescriptor("boom", work=boom)]
        with pytest.raises(RuntimeError, match="stage exploded"):
            ThreadedPipeline(stages, workers=2).process([1, 2])

    def test_missing_work_rejected(self):
        with pytest.raises(ValueError, match="work"):
            ThreadedPipeline([StageDescriptor("idle")], workers=1)

    def test_heavy_numpy_payloads(self, rng):
        data = [rng.normal(size=(8, 8)) for _ in range(10)]
        stages = [
            StageDescriptor("square", work=lambda m: m @ m.T),
            StageDescriptor("trace", work=lambda m: float(np.trace(m))),
        ]
        outputs = ThreadedPipeline(stages, workers=3).process(data)
        expected = [float(np.trace(m @ m.T)) for m in data]
        assert outputs == pytest.approx(expected)


class TestThreadedPipelineErrorPropagation:
    """A stage raising mid-frame must terminate the whole pool promptly.

    Regression guard: idle workers park in ``work_ready.wait()``; the error
    path must notify them and they must re-check the error flag, or the
    pool deadlocks with the caller blocked in ``join()`` forever — most
    easily with more workers than frames.
    """

    def _process_with_watchdog(self, pipeline, frames, timeout_s=20.0):
        import threading

        box = {}

        def run():
            try:
                box["result"] = pipeline.process(frames)
            except BaseException as exc:  # noqa: BLE001 — re-raised below
                box["error"] = exc

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        thread.join(timeout_s)
        assert not thread.is_alive(), "pipeline deadlocked after stage error"
        return box

    def test_mid_frame_error_with_more_workers_than_frames(self):
        def boom(x):
            if x == 1:
                raise RuntimeError("frame 1 exploded")
            return x

        stages = [
            StageDescriptor("pre", work=lambda x: x),
            StageDescriptor("boom", work=boom),
            StageDescriptor("post", work=lambda x: x),
        ]
        pipeline = ThreadedPipeline(stages, workers=8)
        box = self._process_with_watchdog(pipeline, [0, 1, 2])
        assert isinstance(box.get("error"), RuntimeError)
        assert "frame 1 exploded" in str(box["error"])

    def test_error_in_last_stage(self):
        import time

        def slow_sink(x):
            time.sleep(0.002)
            raise ValueError("sink rejected the frame")

        stages = [
            StageDescriptor("work", work=lambda x: x * 2),
            StageDescriptor("sink", work=slow_sink),
        ]
        pipeline = ThreadedPipeline(stages, workers=6)
        box = self._process_with_watchdog(pipeline, list(range(4)))
        assert isinstance(box.get("error"), ValueError)

    def test_single_worker_error_does_not_hang(self):
        def boom(x):
            raise KeyError("immediate")

        pipeline = ThreadedPipeline(
            [StageDescriptor("boom", work=boom)], workers=1
        )
        box = self._process_with_watchdog(pipeline, [1, 2, 3])
        assert isinstance(box.get("error"), KeyError)

    def test_clean_shutdown_after_error_reports_joined(self):
        # After an in-flight error the workers exit on their own; a
        # subsequent shutdown() must join them promptly and report success.
        def boom(x):
            raise RuntimeError("error then shutdown")

        pipeline = ThreadedPipeline(
            [StageDescriptor("boom", work=boom)], workers=4
        )
        box = self._process_with_watchdog(pipeline, [1, 2, 3])
        assert isinstance(box.get("error"), RuntimeError)
        assert pipeline.shutdown(timeout=5.0)

    def test_pool_survives_for_reuse_after_error(self):
        # process() builds fresh topology/threads per call: after an error
        # the same ThreadedPipeline object must work again.
        calls = {"n": 0}

        def flaky(x):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("first call fails")
            return x + 1

        pipeline = ThreadedPipeline(
            [StageDescriptor("flaky", work=flaky)], workers=3
        )
        box = self._process_with_watchdog(pipeline, [10])
        assert isinstance(box.get("error"), RuntimeError)
        assert pipeline.process([10, 20]) == [11, 21]


class TestThreadedPipelineShutdown:
    """stop()/shutdown(timeout) drain in-flight frames without deadlock."""

    def _slow_pipeline(self, processed, gate, workers=4):
        import time

        def slow(x):
            gate.wait(5.0)  # frames park here until the test opens the gate
            time.sleep(0.002)
            processed.append(x)
            return x

        stages = [
            StageDescriptor("pre", work=lambda x: x),
            StageDescriptor("slow", work=slow),
            StageDescriptor("post", work=lambda x: x),
        ]
        return ThreadedPipeline(stages, workers=workers)

    def test_stop_drains_in_flight_and_returns_partial(self):
        import threading

        processed = []
        gate = threading.Event()
        pipeline = self._slow_pipeline(processed, gate)
        box = {}

        def run():
            box["result"] = pipeline.process(range(100))

        runner = threading.Thread(target=run, daemon=True)
        runner.start()
        # Wait until the pipeline is really in flight, then stop it.
        deadline = 5.0
        import time

        start = time.monotonic()
        while not pipeline._active and time.monotonic() - start < deadline:
            time.sleep(0.001)
        assert pipeline.stop()
        gate.set()  # release the slow stage; in-flight frames must drain
        runner.join(10.0)
        assert not runner.is_alive(), "stop() left the pipeline deadlocked"
        # Far fewer than 100 frames ran, and every output is an in-order
        # prefix of the input (no frame overtook another on the way out).
        assert len(box["result"]) < 100
        assert box["result"] == list(range(len(box["result"])))

    def test_shutdown_joins_with_timeout(self):
        import threading

        processed = []
        gate = threading.Event()
        gate.set()  # no stalling: frames flow freely
        pipeline = self._slow_pipeline(processed, gate, workers=2)
        box = {}

        def run():
            box["result"] = pipeline.process(range(50))

        runner = threading.Thread(target=run, daemon=True)
        runner.start()
        assert pipeline.shutdown(timeout=10.0)
        runner.join(10.0)
        assert not runner.is_alive()
        assert "result" in box

    def test_stop_without_active_run_is_false(self):
        pipeline = ThreadedPipeline(
            [StageDescriptor("id", work=lambda x: x)], workers=1
        )
        assert not pipeline.stop()
        assert pipeline.shutdown(timeout=0.1)  # trivially joined

    def test_results_complete_normally_without_stop(self):
        # The shutdown machinery must not disturb a normal full run.
        stages = [StageDescriptor("inc", work=lambda x: x + 1)]
        pipeline = ThreadedPipeline(stages, workers=3)
        assert pipeline.process(range(10)) == list(range(1, 11))
        assert pipeline.shutdown(timeout=1.0)

    def test_concurrent_process_calls_rejected(self):
        import threading
        import time

        gate = threading.Event()

        def block(x):
            gate.wait(5.0)
            return x

        pipeline = ThreadedPipeline(
            [StageDescriptor("block", work=block)], workers=1
        )
        runner = threading.Thread(
            target=lambda: pipeline.process([1]), daemon=True
        )
        runner.start()
        start = time.monotonic()
        while not pipeline._active and time.monotonic() - start < 5.0:
            time.sleep(0.001)
        try:
            with pytest.raises(RuntimeError, match="already processing"):
                pipeline.process([2])
        finally:
            gate.set()
            runner.join(5.0)
        assert not runner.is_alive()


class TestJoinThreads:
    def test_shared_deadline_across_threads(self):
        import threading
        import time

        stop = threading.Event()
        threads = [
            threading.Thread(target=stop.wait, args=(10.0,), daemon=True)
            for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        start = time.monotonic()
        assert not join_threads(threads, timeout=0.2)
        # One shared deadline: nowhere near 4 * 0.2s.
        assert time.monotonic() - start < 2.0
        stop.set()
        assert join_threads(threads, timeout=5.0)

    def test_join_finished_threads_is_true(self):
        import threading

        thread = threading.Thread(target=lambda: None)
        thread.start()
        thread.join()
        assert join_threads([thread], timeout=0.1)
        assert join_threads([], timeout=None)
