"""Property test: the tv verdict tracks concrete PlanVM bit-identity.

For randomly seeded networks and random *legal* pass subsequences
(order-preserving subsequences of the ``-O2`` pipeline), the validator
must discharge every obligation AND the optimized program must stay
bit-identical to the unoptimized one on the VM — the symbolic proof and
the concrete execution agree.  The mutation half checks the converse: a
deliberately semantics-breaking "pass" is refuted by the validator
before anything executes.
"""

import itertools
import random
from dataclasses import replace

import numpy as np
import pytest

from repro.core.tensor import FeatureMapBatch
from repro.isa import (
    PIPELINES,
    PlanVM,
    TranslationValidationError,
    frontend,
)
from repro.isa.passes import PassManager, default_manager
from repro.isa.passes.witness import Witness
from repro.nn import zoo
from repro.nn.network import Network

FULL_PIPELINE = PIPELINES[2]

#: Every order-preserving subsequence of the -O2 pipeline is legal.
ALL_SUBSEQUENCES = [
    combo
    for length in range(1, len(FULL_PIPELINE) + 1)
    for combo in itertools.combinations(FULL_PIPELINE, length)
]


def _network(factory, seed):
    network = Network(factory())
    network.initialize(np.random.default_rng(seed))
    return network


def _frames(network, seed):
    rng = np.random.default_rng(seed)
    return rng.uniform(
        0.0, 1.0, size=(1,) + tuple(network.input_shape)
    ).astype(np.float32)


class TestRandomPipelinesAgreeWithTheVm:
    @pytest.mark.parametrize("name,factory", [
        ("mlp4", zoo.mlp4_config),
        ("cnv6", zoo.cnv6_config),
    ])
    def test_validated_subsequences_stay_bit_identical(self, name, factory):
        rng = random.Random(1234)
        sequences = rng.sample(ALL_SUBSEQUENCES, 8)
        # Always include the boundary cases.
        sequences += [FULL_PIPELINE, (FULL_PIPELINE[0],)]
        for trial, sequence in enumerate(sequences):
            network = _network(factory, seed=trial)
            program = frontend(network, name=name)
            frames = _frames(network, seed=100 + trial)
            expected = PlanVM(program, network).run(
                FeatureMapBatch(frames.copy())
            )
            manager = default_manager()
            # validate=True: every pass must discharge its obligation.
            optimized, stats = manager.run(
                program, sequence, network=network, validate=True
            )
            assert [s.name for s in stats] == list(sequence)
            out = PlanVM(optimized, network).run(
                FeatureMapBatch(frames.copy())
            )
            assert out.data.tobytes() == expected.data.tobytes(), (
                f"{name} {sequence} validated but diverged on the VM"
            )


def _mutants():
    """Deliberately semantics-breaking passes, each with an empty witness."""

    def drop_instruction(program, network):
        instrs = list(program.instructions)
        victim = next(
            i for i, instr in enumerate(instrs) if instr.is_compute
        )
        del instrs[victim]
        return replace(program, instructions=tuple(instrs)), "drop", Witness(
            "mutant"
        )

    def swap_dependent(program, network):
        # Move the first compute instruction after its consumer.
        instrs = list(program.instructions)
        computes = [
            i for i, instr in enumerate(instrs) if instr.is_compute
        ]
        a, b = computes[0], computes[1]
        instrs[a], instrs[b] = instrs[b], instrs[a]
        return replace(program, instructions=tuple(instrs)), "swap", Witness(
            "mutant"
        )

    def premature_release(program, network):
        # Release the produced slot immediately — its consumer still
        # needs it.  (Releasing a genuinely dead slot would be *sound*,
        # and the validator accepts it; this one is not.)
        instrs = list(program.instructions)
        first = next(
            i for i, instr in enumerate(instrs) if instr.is_compute
        )
        instrs[first] = replace(
            instrs[first], releases=(instrs[first].dest,)
        )
        return replace(program, instructions=tuple(instrs)), "rel", Witness(
            "mutant"
        )

    def relabel_layer(program, network):
        instrs = list(program.instructions)
        first = next(
            i for i, instr in enumerate(instrs)
            if instr.is_compute and instr.layer >= 0
        )
        instrs[first] = replace(instrs[first], layer=instrs[first].layer + 1)
        return replace(program, instructions=tuple(instrs)), "rename", Witness(
            "mutant"
        )

    return [drop_instruction, swap_dependent, premature_release,
            relabel_layer]


class TestMutantsAreRefuted:
    @pytest.mark.parametrize("mutant", _mutants(),
                             ids=lambda fn: fn.__name__)
    def test_every_mutant_fails_validation(self, mutant):
        network = _network(zoo.mlp4_config, seed=0)
        program = frontend(network, name="mlp4")
        manager = PassManager()
        manager.register("mutant", mutant)
        with pytest.raises(TranslationValidationError) as excinfo:
            manager.run_one(
                program, "mutant", network=network, verify=False,
                validate=True,
            )
        assert any(
            f.rule.startswith("TV-") and f.severity == "error"
            for f in excinfo.value.findings
        )
