"""Cross-module property-based tests (hypothesis) on system invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tensor import FeatureMap, conv_output_size
from repro.core.thresholds import derive_thresholds
from repro.eval.boxes import Box, Detection, nms
from repro.finn.mvtu import MVTU, Folding, MVTUConvLayer
from repro.video.letterbox import letterbox


class TestFoldingInvariance:
    """The MVTU's PE/SIMD folding changes *time*, never *values*."""

    @given(
        pe=st.sampled_from([1, 2, 4, 16]),
        simd=st.sampled_from([1, 3, 8, 32]),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=25, deadline=None)
    def test_output_independent_of_folding(self, pe, simd, seed):
        rng = np.random.default_rng(seed)
        rows, cols = 8, 36
        weights = rng.choice([-1, 1], size=(rows, cols))
        thresholds = derive_thresholds(
            gamma=rng.uniform(0.5, 2.0, size=rows),
            beta=rng.normal(size=rows),
            mean=rng.normal(size=rows),
            var=rng.uniform(0.5, 2.0, size=rows),
            in_scale=1.0 / 7,
            out_scale=1.0 / 7,
            bits=3,
        )
        reference = MVTU(weights, thresholds, Folding(1, 1))
        folded = MVTU(weights, thresholds, Folding(pe, simd))
        columns = rng.integers(0, 8, size=(cols, 5))
        assert np.array_equal(reference.matmat(columns), folded.matmat(columns))
        # ...while the cycle count strictly follows the folding.
        assert folded.cycles_per_vector() == Folding(pe, simd).fold(rows, cols)


class TestGeometryProperties:
    @given(
        size=st.integers(4, 64),
        ksize=st.sampled_from([1, 3, 5]),
        stride=st.sampled_from([1, 2]),
    )
    @settings(max_examples=50, deadline=None)
    def test_conv_output_size_consistent_with_real_conv(self, size, ksize, stride):
        from repro.core.ops import conv2d

        pad = ksize // 2
        x = np.zeros((1, size, size), dtype=np.float32)
        w = np.zeros((2, 1, ksize, ksize), dtype=np.float32)
        out = conv2d(x, w, None, stride, pad)
        expected = conv_output_size(size, ksize, stride, pad)
        assert out.shape == (2, expected, expected)

    @given(
        stride=st.sampled_from([1, 2]),
        size=st.integers(8, 40).filter(lambda s: s % 2 == 0),
    )
    @settings(max_examples=30, deadline=None)
    def test_stride_two_quarters_conv_ops(self, stride, size):
        """Modification (d)'s arithmetic: stride 2 divides ops by 4."""
        from repro.nn.config import Section
        from repro.nn.layers.convolutional import ConvolutionalLayer

        def ops(s):
            layer = ConvolutionalLayer(
                Section(
                    "convolutional",
                    {"filters": "4", "size": "3", "stride": str(s), "pad": "1",
                     "activation": "linear"},
                )
            )
            layer.init((3, size, size))
            return layer.workload().ops

        assert ops(1) == 4 * ops(2)


class TestNMSProperties:
    @st.composite
    def detections(draw):
        n = draw(st.integers(0, 12))
        dets = []
        for index in range(n):
            dets.append(
                Detection(
                    box=Box(
                        draw(st.floats(0.1, 0.9)),
                        draw(st.floats(0.1, 0.9)),
                        draw(st.floats(0.05, 0.5)),
                        draw(st.floats(0.05, 0.5)),
                    ),
                    class_id=draw(st.integers(0, 3)),
                    score=draw(st.floats(0.01, 1.0)),
                )
            )
        return dets

    @given(dets=detections())
    @settings(max_examples=50, deadline=None)
    def test_nms_idempotent(self, dets):
        once = nms(dets)
        twice = nms(once)
        assert once == twice

    @given(dets=detections())
    @settings(max_examples=50, deadline=None)
    def test_nms_subset_and_sorted(self, dets):
        kept = nms(dets)
        assert len(kept) <= len(dets)
        scores = [d.score for d in kept]
        assert scores == sorted(scores, reverse=True)
        for det in kept:
            assert det in dets


class TestLetterboxProperties:
    @given(
        h=st.integers(20, 200),
        w=st.integers(20, 200),
        net=st.sampled_from([48, 96, 416]),
        x=st.floats(0.2, 0.8),
        y=st.floats(0.2, 0.8),
        bw=st.floats(0.05, 0.3),
        bh=st.floats(0.05, 0.3),
    )
    @settings(max_examples=40, deadline=None)
    def test_box_mapping_roundtrip(self, h, w, net, x, y, bw, bh):
        image = np.zeros((3, h, w), dtype=np.float32)
        _, geometry = letterbox(image, net)
        box = Box(x, y, bw, bh)
        back = geometry.net_box_to_frame(geometry.frame_box_to_net(box))
        assert back.x == pytest.approx(box.x, abs=1e-6)
        assert back.w == pytest.approx(box.w, abs=1e-6)

    @given(h=st.integers(20, 120), w=st.integers(20, 120))
    @settings(max_examples=30, deadline=None)
    def test_canvas_always_square_and_gray_padded(self, h, w):
        image = np.ones((3, h, w), dtype=np.float32)
        boxed, geometry = letterbox(image, 64)
        assert boxed.shape == (3, 64, 64)
        # padding area (if any) is exactly 0.5
        if geometry.offset_y > 0:
            assert np.allclose(boxed[:, 0, :], 0.5)
        if geometry.offset_x > 0:
            assert np.allclose(boxed[:, :, 0], 0.5)


class TestQuantizedInferenceProperties:
    @given(seed=st.integers(0, 50), bits=st.sampled_from([1, 2, 3]))
    @settings(max_examples=20, deadline=None)
    def test_mvtu_conv_levels_in_range(self, seed, bits):
        rng = np.random.default_rng(seed)
        c_in, c_out = 4, 6
        weights = rng.choice([-1, 1], size=(c_out, c_in * 9))
        thresholds = derive_thresholds(
            gamma=rng.uniform(0.5, 2.0, size=c_out),
            beta=rng.normal(size=c_out),
            mean=rng.normal(size=c_out),
            var=rng.uniform(0.5, 2.0, size=c_out),
            in_scale=1.0 / 7,
            out_scale=1.0 / 7,
            bits=bits,
        )
        layer = MVTUConvLayer(
            MVTU(weights, thresholds, Folding(2, 4)),
            in_channels=c_in, ksize=3, stride=1, pad=1, out_scale=1.0 / 7,
        )
        levels = rng.integers(0, 8, size=(c_in, 6, 6))
        out = layer.forward(FeatureMap(levels, scale=1.0 / 7))
        assert out.data.min() >= 0
        assert out.data.max() <= (1 << bits) - 1


class TestDetectionLossDescent:
    @given(seed=st.integers(0, 30))
    @settings(max_examples=10, deadline=None)
    def test_gradient_step_reduces_loss(self, seed):
        from repro.eval.boxes import GroundTruth
        from repro.train.loss import DetectionLoss

        rng = np.random.default_rng(seed)
        loss_fn = DetectionLoss(n_classes=4)
        preds = rng.normal(size=(1, 9, 4, 4)).astype(np.float64)
        targets = [[GroundTruth(2, Box(0.4, 0.6, 0.3, 0.2))]]
        loss0, grad = loss_fn(preds, targets)
        loss1, _ = loss_fn(preds - 0.01 * grad, targets)
        assert loss1 <= loss0 + 1e-9
