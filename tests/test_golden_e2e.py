"""Golden end-to-end regression: Tincy YOLO detections, pinned by checksum.

One seeded 416x416 frame runs through the full hybrid (CPU -> fabric ->
CPU) Tincy YOLO network along the four execution paths the stack
offers:

1. the engine directly (``Executor.run`` on the compiled plan),
2. the serving path (``InferenceServer.infer``, fabric mode),
3. the degraded CPU-fallback path (an injected fabric fault with a zero
   retry budget forces the breaker's reference route),
4. the serialized-artifact path (the plan lowered to ISA bytecode,
   encoded, decoded and executed by ``PlanVM``).

All four outputs must be **byte-equal** to each other, and the decoded
detections (class ids, scores, box coordinates) must hash to the pinned
golden checksum.  The checksum is computed over values rounded to 1e-3,
so it survives the sub-1e-6 float noise of differing BLAS builds while
still pinning every detection, its ranking and its geometry.

The golden value was produced by this very test (run it with ``-v`` on a
mismatch to see the recomputed digest); update it only when an
intentional numerics change is being made, and say so in the commit.
"""

import hashlib

import numpy as np
import pytest

import repro.finn  # noqa: F401  (registers fabric.so for offload cfgs)
from repro import faults
from repro.core.tensor import FeatureMap, FeatureMapBatch
from repro.engine import Executor
from repro.finn.offload_backend import export_offload
from repro.nn.config import NetworkConfig, Section
from repro.nn.network import Network
from repro.nn.zoo import tincy_yolo_config
from repro.serve import InferenceServer, ServeConfig
from repro.util.clock import VirtualClock

pytestmark = pytest.mark.integration

#: sha256 of the decoded detections of the seeded golden frame.
GOLDEN_DETECTIONS_SHA256 = (
    "59d5ddd229cc6798a902697222f68596219faf434503ea0c6b4582d6510c78b5"
)

#: Decode threshold for the golden detections (high enough to keep the
#: set small and stable, low enough to retain a handful of boxes).
GOLDEN_THRESHOLD = 0.2


@pytest.fixture(scope="module")
def tincy_hybrid(tmp_path_factory):
    """Seeded full-scale Tincy YOLO with its hidden layers offloaded."""
    rng = np.random.default_rng(20180621)
    network = Network(tincy_yolo_config())
    network.initialize(rng)
    for layer in network.layers:
        if layer.ltype != "convolutional":
            continue
        n = layer.filters
        layer.biases = (rng.normal(size=n) * 0.1).astype(np.float32)
        if layer.batch_normalize:
            layer.scales = rng.uniform(0.5, 1.5, size=n).astype(np.float32)
            layer.rolling_mean = (rng.normal(size=n) * 0.2).astype(np.float32)
            layer.rolling_var = rng.uniform(0.5, 1.5, size=n).astype(np.float32)

    binparam = str(tmp_path_factory.mktemp("binparam-golden"))
    export_offload(
        network.layers[1:-2],
        input_scale=network.layers[0].out_quant.scale,
        input_shape=network.layers[0].out_shape,
        directory=binparam,
    )
    sections = [network.config.sections[0], network.config.layers[0]]
    sections.append(
        Section(
            "offload",
            {
                "library": "fabric.so",
                "network": "tincy-yolo-offload.json",
                "weights": binparam,
                "height": "13",
                "width": "13",
                "channel": "512",
            },
        )
    )
    sections.extend(network.config.layers[-2:])
    hybrid = Network(NetworkConfig(sections))
    for src, dst in (
        (network.layers[0], hybrid.layers[0]),
        (network.layers[-2], hybrid.layers[2]),
    ):
        dst.weights = src.weights.copy()
        dst.biases = src.biases.copy()
        if src.batch_normalize:
            dst.scales = src.scales.copy()
            dst.rolling_mean = src.rolling_mean.copy()
            dst.rolling_var = src.rolling_var.copy()
    hybrid.layers[1].backend.load_weights()
    return hybrid


@pytest.fixture(scope="module")
def golden_frame():
    rng = np.random.default_rng(20180622)
    return FeatureMap(
        rng.uniform(0, 1, size=(3, 416, 416)).astype(np.float32)
    )


def detections_digest(region, fm: FeatureMap) -> str:
    """Canonical sha256 of the decoded detections (rounded to 1e-3)."""
    rows = []
    for det in region.detections(fm, threshold=GOLDEN_THRESHOLD):
        rows.append(
            f"{det.class_id} {det.score:.3f} {det.objectness:.3f} "
            f"{det.box.x:.3f} {det.box.y:.3f} {det.box.w:.3f} {det.box.h:.3f}"
        )
    return hashlib.sha256("\n".join(rows).encode()).hexdigest()


class TestGoldenDetections:
    def test_three_paths_byte_equal_and_pinned(self, tincy_hybrid, golden_frame):
        # Path 1: the engine on the compiled plan.
        batch = FeatureMapBatch.from_maps([golden_frame])
        engine_out = list(Executor(tincy_hybrid.plan()).run(batch).frames())[0]

        # Path 2: the serving path (fabric mode).
        clock = VirtualClock()
        config = ServeConfig(max_batch=1, cpu_workers=1, warmup=False)
        with InferenceServer(tincy_hybrid, config, clock=clock) as server:
            served_out = server.infer(golden_frame, timeout_s=120)

        # Path 3: the degraded CPU-fallback path — a zero retry budget plus
        # one injected fabric fault forces the reference route.
        clock = VirtualClock()
        degraded_config = ServeConfig(
            max_batch=1,
            cpu_workers=1,
            warmup=False,
            max_retries=0,
            breaker_threshold=1,
            breaker_probe_after_s=1000.0,
        )
        plan = faults.FaultPlan.parse("fabric-raise@0")
        with faults.install(plan, clock=clock):
            with InferenceServer(
                tincy_hybrid, degraded_config, clock=clock
            ) as server:
                degraded_out = server.infer(golden_frame, timeout_s=120)
                resilience = server.metrics.snapshot()["resilience"]
        assert resilience["degraded_inferences"] == 1  # path 3 really degraded

        # Path 4: the serialized artifact — lower, encode, decode, run in
        # the VM.  The bytecode form must not perturb a single bit.
        from repro.isa import PlanVM, decode, encode, lower_network

        program = decode(encode(lower_network(tincy_hybrid, name="tincy")))
        assert program.uses_fabric
        vm_out = list(PlanVM(program, tincy_hybrid).run(batch).frames())[0]

        # Path 5: the optimizing compiler at -O2 — fused chains, folded
        # requantization, embedded liveness — encoded, decoded, and run
        # in the VM.  Optimization must not perturb a single bit either.
        from repro.isa.compiler import compile_network

        optimized, _stats = compile_network(
            tincy_hybrid, name="tincy", level=2
        )
        assert optimized.opt_level == 2 and optimized.passes
        optimized = decode(encode(optimized))
        o2_out = list(PlanVM(optimized, tincy_hybrid).run(batch).frames())[0]

        # One fixture, five paths, byte-equal.
        for other in (served_out, degraded_out, vm_out, o2_out):
            assert other.scale == engine_out.scale
            assert np.array_equal(other.data, engine_out.data)

        # And the detections match the pinned golden checksum.
        region = tincy_hybrid.layers[-1]
        digest = detections_digest(region, engine_out)
        detections = region.detections(engine_out, threshold=GOLDEN_THRESHOLD)
        assert len(detections) > 0  # the threshold keeps a non-empty set
        assert digest == GOLDEN_DETECTIONS_SHA256, (
            f"golden detections drifted: got sha256 {digest} over "
            f"{len(detections)} detections (expected "
            f"{GOLDEN_DETECTIONS_SHA256}); if the numerics change is "
            f"intentional, update GOLDEN_DETECTIONS_SHA256"
        )

    def test_shard_tier_survives_mid_run_kill_and_matches_golden(
        self, tincy_hybrid, golden_frame
    ):
        # Path 6: the multi-process shard tier.  Full-scale Tincy behind
        # a 3-shard router, with one shard SIGKILLed by the chaos plan
        # between the first and second request — every answer must still
        # be byte-equal to the engine and hash to the pinned checksum.
        from repro.serve import ShardTierConfig, ShardedServer
        from repro.serve.shard import fork_available

        if not fork_available():
            pytest.skip("shard tier needs the fork start method")

        batch = FeatureMapBatch.from_maps([golden_frame])
        engine_out = list(Executor(tincy_hybrid.plan()).run(batch).frames())[0]

        config = ShardTierConfig(
            shards=3,
            result_cache=0,  # force a real dispatch per request
            coalesce=False,
            heartbeat_timeout_s=60.0,  # a busy Tincy shard is not hung
        )
        plan = faults.FaultPlan.parse("shard-kill@1")
        with faults.install(plan) as injector:
            with ShardedServer(tincy_hybrid, config) as server:
                outputs = [
                    server.infer(golden_frame, timeout_s=300) for _ in range(3)
                ]
                tier = server.snapshot()["shard_tier"]
                alive = server.router.alive_shards()
            events = injector.events()

        assert events == [(faults.SHARD_KILL, "shard-kill", 1, "")]
        assert tier["shard_deaths"] == 1
        assert len(alive) == 2  # the survivors kept serving
        for out in outputs:
            assert out.scale == engine_out.scale
            assert np.array_equal(out.data, engine_out.data)

        region = tincy_hybrid.layers[-1]
        assert detections_digest(region, outputs[-1]) == GOLDEN_DETECTIONS_SHA256
