"""The shard tier's chaos acceptance matrix (docs/SERVING.md).

Every fleet fault kind in {shard-kill, shard-slow, router-split} crossed
with three injection phases {early, mid, late} of a closed-loop request
sequence against a live 3-shard :class:`ShardedServer`.  Each cell must

* return results **bit-identical** to ``Network.forward_batch`` on the
  same frames — chaos changes *where* a request runs, never *what* it
  returns;
* emit exactly the scripted death / split / slow-event metrics, shed or
  fail nothing, and keep the surviving fleet serving;
* be deterministic: two consecutive runs of a cell produce the same
  fault transcript and the same (timing-free) shard-tier metrics.

Determinism is engineered the same way as ``test_faults_matrix``: the
chaos sites are polled once per submitted request under one lock, the
requests are submitted closed-loop (each completes before the next is
admitted, so a kill never races an in-flight dispatch), the result cache
and coalescing are disabled so every request dispatches, and the
heartbeat timeout is set far beyond the test's wall time so the only
deaths are the scripted ones.  What *can't* be scripted — the heartbeat
counters and cold-start timings — is excluded from the comparison.

Two further scenarios cover the paths the matrix can't reach closed-loop:
a *hung* shard (stalled mid-request, detected by heartbeat timeout, its
in-flight work re-routed) and a fully dead fleet (served by the parent's
inline executor).
"""

from dataclasses import dataclass
from typing import Dict, List

import numpy as np
import pytest

from repro import faults
from repro.core.tensor import FeatureMap, FeatureMapBatch
from repro.nn import zoo
from repro.nn.network import Network
from repro.serve import (
    ConsistentHashRing,
    ShardedServer,
    ShardTierConfig,
    frame_digest,
)
from repro.serve.shard import fork_available

pytestmark = [
    pytest.mark.integration,
    pytest.mark.skipif(
        not fork_available(), reason="shard tier needs the fork start method"
    ),
]

SHARDS = 3
REQUESTS = 18

#: Injection phases: the per-site invocation index the fault fires at.
PHASES = {"early": 2, "mid": REQUESTS // 2, "late": REQUESTS - 3}

KINDS = ("shard-kill", "shard-slow", "router-split")

#: shard_tier keys that depend on wall-clock timing, not on the request
#: sequence — excluded from the two-run determinism comparison.
TIMING_KEYS = ("heartbeats_sent", "heartbeat_pongs", "cold_starts")


@dataclass(frozen=True)
class Cell:
    """One matrix cell: the injected spec and what must happen."""

    kind: str
    at: int
    span: int = 6
    hang_s: float = 0.001
    expect_deaths: int = 0
    expect_splits: int = 0
    expect_slow: int = 0

    def spec(self) -> faults.FaultSpec:
        return faults.FaultSpec(
            kind=self.kind, at=(self.at,), hang_s=self.hang_s, span=self.span
        )


def _cell(kind: str, phase: str) -> Cell:
    at = PHASES[phase]
    if kind == "shard-kill":
        return Cell(kind=kind, at=at, expect_deaths=1)
    if kind == "shard-slow":
        return Cell(kind=kind, at=at, expect_slow=1)
    return Cell(kind=kind, at=at, expect_splits=1)


CELLS = [
    pytest.param(_cell(kind, phase), id=f"{kind}/{phase}")
    for kind in KINDS
    for phase in PHASES
]


@pytest.fixture(scope="module")
def network():
    rng = np.random.default_rng(20180621)
    net = Network(zoo.mlp4_config())
    net.initialize(rng)
    return net


@pytest.fixture(scope="module")
def frames(network):
    rng = np.random.default_rng(20180622)
    return [
        FeatureMap(
            rng.uniform(0, 1, size=network.input_shape).astype(np.float32)
        )
        for _ in range(REQUESTS)
    ]


@pytest.fixture(scope="module")
def expected(network, frames):
    """Ground truth, computed with no fault plan installed."""
    return list(
        network.forward_batch(FeatureMapBatch.from_maps(frames)).frames()
    )


def _tier_config(**overrides) -> ShardTierConfig:
    base = dict(
        shards=SHARDS,
        result_cache=0,  # every request dispatches (deterministic counts)
        coalesce=False,
        heartbeat_interval_s=0.1,
        heartbeat_timeout_s=30.0,  # only scripted deaths in the matrix
    )
    base.update(overrides)
    return ShardTierConfig(**base)


def run_cell(network, frames, cell: Cell):
    """Serve one matrix cell; returns (results, events, snapshot, alive)."""
    plan = faults.FaultPlan([cell.spec()], seed=20180621)
    with faults.install(plan) as injector:
        with ShardedServer(network, _tier_config()) as server:
            results = [server.infer(f, timeout_s=60) for f in frames]
            snapshot = server.snapshot()
            alive = server.router.alive_shards()
        events = injector.events()
    return results, events, snapshot, alive


def _timing_free(snapshot: Dict) -> Dict:
    """The deterministic slice of one run's observable state."""
    tier = {
        key: value
        for key, value in snapshot["shard_tier"].items()
        if key not in TIMING_KEYS
    }
    return {
        "shard_tier": tier,
        "accepted": snapshot["accepted"],
        "completed": snapshot["completed"],
        "failed": snapshot["failed"],
        "shed": snapshot["shed"],
        "router": snapshot["router"],
    }


class TestChaosMatrix:
    @pytest.mark.parametrize("cell", CELLS)
    def test_cell(self, network, frames, expected, cell):
        results, events, snapshot, alive = run_cell(network, frames, cell)

        # 1. Bit-identity: chaos must never change a single output bit.
        assert len(results) == REQUESTS
        for got, want in zip(results, expected):
            assert got.scale == want.scale
            assert np.array_equal(got.data, want.data)

        # 2. The scripted fault fired exactly once, at the scripted tick.
        spec = cell.spec()
        assert events == [(spec.site, cell.kind, cell.at, "")]

        # 3. The metrics match the script exactly.  Closed-loop submission
        #    means a kill never catches a request in flight: reroutes stay
        #    zero and nothing ever needs the inline executor.
        tier = snapshot["shard_tier"]
        assert tier["shard_deaths"] == cell.expect_deaths
        assert tier["router_splits"] == cell.expect_splits
        assert tier["shard_slow_events"] == cell.expect_slow
        assert tier["reroutes"] == 0
        assert tier["inline_fallbacks"] == 0
        assert snapshot["accepted"] == REQUESTS
        assert snapshot["completed"] == REQUESTS
        assert snapshot["failed"] == 0
        assert snapshot["shed"] == 0

        # 4. Fleet health afterwards: a kill leaves N-1 shards serving
        #    (the cause is the chaos kill, or the collector noticing the
        #    corpse first — either way exactly one death is recorded).
        if cell.kind == "shard-kill":
            assert len(alive) == SHARDS - 1
            assert sum(tier["death_causes"].values()) == 1
        else:
            assert len(alive) == SHARDS
            assert tier["death_causes"] == {}

    @pytest.mark.parametrize("cell", CELLS)
    def test_cell_is_deterministic(self, network, frames, cell):
        first = run_cell(network, frames, cell)
        second = run_cell(network, frames, cell)
        assert first[1] == second[1]  # fault transcript
        assert _timing_free(first[2]) == _timing_free(second[2])
        assert first[3] == second[3]  # surviving membership


class TestHungShard:
    def test_heartbeat_timeout_reroutes_in_flight_work(
        self, network, frames, expected
    ):
        """A shard stalled *mid-request* stops ponging -> declared dead.

        The victim is slowed so hard (1.5s per request against a 0.4s
        heartbeat timeout) that it wedges on its first request; the
        monitor expires it, the router marks it dead, and every request
        queued behind the stall is re-routed and still answered
        bit-identically.
        """
        config = _tier_config(
            shards=2, heartbeat_interval_s=0.05, heartbeat_timeout_s=0.4
        )
        with ShardedServer(network, config) as server:
            # Pick frames that really route to the victim: rebuild the
            # server's ring locally and check each frame's owner.
            ring = ConsistentHashRing(config.vnodes)
            for name in server.live_shard_names():
                ring.add(name)
            owners = {frame_digest(f): ring.lookup(frame_digest(f)) for f in frames}
            victim_name = server.live_shard_names()[0]
            victim_frames = [
                f for f in frames if owners[frame_digest(f)] == victim_name
            ]
            assert len(victim_frames) >= 2  # seeded: both shards get traffic

            server._shards[victim_name].send_slow(1.5, len(victim_frames))
            futures = [server.submit(f) for f in frames]
            results = [fut.result(60) for fut in futures]
            snapshot = server.snapshot()
        for got, want in zip(results, expected):
            assert np.array_equal(got.data, want.data)
        tier = snapshot["shard_tier"]
        assert tier["shard_deaths"] == 1
        assert tier["death_causes"] == {"heartbeat-timeout": 1}
        assert tier["reroutes"] >= 1
        assert snapshot["failed"] == 0

    def test_all_shards_dead_serves_inline(self, network, frames, expected):
        """SIGKILL the whole fleet: the parent's inline executor answers."""
        import time

        config = _tier_config(shards=2)
        with ShardedServer(network, config) as server:
            for shard in list(server._shards.values()):
                shard.kill()
            deadline = time.monotonic() + 10.0
            while server.router.alive_shards() and time.monotonic() < deadline:
                time.sleep(0.01)
            assert server.router.alive_shards() == []
            result = server.infer(frames[0], timeout_s=60)
            snapshot = server.snapshot()
        assert np.array_equal(result.data, expected[0].data)
        assert snapshot["shard_tier"]["inline_fallbacks"] == 1
        assert snapshot["shard_tier"]["shard_deaths"] == 2
        assert snapshot["failed"] == 0


class TestConfigValidation:
    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError):
            ShardTierConfig(shards=0)

    def test_fleet_spec_site_pairing_enforced(self):
        with pytest.raises(ValueError):
            faults.FaultSpec(kind="shard-kill", site=faults.ROUTER_SPLIT)
        with pytest.raises(ValueError):
            faults.FaultSpec(kind="fabric-raise", site=faults.SHARD_KILL)
        with pytest.raises(ValueError):
            faults.FaultSpec(kind="shard-slow", site=faults.FABRIC_STEP)
        with pytest.raises(ValueError):
            faults.FaultSpec(kind="router-split", at=(0,), span=0)
