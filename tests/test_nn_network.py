"""Network construction / forward / weights / offload integration tests."""

import numpy as np
import pytest

from repro.core.tensor import FeatureMap
from repro.nn.network import Network
from repro.nn.registry import register_backend, unregister_backend
from repro.nn.weights import load_weights, save_weights

SMALL_CFG = """
[net]
width=16
height=16
channels=3

[convolutional]
batch_normalize=1
filters=8
size=3
stride=1
pad=1
activation=leaky

[maxpool]
size=2
stride=2

[convolutional]
filters=4
size=1
stride=1
pad=0
activation=linear
"""


class TestBuild:
    def test_shapes_propagate(self):
        net = Network.from_cfg(SMALL_CFG)
        assert net.input_shape == (3, 16, 16)
        assert [layer.out_shape for layer in net.layers] == [
            (8, 16, 16),
            (8, 8, 8),
            (4, 8, 8),
        ]

    def test_unknown_layer_type(self):
        with pytest.raises(ValueError, match="unknown layer type"):
            Network.from_cfg("[net]\nwidth=8\nheight=8\nchannels=1\n[frobnicate]\nx=1")

    def test_forward_shape_and_determinism(self, rng):
        net = Network.from_cfg(SMALL_CFG)
        net.initialize(rng)
        x = FeatureMap(
            np.random.default_rng(7).normal(size=(3, 16, 16)).astype(np.float32)
        )
        out1 = net.forward(x)
        out2 = net.forward(x)
        assert out1.shape == (4, 8, 8)
        assert np.array_equal(out1.data, out2.data)

    def test_forward_rejects_wrong_input(self, rng):
        net = Network.from_cfg(SMALL_CFG)
        with pytest.raises(ValueError, match="input shape"):
            net.forward(FeatureMap(np.zeros((1, 16, 16), dtype=np.float32)))

    def test_forward_all_collects_intermediates(self, rng):
        net = Network.from_cfg(SMALL_CFG)
        net.initialize(rng)
        x = FeatureMap(rng.normal(size=(3, 16, 16)).astype(np.float32))
        outputs = net.forward_all(x)
        assert len(outputs) == 3
        assert np.array_equal(outputs[-1].data, net.forward(x).data)


class TestWeightsFile:
    def test_darknet_roundtrip(self, rng, tmp_path):
        net = Network.from_cfg(SMALL_CFG)
        net.initialize(rng)
        for layer in net.layers:
            if hasattr(layer, "biases") and layer.biases is not None:
                layer.biases = rng.normal(size=layer.biases.shape).astype(np.float32)
        path = str(tmp_path / "net.weights")
        save_weights(net, path, seen=12345)
        clone = Network.from_cfg(SMALL_CFG)
        seen = load_weights(clone, path)
        assert seen == 12345
        assert np.array_equal(clone.save_weights_array(), net.save_weights_array())
        x = FeatureMap(rng.normal(size=(3, 16, 16)).astype(np.float32))
        assert np.array_equal(clone.forward(x).data, net.forward(x).data)

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "bad.weights"
        path.write_bytes(b"\x00" * 4)
        with pytest.raises(ValueError, match="truncated"):
            load_weights(Network.from_cfg(SMALL_CFG), str(path))

    def test_surplus_floats_rejected(self, rng, tmp_path):
        net = Network.from_cfg(SMALL_CFG)
        net.initialize(rng)
        path = str(tmp_path / "net.weights")
        save_weights(net, path)
        with open(path, "ab") as handle:
            handle.write(np.zeros(3, dtype=np.float32).tobytes())
        with pytest.raises(ValueError, match="unconsumed"):
            load_weights(Network.from_cfg(SMALL_CFG), path)


class _DoublerBackend:
    """A minimal Fig. 3 backend: doubles the input, halves the geometry."""

    def __init__(self):
        self.loaded = False
        self.destroyed = False

    def init(self, section, in_shape):
        c, h, w = in_shape
        return (c, h // 2, w // 2)

    def load_weights(self):
        self.loaded = True

    def forward(self, fm):
        data = fm.data[:, ::2, ::2] * 2
        return FeatureMap(data, scale=fm.scale)

    def destroy(self):
        self.destroyed = True


OFFLOAD_CFG = """
[net]
width=8
height=8
channels=2

[offload]
library=test.doubler
network=sub.json
weights=binparam/
height=4
width=4
channel=2
"""


class TestOffloadIntegration:
    def setup_method(self):
        self.backend = _DoublerBackend()
        register_backend("test.doubler", lambda: self.backend)

    def teardown_method(self):
        unregister_backend("test.doubler")

    def test_life_cycle_hooks_run(self, rng):
        net = Network.from_cfg(OFFLOAD_CFG)
        net.load_weights_array(np.zeros(0, dtype=np.float32))
        assert self.backend.loaded
        x = FeatureMap(rng.normal(size=(2, 8, 8)).astype(np.float32))
        out = net.forward(x)
        assert out.shape == (2, 4, 4)
        assert np.allclose(out.data, x.data[:, ::2, ::2] * 2)
        net.destroy()
        assert self.backend.destroyed

    def test_geometry_mismatch_detected(self):
        bad_cfg = OFFLOAD_CFG.replace("channel=2", "channel=3")
        with pytest.raises(ValueError, match="declares"):
            Network.from_cfg(bad_cfg)

    def test_unregistered_library_fails(self):
        cfg = OFFLOAD_CFG.replace("test.doubler", "missing.so")
        with pytest.raises(LookupError, match="missing.so"):
            Network.from_cfg(cfg)

    def test_import_path_resolution(self):
        cfg = OFFLOAD_CFG.replace(
            "library=test.doubler", "library=tests.test_nn_network:_DoublerBackend"
        )
        net = Network.from_cfg(cfg)
        assert net.output_shape == (2, 4, 4)
