"""[route] / [reorg] layer tests and the full YOLOv2 topology."""

import numpy as np
import pytest

from repro.core.tensor import FeatureMap
from repro.nn.network import Network
from repro.nn.zoo import tiny_yolo_config, yolov2_config

ROUTE_CFG = """
[net]
width=8
height=8
channels=2

[convolutional]
filters=3
size=3
stride=1
pad=1
activation=relu

[convolutional]
filters=4
size=3
stride=1
pad=1
activation=relu

[route]
layers=-1,-2

[convolutional]
filters=2
size=1
stride=1
pad=0
activation=linear
"""


class TestRouteLayer:
    def test_concatenates_channels(self, rng):
        net = Network.from_cfg(ROUTE_CFG)
        net.initialize(rng)
        route = net.layers[2]
        assert route.out_shape == (7, 8, 8)
        outputs = net.forward_all(
            FeatureMap(rng.normal(size=(2, 8, 8)).astype(np.float32))
        )
        concat = outputs[2].data
        assert np.array_equal(concat[:4], outputs[1].data)
        assert np.array_equal(concat[4:], outputs[0].data)

    def test_forward_shape(self, rng):
        net = Network.from_cfg(ROUTE_CFG)
        net.initialize(rng)
        out = net.forward(FeatureMap(rng.normal(size=(2, 8, 8)).astype(np.float32)))
        assert out.shape == (2, 8, 8)

    def test_absolute_reference(self, rng):
        cfg = ROUTE_CFG.replace("layers=-1,-2", "layers=0")
        net = Network.from_cfg(cfg)
        assert net.layers[2].out_shape == (3, 8, 8)

    def test_forward_reference_rejected(self):
        cfg = ROUTE_CFG.replace("layers=-1,-2", "layers=5")
        with pytest.raises(ValueError, match="outside"):
            Network.from_cfg(cfg)

    def test_mismatched_spatial_sizes_rejected(self):
        cfg = ROUTE_CFG.replace(
            "[route]\nlayers=-1,-2",
            "[maxpool]\nsize=2\nstride=2\n\n[route]\nlayers=-1,-3",
        )
        with pytest.raises(ValueError, match="spatial"):
            Network.from_cfg(cfg)

    def test_requires_history(self, rng):
        net = Network.from_cfg(ROUTE_CFG)
        with pytest.raises(ValueError, match="history"):
            net.layers[2].forward(FeatureMap(np.zeros((4, 8, 8), np.float32)))


REORG_CFG = """
[net]
width=8
height=8
channels=3

[reorg]
stride=2
"""


class TestReorgLayer:
    def test_space_to_depth_shape(self):
        net = Network.from_cfg(REORG_CFG)
        assert net.output_shape == (12, 4, 4)

    def test_preserves_all_values(self, rng):
        net = Network.from_cfg(REORG_CFG)
        x = rng.normal(size=(3, 8, 8)).astype(np.float32)
        out = net.forward(FeatureMap(x)).data
        assert sorted(out.ravel().tolist()) == sorted(x.ravel().tolist())

    def test_block_structure(self):
        # A checkerboard: each 2x2 block's corners land in distinct slices.
        x = np.arange(16, dtype=np.float32).reshape(1, 4, 4)
        net = Network.from_cfg(
            "[net]\nwidth=4\nheight=4\nchannels=1\n[reorg]\nstride=2\n"
        )
        out = net.forward(FeatureMap(x)).data
        assert out.shape == (4, 2, 2)
        # slice (0,0): top-left corners of each block
        assert out[0].tolist() == [[0, 2], [8, 10]]

    def test_indivisible_size_rejected(self):
        with pytest.raises(ValueError, match="divisible"):
            Network.from_cfg(
                "[net]\nwidth=5\nheight=5\nchannels=1\n[reorg]\nstride=2\n"
            )

    def test_scale_passthrough(self, rng):
        net = Network.from_cfg(REORG_CFG)
        fm = FeatureMap(rng.integers(0, 8, size=(3, 8, 8)), scale=1.0 / 7)
        assert net.layers[0].forward(fm).scale == 1.0 / 7


class TestYoloV2:
    def test_topology_builds(self):
        net = Network(yolov2_config())
        assert net.output_shape == (125, 13, 13)
        assert len(net.find_layers("route")) == 2
        assert len(net.find_layers("reorg")) == 1

    def test_passthrough_concat_width(self):
        net = Network(yolov2_config())
        route = net.find_layers("route")[1]
        assert route.out_shape == (1280, 13, 13)  # 1024 + 64*4

    def test_much_heavier_than_tiny(self):
        """§III-A: the full YOLO poses an even bigger challenge."""
        full = Network(yolov2_config()).total_ops()
        tiny = Network(tiny_yolo_config()).total_ops()
        assert full > 4 * tiny

    def test_forward_at_reduced_scale(self, rng):
        """Functional check on a 4x-smaller input (same topology)."""
        config = yolov2_config()
        config.net.options["width"] = "160"
        config.net.options["height"] = "160"
        net = Network(config)
        net.initialize(rng)
        out = net.forward(
            FeatureMap(rng.uniform(size=(3, 160, 160)).astype(np.float32))
        )
        assert out.shape == (125, 5, 5)
