"""API quality gates: public surface is documented and importable.

Deliverable (e) of the reproduction plan requires doc comments on every
public item; this test walks the package and enforces it, so documentation
rot fails CI instead of accumulating.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.core",
    "repro.nn",
    "repro.nn.layers",
    "repro.engine",
    "repro.finn",
    "repro.neon",
    "repro.perf",
    "repro.pipeline",
    "repro.video",
    "repro.data",
    "repro.train",
    "repro.eval",
    "repro.util",
]


def _iter_modules():
    seen = set()
    for name in PACKAGES:
        package = importlib.import_module(name)
        yield package
        seen.add(name)
        if hasattr(package, "__path__"):
            for info in pkgutil.iter_modules(package.__path__):
                full = f"{name}.{info.name}"
                if full not in seen:
                    seen.add(full)
                    yield importlib.import_module(full)


ALL_MODULES = list(_iter_modules())


class TestDocumentation:
    @pytest.mark.parametrize(
        "module", ALL_MODULES, ids=[m.__name__ for m in ALL_MODULES]
    )
    def test_every_module_has_a_docstring(self, module):
        assert module.__doc__ and module.__doc__.strip(), module.__name__

    @pytest.mark.parametrize(
        "module", ALL_MODULES, ids=[m.__name__ for m in ALL_MODULES]
    )
    def test_every_public_item_documented(self, module):
        undocumented = []
        for name in getattr(module, "__all__", []):
            item = getattr(module, name, None)
            if item is None or not (
                inspect.isclass(item) or inspect.isfunction(item)
            ):
                continue
            if not (item.__doc__ and item.__doc__.strip()):
                undocumented.append(name)
        assert not undocumented, (
            f"{module.__name__}: undocumented public items {undocumented}"
        )

    @pytest.mark.parametrize(
        "module", ALL_MODULES, ids=[m.__name__ for m in ALL_MODULES]
    )
    def test_all_exports_resolve(self, module):
        missing = [
            name
            for name in getattr(module, "__all__", [])
            if not hasattr(module, name)
        ]
        assert not missing, f"{module.__name__}: __all__ lists missing {missing}"


class TestLoadNetwork:
    def test_loads_cfg_and_weights(self, rng, tmp_path):
        import numpy as np

        from repro import load_network
        from repro.nn.network import Network
        from repro.nn.weights import save_weights

        cfg_text = (
            "[net]\nwidth=8\nheight=8\nchannels=3\n"
            "[convolutional]\nfilters=4\nsize=3\nstride=1\npad=1\n"
            "activation=relu\n"
        )
        cfg = tmp_path / "net.cfg"
        cfg.write_text(cfg_text)
        reference = Network.from_cfg(cfg_text)
        reference.initialize(rng)
        weights = tmp_path / "net.weights"
        save_weights(reference, str(weights))

        loaded = load_network(str(cfg), str(weights))
        assert np.array_equal(
            loaded.save_weights_array(), reference.save_weights_array()
        )

    def test_cfg_only(self, tmp_path):
        from repro import load_network

        cfg = tmp_path / "net.cfg"
        cfg.write_text(
            "[net]\nwidth=8\nheight=8\nchannels=1\n[softmax]\n"
        )
        network = load_network(str(cfg))
        assert network.output_shape == (1, 8, 8)
