"""Memory-footprint model tests (§I: quantization defuses parameter storage)."""

import pytest

from repro.nn.network import Network
from repro.nn.zoo import mlp4_config, tincy_yolo_config, tiny_yolo_config
from repro.perf.memory import compression_factor, network_memory


class TestFloatBaseline:
    def test_tiny_yolo_float_weights_are_tens_of_megabytes(self):
        network = Network(tiny_yolo_config())
        report = network_memory(network, "float32")
        # ~15.8 M weights * 4 bytes ~ 63 MB: far beyond on-chip memory.
        assert 40e6 < report.weight_bytes < 80e6

    def test_total_includes_activations(self):
        network = Network(tiny_yolo_config())
        report = network_memory(network, "float32")
        assert report.total_bytes > report.weight_bytes
        assert report.activation_bytes > 0


class TestQuantizedRegime:
    def test_tincy_weights_fit_fpga_bram(self):
        """The §III-A enabler: binarized hidden weights fit on-chip."""
        network = Network(tincy_yolo_config())
        report = network_memory(network, "quantized")
        hidden = [l for l in report.layers if l.name == "convolutional"][1:-1]
        hidden_weight_bits = sum(l.weight_bits for l in hidden)
        assert hidden_weight_bits == 6_312_960  # matches the BRAM model
        from repro.finn.device import XCZU3EG

        assert hidden_weight_bits < XCZU3EG.bram_bits

    def test_compression_factor_large(self):
        network = Network(tincy_yolo_config())
        factor = compression_factor(network)
        # binary hidden weights + int8 ends: ~25-32x smaller than float32.
        assert factor > 20.0

    def test_activation_maps_shrink_with_3bit_coding(self):
        network = Network(tincy_yolo_config())
        quantized = network_memory(network, "quantized")
        floating = network_memory(network, "float32")
        assert quantized.activation_bytes < floating.activation_bytes / 8

    def test_int8_regime_between_extremes(self):
        network = Network(tincy_yolo_config())
        float_w = network_memory(network, "float32").weight_bytes
        int8_w = network_memory(network, "int8").weight_bytes
        quant_w = network_memory(network, "quantized").weight_bytes
        assert quant_w < int8_w < float_w
        assert int8_w == pytest.approx(float_w / 4, rel=0.05)

    def test_mlp4_binary_weights_under_a_megabyte(self):
        network = Network(mlp4_config())
        report = network_memory(network, "quantized")
        assert report.weight_bytes < 1e6  # ~2.9 Mbit / 8

    def test_unknown_regime_rejected(self):
        with pytest.raises(ValueError, match="regime"):
            network_memory(Network(mlp4_config()), "bfloat16")
