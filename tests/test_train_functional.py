"""Backprop primitive tests — every gradient checked against finite differences."""

import numpy as np
import pytest

from repro.train import functional as F


def _numeric_grad(fn, x, eps=1e-5):
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + eps
        plus = fn()
        flat[index] = original - eps
        minus = fn()
        flat[index] = original
        grad_flat[index] = (plus - minus) / (2 * eps)
    return grad


class TestConvGrad:
    def test_forward_matches_reference(self, rng):
        from repro.core.ops import conv2d

        x = rng.normal(size=(2, 3, 6, 6)).astype(np.float32)
        w = rng.normal(size=(4, 3, 3, 3)).astype(np.float32)
        b = rng.normal(size=4).astype(np.float32)
        y, _ = F.conv_forward(x, w, b, stride=1, pad=1)
        for item in range(2):
            expected = conv2d(x[item], w, b, 1, 1)
            assert np.allclose(y[item], expected, atol=1e-4)

    @pytest.mark.parametrize("stride,pad", [(1, 1), (2, 1), (1, 0)])
    def test_grad_x(self, rng, stride, pad):
        x = rng.normal(size=(2, 2, 5, 5)).astype(np.float64)
        w = rng.normal(size=(3, 2, 3, 3)).astype(np.float32)
        b = np.zeros(3, dtype=np.float32)
        grad_out = rng.normal(size=F.conv_forward(x, w, b, stride, pad)[0].shape)

        def loss():
            y, _ = F.conv_forward(x, w, b, stride, pad)
            return float(np.sum(y * grad_out))

        y, cache = F.conv_forward(x, w, b, stride, pad)
        grad_x, grad_w, grad_b = F.conv_backward(grad_out, w, cache)
        numeric = _numeric_grad(loss, x)
        assert np.allclose(grad_x, numeric, atol=1e-2)

    def test_grad_w_and_b(self, rng):
        x = rng.normal(size=(2, 2, 5, 5)).astype(np.float32)
        w = rng.normal(size=(3, 2, 3, 3)).astype(np.float64)
        b = rng.normal(size=3).astype(np.float64)
        grad_out = rng.normal(size=(2, 3, 5, 5))

        def loss():
            y, _ = F.conv_forward(x, w, b, 1, 1)
            return float(np.sum(y * grad_out))

        y, cache = F.conv_forward(x, w, b, 1, 1)
        _, grad_w, grad_b = F.conv_backward(
            grad_out, w, cache
        )
        assert np.allclose(grad_w, _numeric_grad(loss, w), atol=1e-2)
        assert np.allclose(grad_b, _numeric_grad(loss, b), atol=1e-2)

    def test_channel_mismatch(self, rng):
        with pytest.raises(ValueError, match="channels"):
            F.conv_forward(
                np.zeros((1, 2, 4, 4), dtype=np.float32),
                np.zeros((3, 4, 3, 3), dtype=np.float32),
                None, 1, 1,
            )


class TestMaxpoolGrad:
    def test_forward_matches_single_image_op(self, rng):
        from repro.core.ops import maxpool2d

        x = rng.normal(size=(3, 2, 6, 6)).astype(np.float32)
        y, _ = F.maxpool_forward(x, 2, 2)
        for item in range(3):
            assert np.allclose(y[item], maxpool2d(x[item], 2, 2))

    def test_grad(self, rng):
        x = rng.normal(size=(2, 2, 6, 6)).astype(np.float64)
        grad_out = rng.normal(size=(2, 2, 3, 3))

        def loss():
            y, _ = F.maxpool_forward(x, 2, 2)
            return float(np.sum(y * grad_out))

        y, cache = F.maxpool_forward(x, 2, 2)
        grad_x = F.maxpool_backward(grad_out, cache)
        numeric = _numeric_grad(loss, x)
        assert np.allclose(grad_x, numeric, atol=1e-2)


class TestBatchnormGrad:
    def test_normalizes(self, rng):
        x = rng.normal(3.0, 2.0, size=(8, 4, 5, 5)).astype(np.float32)
        y, cache, mean, var = F.batchnorm_forward(x, np.ones(4), np.zeros(4))
        assert np.allclose(y.mean(axis=(0, 2, 3)), 0.0, atol=1e-5)
        assert np.allclose(y.std(axis=(0, 2, 3)), 1.0, atol=1e-2)

    def test_grads(self, rng):
        x = rng.normal(size=(3, 2, 4, 4)).astype(np.float64)
        gamma = rng.uniform(0.5, 1.5, size=2).astype(np.float64)
        beta = rng.normal(size=2).astype(np.float64)
        grad_out = rng.normal(size=x.shape)

        def loss():
            y, _, _, _ = F.batchnorm_forward(
                x, gamma, beta,
            )
            return float(np.sum(y * grad_out))

        y, cache, _, _ = F.batchnorm_forward(
            x, gamma, beta
        )
        grad_x, grad_gamma, grad_beta = F.batchnorm_backward(
            grad_out, cache
        )
        assert np.allclose(grad_x, _numeric_grad(loss, x), atol=2e-2)
        assert np.allclose(grad_gamma, _numeric_grad(loss, gamma), atol=2e-2)
        assert np.allclose(grad_beta, _numeric_grad(loss, beta), atol=2e-2)


class TestActivationGrads:
    def test_relu(self, rng):
        x = rng.normal(size=(2, 3, 4, 4))
        y, mask = F.relu_forward(x)
        grad = F.relu_backward(np.ones_like(y), mask)
        assert np.array_equal(grad, (x > 0).astype(float))

    def test_leaky(self, rng):
        x = rng.normal(size=(2, 3, 4, 4))
        y, mask = F.leaky_forward(x)
        grad = F.leaky_backward(np.ones_like(y), mask)
        assert np.array_equal(grad, np.where(x > 0, 1.0, 0.1))
