"""Topology zoo tests — Tables I and II must reproduce digit for digit."""

import numpy as np
import pytest

from repro.nn.network import Network
from repro.nn.zoo import (
    cnv6_config,
    mlp4_config,
    modification_a,
    modification_b,
    modification_c,
    modification_d,
    quantize_hidden_w1a3,
    tincy_yolo_config,
    tiny_yolo_config,
    tiny_yolo_variant,
)
from repro.perf.workload import (
    PAPER_TABLE1,
    PAPER_TABLE1_TOTALS,
    PAPER_TABLE2,
    countable_layers,
    dot_product_workload,
    table1_rows,
    table1_totals,
    table2_rows,
)


class TestTinyYolo:
    def test_layer_sequence(self):
        net = Network(tiny_yolo_config())
        kinds = [layer.ltype for layer in net.layers]
        assert kinds.count("convolutional") == 9
        assert kinds.count("maxpool") == 6
        assert kinds[-1] == "region"

    def test_output_geometry(self):
        net = Network(tiny_yolo_config())
        assert net.output_shape == (125, 13, 13)

    def test_per_layer_ops_match_table1(self):
        net = Network(tiny_yolo_config())
        got = [layer.workload().ops for layer in countable_layers(net)]
        expected = [row[2] for row in PAPER_TABLE1]
        assert got == expected

    def test_total_ops_match_paper_sum(self):
        net = Network(tiny_yolo_config())
        total = sum(l.workload().ops for l in countable_layers(net))
        assert total == PAPER_TABLE1_TOTALS[0] == 6_971_272_984


class TestTincyYolo:
    def test_derivation_equals_direct_construction(self):
        derived = tiny_yolo_config()
        for transform in (
            modification_a,
            modification_b,
            modification_c,
            modification_d,
            quantize_hidden_w1a3,
        ):
            derived = transform(derived)
        direct = tincy_yolo_config()
        assert [s.options for s in derived] == [s.options for s in direct]

    def test_per_layer_ops_match_table1(self):
        net = Network(tincy_yolo_config())
        got = [layer.workload().ops for layer in countable_layers(net)]
        expected = [row[3] for row in PAPER_TABLE1 if row[3] is not None]
        assert got == expected

    def test_total_ops_match_paper_sum(self):
        net = Network(tincy_yolo_config())
        total = sum(l.workload().ops for l in countable_layers(net))
        assert total == PAPER_TABLE1_TOTALS[1] == 4_445_001_496

    def test_first_pool_removed_and_stride_two(self):
        net = Network(tincy_yolo_config())
        assert net.layers[0].ltype == "convolutional"
        assert net.layers[0].stride == 2
        assert net.layers[1].ltype == "convolutional"  # no pool in between

    def test_hidden_layers_are_w1a3(self):
        net = Network(tincy_yolo_config())
        convs = [l for l in net.layers if l.ltype == "convolutional"]
        assert not convs[0].binary and convs[0].out_quant.bits == 3
        assert not convs[-1].binary
        for conv in convs[1:-1]:
            assert conv.binary
            assert conv.out_quant.bits == 3

    def test_relu_everywhere(self):
        net = Network(tincy_yolo_config())
        convs = [l for l in net.layers if l.ltype == "convolutional"]
        assert all(c.activation != "leaky" for c in convs)

    def test_output_geometry_unchanged(self):
        assert Network(tincy_yolo_config()).output_shape == (125, 13, 13)

    def test_modification_guards(self):
        with pytest.raises(ValueError):
            modification_b(tincy_yolo_config())  # layer 3 already 64
        with pytest.raises(ValueError):
            modification_c(modification_c(tiny_yolo_config()))


class TestTable1Harness:
    def test_rows_match_paper_exactly(self):
        rows = table1_rows()
        assert len(rows) == len(PAPER_TABLE1)
        for row, (number, ltype, tiny_ops, tincy_ops) in zip(rows, PAPER_TABLE1):
            assert row.layer == number
            assert row.ltype == ltype
            assert row.tiny_ops == tiny_ops
            assert row.tincy_ops == tincy_ops

    def test_totals(self):
        assert table1_totals() == PAPER_TABLE1_TOTALS


class TestTable2Harness:
    def test_cnv6_matches_paper_exactly(self):
        row = dot_product_workload("CNV-6", cnv6_config())
        assert row.reduced_ops == PAPER_TABLE2["CNV-6"][0] == 115_812_352
        assert row.eightbit_ops == PAPER_TABLE2["CNV-6"][2] == 3_110_400
        assert row.regime == "W1A1"

    def test_tincy_matches_paper_exactly(self):
        row = dot_product_workload("Tincy YOLO", tincy_yolo_config())
        assert row.reduced_ops == PAPER_TABLE2["Tincy YOLO"][0] == 4_385_931_264
        assert row.eightbit_ops == PAPER_TABLE2["Tincy YOLO"][2] == 59_012_096
        assert row.regime == "W1A3"

    def test_mlp4_within_paper_rounding(self):
        """The paper prints 6.0 M; the exact 784-1024^3-10 topology gives
        5.82 M — we assert our reconstruction and its closeness to print."""
        row = dot_product_workload("MLP-4", mlp4_config())
        assert row.reduced_ops == PAPER_TABLE2["MLP-4"][0] == 5_820_416
        assert row.eightbit_ops == 0
        assert abs(row.reduced_ops / 1e6 - 6.0) < 0.25

    def test_table2_rows_order(self):
        names = [row.name for row in table2_rows()]
        assert names == ["MLP-4", "CNV-6", "Tincy YOLO"]

    def test_totals_column(self):
        rows = {row.name: row for row in table2_rows()}
        assert rows["CNV-6"].total_ops == 118_922_752  # 118.9 M in print
        assert rows["Tincy YOLO"].total_ops == 4_444_943_360  # 4444.9 M


class TestVariants:
    def test_variant_names(self):
        for name in ("tiny", "tiny+a", "tiny+abc", "tincy"):
            net = Network(tiny_yolo_variant(name))
            assert net.output_shape == (125, 13, 13)
        with pytest.raises(ValueError):
            tiny_yolo_variant("nope")

    def test_tiny_plus_a_keeps_geometry_but_quantizes(self):
        net = Network(tiny_yolo_variant("tiny+a"))
        convs = [l for l in net.layers if l.ltype == "convolutional"]
        assert convs[1].binary
        assert all(c.activation == "relu" for c in convs[:-1])
        # same op counts as plain Tiny YOLO: (a) is precision-only
        tiny = Network(tiny_yolo_variant("tiny"))
        assert [l.workload().ops for l in countable_layers(net)] == [
            l.workload().ops for l in countable_layers(tiny)
        ]


class TestClassifierZoo:
    def test_mlp4_shapes(self):
        net = Network(mlp4_config())
        assert net.input_shape == (1, 28, 28)
        assert net.output_shape == (10, 1, 1)

    def test_cnv6_feature_geometry(self):
        net = Network(cnv6_config())
        conv_shapes = [
            layer.out_shape for layer in net.layers if layer.ltype == "convolutional"
        ]
        assert conv_shapes == [
            (64, 30, 30),
            (64, 28, 28),
            (128, 12, 12),
            (128, 10, 10),
            (256, 3, 3),
            (256, 1, 1),
        ]

    def test_cnv6_forward_runs(self, rng):
        net = Network(cnv6_config())
        net.initialize(rng)
        from repro.core.tensor import FeatureMap

        out = net.forward(FeatureMap(rng.normal(size=(3, 32, 32)).astype(np.float32)))
        assert out.shape == (10, 1, 1)
        assert np.isclose(out.data.sum(), 1.0, atol=1e-5)
