"""Unit tests for the weight/activation quantizers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.quantize import (
    AffineQuantizer,
    BinaryQuantizer,
    TernaryQuantizer,
    UnsignedUniformQuantizer,
    round_half_up,
)


class TestRoundHalfUp:
    def test_matches_fixed_point_rounding(self):
        values = np.array([0.0, 0.4, 0.5, 0.6, 1.5, 2.5, 3.49999])
        expected = np.array([0, 0, 1, 1, 2, 3, 3])
        assert np.array_equal(round_half_up(values), expected)

    def test_differs_from_bankers_rounding(self):
        # np.round(2.5) == 2 (half to even); hardware rounds to 3.
        assert round_half_up(np.array([2.5]))[0] == 3


class TestBinaryQuantizer:
    def test_sign_mapping(self):
        q = BinaryQuantizer()
        x = np.array([-3.0, -0.1, 0.0, 0.2, 5.0])
        assert np.array_equal(q.quantize(x), [-1, -1, 1, 1, 1])

    def test_zero_maps_to_plus_one(self):
        # BinaryNet/FINN convention exercised explicitly.
        assert BinaryQuantizer().quantize(np.zeros(4)).tolist() == [1, 1, 1, 1]

    def test_levels_roundtrip(self, rng):
        q = BinaryQuantizer(scale=0.5)
        x = rng.normal(size=100)
        levels = q.to_levels(x)
        assert set(np.unique(levels)).issubset({0, 1})
        assert np.array_equal(q.from_levels(levels), q.quantize(x))

    def test_ste_mask_clips_outside_unit_interval(self):
        q = BinaryQuantizer()
        mask = q.ste_mask(np.array([-2.0, -1.0, 0.0, 1.0, 1.5]))
        assert mask.tolist() == [0, 1, 1, 1, 0]


class TestTernaryQuantizer:
    def test_three_levels(self):
        q = TernaryQuantizer(threshold=0.5, scale=2.0)
        x = np.array([-1.0, -0.4, 0.0, 0.4, 1.0])
        assert q.quantize(x).tolist() == [-2.0, 0.0, 0.0, 0.0, 2.0]

    def test_levels_roundtrip(self, rng):
        q = TernaryQuantizer(threshold=0.3, scale=1.5)
        x = rng.normal(size=200)
        assert np.array_equal(q.from_levels(q.to_levels(x)), q.quantize(x))

    def test_from_weights_uses_twn_heuristic(self, rng):
        x = rng.normal(size=1000)
        q = TernaryQuantizer.from_weights(x)
        assert q.threshold == pytest.approx(0.7 * np.mean(np.abs(x)))
        assert q.scale > 0


class TestUnsignedUniformQuantizer:
    def test_three_bit_levels(self):
        q = UnsignedUniformQuantizer(bits=3, scale=1.0)
        x = np.array([-1.0, 0.0, 0.49, 0.5, 3.2, 7.0, 9.0])
        assert q.to_levels(x).tolist() == [0, 0, 0, 1, 3, 7, 7]

    def test_quantize_is_idempotent(self, rng):
        q = UnsignedUniformQuantizer(bits=3, scale=0.25)
        x = rng.uniform(-1, 3, size=500)
        once = q.quantize(x)
        assert np.array_equal(q.quantize(once), once)

    def test_max_value(self):
        q = UnsignedUniformQuantizer(bits=3, scale=1.0 / 7.0)
        assert q.max_value == pytest.approx(1.0)
        assert q.levels == 7

    @given(bits=st.integers(1, 8), scale_exp=st.integers(-4, 2))
    @settings(max_examples=50, deadline=None)
    def test_levels_within_range(self, bits, scale_exp):
        q = UnsignedUniformQuantizer(bits=bits, scale=2.0**scale_exp)
        rng = np.random.default_rng(bits * 100 + scale_exp)
        levels = q.to_levels(rng.uniform(-10, 10, size=64))
        assert levels.min() >= 0
        assert levels.max() <= (1 << bits) - 1

    def test_ste_mask_window(self):
        q = UnsignedUniformQuantizer(bits=3, scale=1.0)
        mask = q.ste_mask(np.array([-0.1, 0.0, 3.0, 7.0, 7.1]))
        assert mask.tolist() == [0, 1, 1, 1, 0]


class TestAffineQuantizer:
    def test_from_range_represents_zero_exactly(self):
        q = AffineQuantizer.from_range(-0.37, 2.11, bits=8)
        assert q.from_levels(np.array([q.zero_point]))[0] == pytest.approx(0.0)

    def test_roundtrip_error_bounded_by_half_step(self, rng):
        q = AffineQuantizer.from_range(-1.0, 1.0, bits=8)
        x = rng.uniform(-1, 1, size=1000)
        err = np.abs(q.quantize(x) - x)
        assert err.max() <= q.scale / 2 + 1e-9

    def test_signed_range(self):
        q = AffineQuantizer.from_range(-1.0, 1.0, bits=8, signed=True)
        assert q.qmin == -128 and q.qmax == 127
        levels = q.to_levels(np.array([-5.0, 5.0]))
        assert levels.min() >= -128 and levels.max() <= 127

    def test_degenerate_range_widened(self):
        q = AffineQuantizer.from_range(0.0, 0.0, bits=8)
        assert q.scale > 0

    @given(
        low=st.floats(-10, 0), high=st.floats(0.1, 10), bits=st.sampled_from([4, 8])
    )
    @settings(max_examples=50, deadline=None)
    def test_levels_in_range(self, low, high, bits):
        q = AffineQuantizer.from_range(low, high, bits=bits)
        rng = np.random.default_rng(42)
        levels = q.to_levels(rng.uniform(low * 2, high * 2, size=32))
        assert int(levels.min()) >= q.qmin
        assert int(levels.max()) <= q.qmax
